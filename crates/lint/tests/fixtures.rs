//! Drives the fixture corpus under `crates/lint/fixtures/`.
//!
//! Each fixture is a standalone pretend-workspace of one file. Leading
//! directive comments declare its identity and the exact findings the
//! lint must produce:
//!
//! * `//@ path: <workspace-relative path>` — where the file pretends to
//!   live (rules are scoped by path, so this selects the rule set).
//! * `//@ find: <rule>@<line>` — one **unallowed** finding.
//! * `//@ allow: <rule>@<line>` — one finding covered by a `LINT-ALLOW`.
//!
//! Directives are plain comments, so line numbers in expectations refer
//! to the fixture file as-is. The comparison is an exact multiset match:
//! a missing finding, an extra finding, or a wrong allowed-bit all fail.

use std::collections::BTreeMap;
use std::path::Path;

use ghsom_lint::lint_sources;

/// `(rule, line, allowed)` → expected count.
type Multiset = BTreeMap<(String, u32, bool), usize>;

fn parse_directives(name: &str, src: &str) -> (String, Multiset) {
    let mut path = None;
    let mut expected = Multiset::new();
    for line in src.lines() {
        let Some(rest) = line.strip_prefix("//@ ") else {
            continue;
        };
        if let Some(p) = rest.strip_prefix("path: ") {
            path = Some(p.trim().to_string());
        } else if let Some(spec) = rest
            .strip_prefix("find: ")
            .map(|s| (s, false))
            .or_else(|| rest.strip_prefix("allow: ").map(|s| (s, true)))
        {
            let (body, allowed) = spec;
            let (rule, at) = body
                .trim()
                .split_once('@')
                .unwrap_or_else(|| panic!("{name}: malformed directive `{line}`"));
            let at: u32 = at
                .parse()
                .unwrap_or_else(|_| panic!("{name}: bad line in `{line}`"));
            *expected.entry((rule.to_string(), at, allowed)).or_insert(0) += 1;
        } else {
            panic!("{name}: unknown directive `{line}`");
        }
    }
    let path = path.unwrap_or_else(|| panic!("{name}: missing `//@ path:` directive"));
    (path, expected)
}

#[test]
fn fixture_corpus_matches_expectations() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 19,
        "fixture corpus shrank: {} files",
        names.len()
    );
    let mut failures = Vec::new();
    for p in names {
        let name = p.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(&p).expect("readable fixture");
        let (path, expected) = parse_directives(&name, &src);
        let result = lint_sources(&[(path, src)]);
        let mut actual = Multiset::new();
        for f in &result.findings {
            *actual
                .entry((f.rule.to_string(), f.line, f.allowed.is_some()))
                .or_insert(0) += 1;
        }
        if actual != expected {
            failures.push(format!(
                "{name}:\n  expected: {expected:?}\n  actual:   {actual:?}\n  findings: {:#?}",
                result.findings
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// Every fixture must carry directives that prove what it tests — a
/// bad/allowed fixture declares findings, a `*_ok` fixture declares none.
#[test]
fn ok_fixtures_expect_nothing_and_bad_fixtures_expect_something() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    for e in std::fs::read_dir(&dir).expect("fixtures directory exists") {
        let p = e.expect("readable entry").path();
        if p.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let name = p.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(&p).expect("readable fixture");
        let (_, expected) = parse_directives(&name, &src);
        if name.ends_with("_ok.rs") {
            assert!(expected.is_empty(), "{name}: _ok fixture declares findings");
        } else {
            assert!(!expected.is_empty(), "{name}: fixture declares no findings");
        }
    }
}
