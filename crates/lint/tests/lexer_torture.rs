//! Adversarial inputs for the hand-rolled lexer: every construct that
//! could make a naive scanner misread where strings and comments end —
//! and therefore produce phantom findings or miss real ones.

use ghsom_lint::lexer::{lex, Tok};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .0
        .into_iter()
        .filter_map(|t| match t.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        })
        .collect()
}

#[test]
fn panicky_text_inside_strings_is_not_tokenized() {
    let src = r#"
        let a = "x.unwrap() and panic!() live here";
        let b = "escaped \" quote then .expect(";
        let c = 'x';
        let d = '\'';
        let e = '\u{1F600}';
    "#;
    let ids = idents(src);
    assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
    assert!(!ids.contains(&"panic".to_string()));
    assert!(!ids.contains(&"expect".to_string()));
}

#[test]
fn raw_strings_with_hashes_and_quotes() {
    // The r#"…"# body contains an unescaped quote and a fake comment.
    let src = r###"
        let a = r"no hashes";
        let b = r#"quote " and // not a comment and unsafe"#;
        let c = r##"ends with "# but not here"##;
        let after = 1;
    "###;
    let ids = idents(src);
    assert!(!ids.contains(&"unsafe".to_string()), "{ids:?}");
    assert!(ids.contains(&"after".to_string()), "{ids:?}");
}

#[test]
fn byte_and_raw_byte_strings() {
    let src =
        "let a = b\"bytes with .unwrap( text\"; let b = br#\"raw bytes panic!\"#; let tail = 2;";
    let ids = idents(src);
    assert!(!ids.contains(&"unwrap".to_string()));
    assert!(!ids.contains(&"panic".to_string()));
    assert!(ids.contains(&"tail".to_string()));
}

#[test]
fn nested_block_comments_balance() {
    let src = "/* outer /* inner .unwrap() */ still dead panic!() */ let live = 3;";
    let (tokens, comments) = lex(src);
    assert_eq!(comments.len(), 1);
    assert!(comments[0].text.contains("inner"));
    let ids: Vec<_> = tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(ids, ["let", "live"]);
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let _ = c; x }";
    let (tokens, _) = lex(src);
    let lifetimes = tokens
        .iter()
        .filter(|t| matches!(&t.tok, Tok::Lifetime(l) if l == "a"))
        .count();
    assert_eq!(lifetimes, 3);
    // 'x' must lex as a string-ish literal, not a lifetime + ident.
    assert!(tokens.iter().any(|t| t.tok == Tok::Str));
    assert!(!tokens
        .iter()
        .any(|t| matches!(&t.tok, Tok::Lifetime(l) if l == "x")));
}

#[test]
fn raw_identifiers_do_not_impersonate_keywords() {
    let src = "fn r#unsafe() {} fn ok() { r#unsafe(); }";
    let ids = idents(src);
    // The raw identifier keeps its r# prefix, so rules matching the
    // `unsafe` keyword never see it.
    assert!(ids.contains(&"r#unsafe".to_string()), "{ids:?}");
    assert!(!ids.contains(&"unsafe".to_string()));
}

#[test]
fn line_numbers_survive_multiline_constructs() {
    let src = "let a = \"line1\n\";\n/* spans\nlines */\nlet z = 9;";
    let (tokens, comments) = lex(src);
    let z = tokens
        .iter()
        .find(|t| t.tok == Tok::Ident("z".to_string()))
        .expect("z token");
    assert_eq!(z.line, 5);
    assert_eq!(comments[0].line, 3);
    assert_eq!(comments[0].end_line, 4);
}

#[test]
fn numeric_range_is_not_a_float() {
    // `0..n` must lex as Num(0), Punct(.), Punct(.), Ident(n) — a naive
    // float scanner swallows `0..` and desyncs everything after it.
    let src = "for i in 0..n { body(i); }";
    let (tokens, _) = lex(src);
    assert!(tokens
        .iter()
        .any(|t| t.tok == Tok::Ident("body".to_string())));
    assert_eq!(
        tokens.iter().filter(|t| t.tok == Tok::Punct('.')).count(),
        2
    );
}
