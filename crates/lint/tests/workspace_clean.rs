//! The workspace must lint clean — the same gate CI enforces, run as a
//! plain `cargo test -p ghsom-lint` so a violation fails locally before
//! a push.

use std::path::Path;

#[test]
fn workspace_has_no_unallowed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let result = ghsom_lint::lint_workspace(root).expect("workspace scan succeeds");
    assert!(result.files_scanned > 50, "scan collapsed — wrong root?");
    let unallowed: Vec<_> = result.unallowed().collect();
    assert!(
        unallowed.is_empty(),
        "unallowed lint findings:\n{}",
        unallowed
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every recorded allowance must carry its reason — the meta rule
    // guarantees this, so an empty reason here means the meta rule broke.
    for f in &result.findings {
        if let Some(reason) = &f.allowed {
            assert!(
                !reason.is_empty(),
                "{}:{} allow without reason",
                f.file,
                f.line
            );
        }
    }
}
