//! The rule set (R1–R5) and the driver that applies it.
//!
//! Normative rule descriptions live in `docs/LINT.md`; this module is
//! the executable version. Scope conventions used below:
//!
//! * *serving crates* — `serve`, `detect`, `featurize`, `mathkit`,
//!   `daemon`, `comms`: the crates on the record→vector→walk→verdict
//!   path, the network front-end that feeds it, and the fleet plane
//!   that replicates bundles into it.
//! * *non-test* — outside any `#[cfg(test)]`-gated item, and not under
//!   a crate's `tests/` or `benches/` directory.
//! * Every rule except `allow` honors a `// LINT-ALLOW(<rule>): <reason>`
//!   escape hatch (same line, directly above, or attached to the
//!   enclosing `fn`); allowed findings stay in the report with their
//!   reason. The `allow` rule polices the escape hatch itself: empty
//!   reasons, unknown rule names and unused allows are findings.

use std::collections::BTreeSet;

use crate::lexer::Tok;
use crate::reach::{reachable_fns, SEEDS};
use crate::source::SourceFile;

/// Rule identifiers with their one-line descriptions, in R-number order
/// (`allow` is the meta rule policing the escape hatch).
pub const RULES: [(&str, &str); 7] = [
    (
        "safety-comment",
        "R1: every `unsafe` block/fn/impl/trait is immediately preceded by a `// SAFETY:` comment",
    ),
    (
        "no-panic",
        "R2: no unwrap()/expect()/panic!/todo!/unimplemented! in non-test serving-crate code",
    ),
    (
        "no-index",
        "R2: no slice/array indexing in pub fns reachable from Engine::score_records/observe_records (outside checked-kernel zones)",
    ),
    (
        "env-guard",
        "R3: std::env::set_var/remove_var confined to bench::pin::PinnedThreads",
    ),
    (
        "error-enum",
        "R4: every pub enum *Error is #[non_exhaustive] and implements Display + std::error::Error",
    ),
    (
        "cast",
        "R5: no `as` numeric casts inside the snapshot trust boundary (checked helpers instead)",
    ),
    (
        "allow",
        "meta: LINT-ALLOW must name a known rule, carry a non-empty reason, and match a finding",
    ),
];

/// Crates on the serving path (R2 scope).
const SERVING_CRATES: [&str; 6] = ["serve", "detect", "featurize", "mathkit", "daemon", "comms"];

/// The one file allowed to touch `GHSOM_THREADS` via set_var/remove_var.
const ENV_GUARD_FILE: &str = "crates/bench/src/pin.rs";

/// Files forming the snapshot trust boundary (R5 scope): code that
/// turns untrusted bytes into structured values.
const TRUST_BOUNDARY_FILES: [&str; 1] = ["crates/serve/src/snapshot.rs"];

/// Checked-kernel zones exempt from `no-index`, with the justification
/// recorded verbatim in the JSON report. These files index heavily by
/// construction-proven offsets; their bounds are property-tested
/// (bit-identical tree-vs-arena walks, transform equivalence) and their
/// *inputs* are validated at the trust boundary before any walk starts.
pub const INDEX_EXEMPT_ZONES: [(&str, &str); 7] = [
    (
        "crates/mathkit/src/distance.rs",
        "4-lane unrolled distance kernels: chunks_exact(4) bounds the lane index and the scalar tails slice from len()-derived offsets",
    ),
    (
        "crates/serve/src/compiled.rs",
        "arena walk: offsets come from prefix-sum tables validated by ArenaRef::validate() before serving; walks are property-tested bit-identical to the tree",
    ),
    (
        "crates/mathkit/src/batch.rs",
        "BMU kernels: tile offsets derive from packed_len()/GROUP arithmetic; equivalence to the naive scan is property-tested",
    ),
    (
        "crates/mathkit/src/vector.rs",
        "dense vector kernels over equal-length slices, length-checked at entry",
    ),
    (
        "crates/mathkit/src/matrix.rs",
        "row-major matrix accessors: row bounds are the constructor invariant rows*cols == data.len()",
    ),
    (
        "crates/featurize/src/matrix.rs",
        "FeatureMatrix keeps data.len() == rows*cols by construction; reset() reshapes before any write",
    ),
    (
        "crates/featurize/src/pipeline.rs",
        "batch transform writes through pre-shaped row windows; shape is established once per batch",
    ),
];

/// Names that look like `.unwrap()` / `.expect(` method calls.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Macro names R2 denies.
const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

/// Primitive numeric types an `as` cast to which R5 flags.
const NUMERIC_PRIMS: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// One rule violation (or recorded allowance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier from [`RULES`].
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// `Some(reason)` when a `LINT-ALLOW` covers the finding — recorded
    /// in the report, not counted against the exit code.
    pub allowed: Option<String>,
}

/// Crate name a workspace-relative path belongs to (`None` for files
/// outside any crate, e.g. the root `tests/`).
fn crate_of(path: &str) -> Option<&str> {
    if path.starts_with("src/") {
        return Some("ghsom-suite");
    }
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Whether `path` is production source (a `src/` tree, not `tests/`
/// or `benches/`).
fn is_prod_src(path: &str) -> bool {
    path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"))
}

fn in_serving_crate(path: &str) -> bool {
    crate_of(path).is_some_and(|c| SERVING_CRATES.contains(&c))
}

/// Applies every rule to `files` (all of them pre-parsed) and resolves
/// `LINT-ALLOW` coverage, including the meta checks on the allows
/// themselves. Findings come back sorted by (file, line, rule).
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let reachable = reachable_fns(files, &SEEDS, |f| {
        in_serving_crate(&f.path) && is_prod_src(&f.path)
    });
    let mut findings = Vec::new();
    // Per-file, per-allow usage tracking for the unused-allow check.
    let mut used: Vec<Vec<bool>> = files.iter().map(|f| vec![false; f.allows.len()]).collect();
    for (fi, f) in files.iter().enumerate() {
        let mut raw = Vec::new();
        safety_comment(f, &mut raw);
        no_panic(f, &mut raw);
        no_index(f, &reachable, &mut raw);
        env_guard(f, &mut raw);
        error_enum(f, files, &mut raw);
        cast(f, &mut raw);
        for mut finding in raw {
            if let Some(ai) = f.allow_for(finding.rule, finding.line) {
                used[fi][ai] = true;
                finding.allowed = Some(f.allows[ai].reason.clone());
            }
            findings.push(finding);
        }
    }
    // Meta rule: police the escape hatches themselves.
    let known: BTreeSet<&str> = RULES.iter().map(|(n, _)| *n).collect();
    for (fi, f) in files.iter().enumerate() {
        for (ai, a) in f.allows.iter().enumerate() {
            if !known.contains(a.rule.as_str()) {
                findings.push(Finding {
                    file: f.path.clone(),
                    line: a.line,
                    rule: "allow",
                    message: format!("LINT-ALLOW names unknown rule `{}`", a.rule),
                    allowed: None,
                });
            } else if a.reason.is_empty() {
                findings.push(Finding {
                    file: f.path.clone(),
                    line: a.line,
                    rule: "allow",
                    message: format!("LINT-ALLOW({}) without a reason", a.rule),
                    allowed: None,
                });
            } else if !used[fi][ai] {
                findings.push(Finding {
                    file: f.path.clone(),
                    line: a.line,
                    rule: "allow",
                    message: format!(
                        "unused LINT-ALLOW({}): no matching finding on the next code line",
                        a.rule
                    ),
                    allowed: None,
                });
            }
        }
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

/// R1 — every `unsafe` token needs a `// SAFETY:` comment directly
/// above (attributes/blank lines/other comments may intervene).
/// Applies everywhere, including tests: unsafe is unsafe.
fn safety_comment(f: &SourceFile, out: &mut Vec<Finding>) {
    for t in &f.tokens {
        if t.tok != Tok::Ident("unsafe".to_string()) {
            continue;
        }
        if !f.has_safety_comment(t.line) {
            out.push(Finding {
                file: f.path.clone(),
                line: t.line,
                rule: "safety-comment",
                message: "`unsafe` without an immediately preceding `// SAFETY:` comment"
                    .to_string(),
                allowed: None,
            });
        }
    }
}

/// R2 (panic half) — no panicking constructs in non-test serving-crate
/// production code.
fn no_panic(f: &SourceFile, out: &mut Vec<Finding>) {
    if !(in_serving_crate(&f.path) && is_prod_src(&f.path)) {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if f.in_test(t.line) {
            continue;
        }
        let next = f.tokens.get(i + 1).map(|t| &t.tok);
        let prev = i.checked_sub(1).map(|p| &f.tokens[p].tok);
        let hit = if PANIC_MACROS.contains(&name.as_str()) {
            next == Some(&Tok::Punct('!'))
        } else if PANIC_METHODS.contains(&name.as_str()) {
            prev == Some(&Tok::Punct('.')) && next == Some(&Tok::Punct('('))
        } else {
            false
        };
        if hit {
            let shape = if PANIC_MACROS.contains(&name.as_str()) {
                format!("`{name}!`")
            } else {
                format!("`.{name}()`")
            };
            out.push(Finding {
                file: f.path.clone(),
                line: t.line,
                rule: "no-panic",
                message: format!("{shape} in serving-path production code"),
                allowed: None,
            });
        }
    }
}

/// R2 (index half) — no `expr[…]` indexing in bare-`pub` fns whose name
/// is reachable from the serving entry points, outside the audited
/// checked-kernel zones.
fn no_index(f: &SourceFile, reachable: &BTreeSet<String>, out: &mut Vec<Finding>) {
    if !(in_serving_crate(&f.path) && is_prod_src(&f.path)) {
        return;
    }
    if INDEX_EXEMPT_ZONES.iter().any(|(p, _)| *p == f.path) {
        return;
    }
    for i in 0..f.tokens.len() {
        if !f.is_index_bracket(i) {
            continue;
        }
        let line = f.tokens[i].line;
        if f.in_test(line) {
            continue;
        }
        let Some(item) = f.enclosing_fn(line) else {
            continue;
        };
        if !item.is_pub || !reachable.contains(&item.name) {
            continue;
        }
        out.push(Finding {
            file: f.path.clone(),
            line,
            rule: "no-index",
            message: format!(
                "slice/array indexing in serving-reachable `pub fn {}` (use get()/split or a checked-kernel zone)",
                item.name
            ),
            allowed: None,
        });
    }
}

/// R3 — `set_var`/`remove_var` calls outside `bench::pin`.
fn env_guard(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.path == ENV_GUARD_FILE {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if (name == "set_var" || name == "remove_var")
            && f.tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('('))
        {
            out.push(Finding {
                file: f.path.clone(),
                line: t.line,
                rule: "env-guard",
                message: format!(
                    "`{name}` outside bench::pin::PinnedThreads — process-global env mutation races parallel scoring"
                ),
                allowed: None,
            });
        }
    }
}

/// R4 — `pub enum *Error` must be `#[non_exhaustive]` and have
/// `Display` + `Error` impls somewhere in the same crate.
fn error_enum(f: &SourceFile, all: &[SourceFile], out: &mut Vec<Finding>) {
    if !is_prod_src(&f.path) {
        return;
    }
    let this_crate = crate_of(&f.path);
    for (i, t) in f.tokens.iter().enumerate() {
        if t.tok != Tok::Ident("enum".to_string()) {
            continue;
        }
        let Some(Tok::Ident(name)) = f.tokens.get(i + 1).map(|t| &t.tok) else {
            continue;
        };
        if !name.ends_with("Error") || f.in_test(t.line) {
            continue;
        }
        // Bare-pub check: previous token `pub` not followed by `(`.
        let is_pub = i >= 1 && f.tokens[i - 1].tok == Tok::Ident("pub".to_string());
        if !is_pub {
            continue;
        }
        let attrs = f.attached_attr_idents(i - 1);
        if !attrs.contains(&"non_exhaustive") {
            out.push(Finding {
                file: f.path.clone(),
                line: t.line,
                rule: "error-enum",
                message: format!("`pub enum {name}` is not #[non_exhaustive]"),
                allowed: None,
            });
        }
        for trait_name in ["Display", "Error"] {
            let implemented = all
                .iter()
                .filter(|g| crate_of(&g.path) == this_crate)
                .any(|g| has_trait_impl(g, trait_name, name));
            if !implemented {
                out.push(Finding {
                    file: f.path.clone(),
                    line: t.line,
                    rule: "error-enum",
                    message: format!("`pub enum {name}` has no `{trait_name}` impl in its crate"),
                    allowed: None,
                });
            }
        }
    }
}

/// Matches `… Trait for Name` token triples (`impl fmt::Display for X`,
/// `impl std::error::Error for X`).
fn has_trait_impl(f: &SourceFile, trait_name: &str, type_name: &str) -> bool {
    f.tokens.windows(3).any(|w| {
        w[0].tok == Tok::Ident(trait_name.to_string())
            && w[1].tok == Tok::Ident("for".to_string())
            && w[2].tok == Tok::Ident(type_name.to_string())
    })
}

/// R5 — `as <numeric>` casts in trust-boundary files.
fn cast(f: &SourceFile, out: &mut Vec<Finding>) {
    if !TRUST_BOUNDARY_FILES.contains(&f.path.as_str()) {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if t.tok != Tok::Ident("as".to_string()) || f.in_test(t.line) {
            continue;
        }
        if let Some(Tok::Ident(prim)) = f.tokens.get(i + 1).map(|t| &t.tok) {
            if NUMERIC_PRIMS.contains(&prim.as_str()) {
                out.push(Finding {
                    file: f.path.clone(),
                    line: t.line,
                    rule: "cast",
                    message: format!(
                        "`as {prim}` inside the snapshot trust boundary — use a checked helper (mathkit::bytes / try_from)"
                    ),
                    allowed: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> Vec<Finding> {
        run(&[SourceFile::parse(path, src)])
    }

    #[test]
    fn panic_macros_and_methods_are_flagged_outside_tests() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n#[cfg(test)]\nmod tests { fn g() { panic!(\"ok in tests\"); } }\n";
        let f = lint_one("crates/serve/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-panic");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn non_serving_crates_may_panic() {
        let f = lint_one("crates/core/src/x.rs", "pub fn f() { panic!(\"fine\") }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn allows_suppress_and_are_policed() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    // LINT-ALLOW(no-panic): proven Some by construction\n    x.unwrap()\n}\n";
        let f = lint_one("crates/serve/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].allowed.is_some());
        // Unused allow is itself a finding.
        let f = lint_one(
            "crates/serve/src/x.rs",
            "// LINT-ALLOW(no-panic): nothing here\npub fn f() {}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "allow");
    }

    #[test]
    fn error_enum_requires_attrs_and_impls() {
        let good = "#[derive(Debug)]\n#[non_exhaustive]\npub enum XError { A }\nimpl std::fmt::Display for XError { }\nimpl std::error::Error for XError {}\n";
        assert!(lint_one("crates/serve/src/e.rs", good).is_empty());
        let bad = "pub enum YError { A }\n";
        let f = lint_one("crates/serve/src/e.rs", bad);
        assert_eq!(
            f.len(),
            3,
            "missing non_exhaustive + Display + Error: {f:?}"
        );
    }
}
