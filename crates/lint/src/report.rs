//! Finding reports: human-readable text and machine-readable JSON.
//!
//! The JSON writer is hand-rolled (std only — the tool must not depend
//! on workspace shims it also lints). Schema:
//!
//! ```json
//! {
//!   "tool": "ghsom-lint",
//!   "summary": { "files": 93, "findings": 40, "unallowed": 0, "allowed": 40 },
//!   "rules": [ { "rule": "no-panic", "description": "…" } ],
//!   "index_exempt_zones": [ { "file": "…", "reason": "…" } ],
//!   "findings": [
//!     { "file": "crates/serve/src/engine.rs", "line": 484,
//!       "rule": "no-panic", "message": "…",
//!       "allowed": true, "reason": "…" }
//!   ]
//! }
//! ```

use crate::rules::{Finding, INDEX_EXEMPT_ZONES, RULES};

/// Scan metadata alongside the findings.
#[derive(Debug)]
pub struct LintResult {
    /// Every finding, allowed or not, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintResult {
    /// Findings not covered by a `LINT-ALLOW` — what the exit code and
    /// CI gate count.
    pub fn unallowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none())
    }
}

/// Escapes `s` for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable JSON report.
pub fn render_json(res: &LintResult) -> String {
    let unallowed = res.unallowed().count();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"ghsom-lint\",\n");
    out.push_str(&format!(
        "  \"summary\": {{ \"files\": {}, \"findings\": {}, \"unallowed\": {}, \"allowed\": {} }},\n",
        res.files_scanned,
        res.findings.len(),
        unallowed,
        res.findings.len() - unallowed
    ));
    out.push_str("  \"rules\": [\n");
    for (i, (rule, desc)) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"rule\": \"{}\", \"description\": \"{}\" }}{}\n",
            esc(rule),
            esc(desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"index_exempt_zones\": [\n");
    for (i, (file, reason)) in INDEX_EXEMPT_ZONES.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"file\": \"{}\", \"reason\": \"{}\" }}{}\n",
            esc(file),
            esc(reason),
            if i + 1 < INDEX_EXEMPT_ZONES.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"findings\": [\n");
    for (i, f) in res.findings.iter().enumerate() {
        let reason = match &f.allowed {
            Some(r) => format!("\"{}\"", esc(r)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"allowed\": {}, \"reason\": {} }}{}\n",
            esc(&f.file),
            f.line,
            esc(f.rule),
            esc(&f.message),
            f.allowed.is_some(),
            reason,
            if i + 1 < res.findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human-readable text report.
pub fn render_text(res: &LintResult) -> String {
    let mut out = String::new();
    for f in &res.findings {
        match &f.allowed {
            Some(reason) => out.push_str(&format!(
                "allowed  {}:{} [{}] {} (reason: {})\n",
                f.file, f.line, f.rule, f.message, reason
            )),
            None => out.push_str(&format!(
                "FINDING  {}:{} [{}] {}\n",
                f.file, f.line, f.rule, f.message
            )),
        }
    }
    let unallowed = res.unallowed().count();
    out.push_str(&format!(
        "ghsom-lint: {} files, {} findings ({} unallowed, {} allowed)\n",
        res.files_scanned,
        res.findings.len(),
        unallowed,
        res.findings.len() - unallowed
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let res = LintResult {
            findings: vec![Finding {
                file: "a\\b.rs".to_string(),
                line: 3,
                rule: "no-panic",
                message: "say \"no\"".to_string(),
                allowed: None,
            }],
            files_scanned: 1,
        };
        let json = render_json(&res);
        assert!(json.contains("\"unallowed\": 1"));
        assert!(json.contains("a\\\\b.rs"));
        assert!(json.contains("say \\\"no\\\""));
    }
}
