//! Per-file analysis over the lexed token stream.
//!
//! [`SourceFile`] derives everything the rules need from one file:
//!
//! * attribute groups (`#[…]` / `#![…]`) with their line spans, so
//!   attribute lines never count as "code" when checking comment
//!   adjacency, and `#[non_exhaustive]` attachment can be resolved;
//! * `#[cfg(test)]`-gated line regions (the gated item's full brace
//!   span) — serving-path rules skip them;
//! * function items: name, visibility, body span, and the identifiers
//!   they call (the edge list for [`crate::reach`]);
//! * `// LINT-ALLOW(<rule>): <reason>` escape hatches, resolved line-level
//!   (same line, or directly above with only comments/attributes/blank
//!   lines between) and function-level (directly above the `fn` item,
//!   covering its whole body).

use std::collections::BTreeSet;

use crate::lexer::{lex, Comment, Tok, Token};

/// Keywords that may legally precede an indexing `[` without the `[`
/// being an index expression (`return [0; 4]`, `break [x]`, …).
const NON_INDEX_KEYWORDS: [&str; 12] = [
    "return", "break", "in", "if", "else", "match", "let", "mut", "ref", "move", "yield", "const",
];

/// One parsed `LINT-ALLOW(<rule>): <reason>` escape hatch.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Reason after the colon, trimmed. Empty = invalid (rule `allow`).
    pub reason: String,
    /// Line the comment starts on.
    pub line: u32,
    /// Line the comment ends on (anchor for adjacency).
    pub end_line: u32,
}

/// A `fn` item: signature facts plus its body span and call edges.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (raw identifiers keep their `r#`).
    pub name: String,
    /// `true` only for bare `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// Line of the `fn` keyword.
    pub sig_line: u32,
    /// Inclusive line range of the `{ … }` body (absent for trait
    /// method declarations).
    pub body_lines: Option<(u32, u32)>,
    /// Token index range `[open_brace, close_brace]` of the body.
    pub body_tokens: Option<(usize, usize)>,
    /// Names this body calls: every identifier directly followed by `(`.
    pub calls: Vec<String>,
}

/// One `#[…]` / `#![…]` attribute group.
#[derive(Debug, Clone)]
pub struct AttrGroup {
    /// Token index of the opening `#`.
    pub start_tok: usize,
    /// Token index of the closing `]`.
    pub end_tok: usize,
    /// 1-based line of the opening `#`.
    pub start_line: u32,
    /// 1-based line of the closing `]`.
    pub end_line: u32,
    /// Idents appearing anywhere inside the group.
    pub idents: Vec<String>,
}

/// A lexed + analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Token stream (comments stripped).
    pub tokens: Vec<Token>,
    /// Comment list, in order.
    pub comments: Vec<Comment>,
    /// Parsed LINT-ALLOW escape hatches.
    pub allows: Vec<Allow>,
    /// Attribute groups in order of appearance.
    pub attrs: Vec<AttrGroup>,
    /// Inclusive line ranges gated by `#[cfg(test)]`.
    pub test_regions: Vec<(u32, u32)>,
    /// Inclusive line ranges covered by attribute groups.
    pub attr_lines: Vec<(u32, u32)>,
    /// Lines carrying at least one non-attribute code token.
    pub code_lines: BTreeSet<u32>,
    /// Function items in order of appearance.
    pub fns: Vec<FnItem>,
}

impl SourceFile {
    /// Lexes and analyzes one file. `path` is workspace-relative.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let (tokens, comments) = lex(src);
        let attrs = scan_attributes(&tokens);
        let attr_lines: Vec<(u32, u32)> =
            attrs.iter().map(|a| (a.start_line, a.end_line)).collect();
        let test_regions = scan_test_regions(&tokens, &attrs);
        let code_lines = tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| !attrs.iter().any(|a| *i >= a.start_tok && *i <= a.end_tok))
            .map(|(_, t)| t.line)
            .collect();
        let fns = scan_fns(&tokens);
        let allows = scan_allows(&comments);
        SourceFile {
            path: path.to_string(),
            tokens,
            comments,
            allows,
            attrs,
            test_regions,
            attr_lines,
            code_lines,
            fns,
        }
    }

    /// Idents of every attribute group attached to the item whose first
    /// non-attribute token is at `item_tok` (walking back over
    /// visibility qualifiers and consecutive attribute groups).
    pub fn attached_attr_idents(&self, item_tok: usize) -> Vec<&str> {
        let mut idents = Vec::new();
        let mut p = item_tok;
        loop {
            // Walk back over visibility qualifiers.
            while p > 0 && is_fn_qualifier(&self.tokens[p - 1].tok) {
                p -= 1;
            }
            // Then over an attribute group ending right before `p`.
            match self.attrs.iter().find(|a| a.end_tok + 1 == p) {
                Some(a) => {
                    idents.extend(a.idents.iter().map(String::as_str));
                    p = a.start_tok;
                }
                None => break,
            }
        }
        idents
    }

    /// Whether `line` falls inside a `#[cfg(test)]`-gated item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    /// Whether `line` is covered by an attribute group.
    fn on_attr(&self, line: u32) -> bool {
        self.attr_lines.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// Walks upward from `line - 1` while lines are blank, comments or
    /// attributes, calling `pred` on each comment met; stops at the
    /// first code line. Returns whether `pred` matched.
    fn scan_upward(&self, line: u32, mut pred: impl FnMut(&Comment) -> bool) -> bool {
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            if let Some(c) = self
                .comments
                .iter()
                .find(|c| l >= c.line && l <= c.end_line)
            {
                if pred(c) {
                    return true;
                }
                l = c.line.saturating_sub(1);
                continue;
            }
            if self.on_attr(l) {
                l -= 1;
                continue;
            }
            if self.code_lines.contains(&l) {
                return false;
            }
            l -= 1;
        }
        false
    }

    /// R1 adjacency: a comment containing `SAFETY:` on the same line or
    /// directly above `line` (only comments/attributes/blanks between).
    pub fn has_safety_comment(&self, line: u32) -> bool {
        let same_line = self
            .comments
            .iter()
            .any(|c| c.line == line && c.text.contains("SAFETY:"));
        same_line || self.scan_upward(line, |c| c.text.contains("SAFETY:"))
    }

    /// Finds the `LINT-ALLOW(<rule>)` covering `line`, if any: same line,
    /// directly above, or attached to the enclosing `fn` item. Returns
    /// the allow's index into [`SourceFile::allows`].
    pub fn allow_for(&self, rule: &str, line: u32) -> Option<usize> {
        // Same line.
        if let Some(i) = self
            .allows
            .iter()
            .position(|a| a.rule == rule && a.end_line == line)
        {
            return Some(i);
        }
        // Directly above (comments/attrs/blanks may intervene).
        let mut hit = None;
        self.scan_upward(line, |c| {
            if let Some(i) = self
                .allows
                .iter()
                .position(|a| a.rule == rule && a.line >= c.line && a.end_line <= c.end_line)
            {
                hit = Some(i);
                true
            } else {
                false
            }
        });
        if hit.is_some() {
            return hit;
        }
        // Function-level: an allow directly above the enclosing fn.
        for f in &self.fns {
            if let Some((a, b)) = f.body_lines {
                if line >= a && line <= b {
                    let mut fn_hit = None;
                    self.scan_upward(f.sig_line, |c| {
                        if let Some(i) = self.allows.iter().position(|al| {
                            al.rule == rule && al.line >= c.line && al.end_line <= c.end_line
                        }) {
                            fn_hit = Some(i);
                            true
                        } else {
                            false
                        }
                    });
                    if fn_hit.is_some() {
                        return fn_hit;
                    }
                }
            }
        }
        None
    }

    /// The innermost function whose body covers `line`.
    pub fn enclosing_fn(&self, line: u32) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| {
                f.body_lines
                    .map(|(a, b)| line >= a && line <= b)
                    .unwrap_or(false)
            })
            .min_by_key(|f| {
                let (a, b) = f.body_lines.unwrap_or((0, u32::MAX));
                b - a
            })
    }

    /// Whether the token at `idx` sits in indexing position: a `[`
    /// whose previous token is an identifier (not a statement keyword),
    /// a closing `)`/`]`, or a literal — i.e. `expr[…]`, not an array
    /// literal/type or attribute.
    pub fn is_index_bracket(&self, idx: usize) -> bool {
        if self.tokens[idx].tok != Tok::Punct('[') {
            return false;
        }
        match idx.checked_sub(1).map(|p| &self.tokens[p].tok) {
            Some(Tok::Ident(name)) => !NON_INDEX_KEYWORDS.contains(&name.as_str()),
            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
            Some(Tok::Str) | Some(Tok::Num(_)) => true,
            _ => false,
        }
    }
}

fn scan_attributes(tokens: &[Token]) -> Vec<AttrGroup> {
    let mut groups = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].tok == Tok::Punct('#') {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].tok == Tok::Punct('!') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].tok == Tok::Punct('[') {
                let mut depth = 0usize;
                let mut idents = Vec::new();
                let start = i;
                let mut k = j;
                while k < tokens.len() {
                    match &tokens[k].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Ident(s) => idents.push(s.clone()),
                        _ => {}
                    }
                    k += 1;
                }
                let end = k.min(tokens.len() - 1);
                groups.push(AttrGroup {
                    start_tok: start,
                    end_tok: end,
                    start_line: tokens[start].line,
                    end_line: tokens[end].line,
                    idents,
                });
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    groups
}

/// Line regions gated by `#[cfg(test)]` (or any `cfg`/`cfg_attr` group
/// mentioning `test`): from the attribute to the gated item's closing
/// brace or terminating semicolon.
fn scan_test_regions(tokens: &[Token], attrs: &[AttrGroup]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    for a in attrs {
        if !(a.idents.iter().any(|s| s == "cfg" || s == "cfg_attr")
            && a.idents.iter().any(|s| s == "test"))
        {
            continue;
        }
        // Find the end of the gated item: brace-match the first `{`,
        // or stop at a top-level `;`.
        let mut k = a.end_tok + 1;
        let mut depth = 0usize;
        let mut end_line = a.end_line;
        while k < tokens.len() {
            match tokens[k].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end_line = tokens[k].line;
                        break;
                    }
                }
                Tok::Punct(';') if depth == 0 => {
                    end_line = tokens[k].line;
                    break;
                }
                _ => {}
            }
            end_line = tokens[k].line;
            k += 1;
        }
        regions.push((a.start_line, end_line));
    }
    regions
}

/// Tokens allowed between a `pub` and its `fn` (visibility scopes and
/// qualifiers).
fn is_fn_qualifier(tok: &Tok) -> bool {
    match tok {
        Tok::Ident(s) => matches!(
            s.as_str(),
            "pub" | "const" | "unsafe" | "async" | "extern" | "crate" | "super" | "self" | "in"
        ),
        Tok::Punct('(') | Tok::Punct(')') => true,
        Tok::Str => true, // extern "C"
        _ => false,
    }
}

fn scan_fns(tokens: &[Token]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    for i in 0..tokens.len() {
        let Tok::Ident(kw) = &tokens[i].tok else {
            continue;
        };
        if kw != "fn" {
            continue;
        }
        let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) else {
            continue;
        };
        // Bare-`pub` detection: walk back over qualifiers; `pub` counts
        // only when NOT followed by `(` (that would be `pub(crate)`).
        let mut is_pub = false;
        let mut p = i;
        while p > 0 && is_fn_qualifier(&tokens[p - 1].tok) {
            p -= 1;
            if tokens[p].tok == Tok::Ident("pub".to_string())
                && tokens.get(p + 1).map(|t| &t.tok) != Some(&Tok::Punct('('))
            {
                is_pub = true;
            }
        }
        // Body: first `{` before any top-level `;`.
        let mut body_tokens = None;
        let mut k = i + 2;
        let mut angle = 0i32; // generics can contain `->` etc., never braces
        while k < tokens.len() {
            match tokens[k].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct(';') if angle <= 0 => break,
                Tok::Punct('{') => {
                    // Brace-match to the close.
                    let mut depth = 0usize;
                    let mut m = k;
                    while m < tokens.len() {
                        match tokens[m].tok {
                            Tok::Punct('{') => depth += 1,
                            Tok::Punct('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    body_tokens = Some((k, m.min(tokens.len() - 1)));
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let body_lines = body_tokens.map(|(a, b)| (tokens[a].line, tokens[b].line));
        let calls = body_tokens
            .map(|(a, b)| {
                let mut calls = Vec::new();
                for c in a..b {
                    if let Tok::Ident(n) = &tokens[c].tok {
                        if n != "fn" && tokens.get(c + 1).map(|t| &t.tok) == Some(&Tok::Punct('('))
                        {
                            calls.push(n.clone());
                        }
                    }
                }
                calls
            })
            .unwrap_or_default();
        fns.push(FnItem {
            name: name.clone(),
            is_pub,
            sig_line: tokens[i].line,
            body_lines,
            body_tokens,
            calls,
        });
    }
    fns
}

/// Parses every `LINT-ALLOW(<rule>): <reason>` occurrence in the
/// comments. A "rule" containing characters outside `[A-Za-z0-9_-]`
/// (like the literal placeholder in this sentence) is documentation,
/// not an allow, and is skipped.
fn scan_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(at) = rest.find("LINT-ALLOW(") {
            let tail = &rest[at + "LINT-ALLOW(".len()..];
            let Some(close) = tail.find(')') else { break };
            let rule = tail[..close].trim().to_string();
            if rule.is_empty()
                || !rule
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
            {
                rest = &tail[close + 1..];
                continue;
            }
            let after = &tail[close + 1..];
            let reason = after
                .strip_prefix(':')
                .map(|r| {
                    r.lines()
                        .next()
                        .unwrap_or("")
                        .trim_end_matches("*/")
                        .trim()
                        .to_string()
                })
                .unwrap_or_default();
            // Anchor multi-line block comments at their last line so
            // adjacency works for both comment kinds.
            allows.push(Allow {
                rule,
                reason,
                line: c.line,
                end_line: c.end_line,
            });
            rest = after;
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_cover_the_gated_item() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn inner() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test(1));
        assert!(f.in_test(2));
        assert!(f.in_test(4));
        assert!(!f.in_test(6));
    }

    #[test]
    fn fn_scan_finds_visibility_and_calls() {
        let src = "pub fn outer(x: u8) -> u8 { helper(x) }\npub(crate) fn scoped() {}\nfn private() { outer(1); }\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.fns.len(), 3);
        assert!(f.fns[0].is_pub);
        assert!(!f.fns[1].is_pub, "pub(crate) is not bare pub");
        assert!(!f.fns[2].is_pub);
        assert_eq!(f.fns[0].calls, vec!["helper"]);
        assert_eq!(f.fns[2].calls, vec!["outer"]);
    }

    #[test]
    fn allow_parses_rule_and_reason() {
        let src =
            "// LINT-ALLOW(no-panic): proven total\nlet x = y.unwrap();\n// LINT-ALLOW(cast)\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "no-panic");
        assert_eq!(f.allows[0].reason, "proven total");
        assert!(f.allows[1].reason.is_empty());
        assert_eq!(f.allow_for("no-panic", 2), Some(0));
        assert_eq!(f.allow_for("cast", 2), None);
    }

    #[test]
    fn safety_adjacency_tolerates_attributes() {
        let src = "// SAFETY: fine\n#[cfg(unix)]\nunsafe impl Send for X {}\n\nunsafe impl Sync for X {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.has_safety_comment(3));
        assert!(!f.has_safety_comment(5), "code line blocks the upward scan");
    }
}
