//! `ghsom-lint` — workspace-invariant static analysis for the GHSOM
//! serving plane.
//!
//! The serving stack carries hot-reload, sharded multi-core scoring and
//! two documented `unsafe` islands; a stray `unwrap()` or an unguarded
//! `std::env::set_var` there turns hostile input into a fleet-wide
//! panic. This tool machine-checks the conventions reviewers previously
//! enforced by memory, as five CI-gated rules (normative text in
//! `docs/LINT.md`):
//!
//! * **R1 `safety-comment`** — every `unsafe` is immediately preceded
//!   by a `// SAFETY:` comment.
//! * **R2 `no-panic` / `no-index`** — panic-freedom of the serving-path
//!   crates: no `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!`
//!   in non-test code of `serve`/`detect`/`featurize`/`mathkit`/
//!   `daemon`/`comms`, and no
//!   slice indexing in `pub fn`s name-reachable from
//!   `Engine::score_records`/`observe_records` outside the audited
//!   checked-kernel zones.
//! * **R3 `env-guard`** — `set_var`/`remove_var` confined to
//!   `bench::pin::PinnedThreads`.
//! * **R4 `error-enum`** — every `pub enum *Error` is
//!   `#[non_exhaustive]` and implements `Display` + `std::error::Error`.
//! * **R5 `cast`** — no `as` numeric casts inside the snapshot trust
//!   boundary; width adaptation goes through checked helpers.
//!
//! Deliberate exceptions use `// LINT-ALLOW(<rule>): <reason>` (the reason
//! is mandatory and recorded in the report), so every escape hatch is
//! an audited, greppable artifact rather than silence.
//!
//! Everything is built on a hand-rolled lexer ([`lexer`]) — the offline
//! container forbids `syn`/`dylint` — which is exactly enough syntax
//! for line-accurate, string-safe token matching.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod reach;
pub mod report;
pub mod rules;
pub mod source;

use std::io;
use std::path::{Path, PathBuf};

use report::LintResult;
use source::SourceFile;

/// Directories scanned relative to the workspace root. `crates/*` is
/// expanded to each crate's `src`, `tests` and `benches` trees;
/// `shims/` is excluded (vendored dependency stand-ins, not this
/// repo's invariants) and so is `crates/lint/fixtures` (known-bad
/// corpus by design).
const ROOT_DIRS: [&str; 3] = ["src", "examples", "tests"];

/// Recursively collects `.rs` files under `dir` into `out`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lists every workspace-relative `.rs` path in scan scope, sorted.
pub fn scan_paths(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut abs = Vec::new();
    for d in ROOT_DIRS {
        let p = root.join(d);
        if p.is_dir() {
            walk(&p, &mut abs)?;
        }
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let krate = entry?.path();
            if !krate.is_dir() {
                continue;
            }
            for sub in ["src", "tests", "benches"] {
                let p = krate.join(sub);
                if p.is_dir() {
                    walk(&p, &mut abs)?;
                }
            }
        }
    }
    let mut rel: Vec<PathBuf> = abs
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(PathBuf::from))
        .collect();
    rel.sort();
    rel.dedup();
    Ok(rel)
}

/// Lints pre-loaded `(workspace-relative path, contents)` pairs — the
/// entry point the fixture tests drive directly.
pub fn lint_sources(sources: &[(String, String)]) -> LintResult {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(path, src)| SourceFile::parse(path, src))
        .collect();
    LintResult {
        findings: rules::run(&files),
        files_scanned: files.len(),
    }
}

/// Scans and lints the workspace rooted at `root`.
///
/// # Errors
///
/// [`io::Error`] when a scanned directory or file cannot be read.
pub fn lint_workspace(root: &Path) -> io::Result<LintResult> {
    let mut sources = Vec::new();
    for rel in scan_paths(root)? {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let path = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        sources.push((path, text));
    }
    Ok(lint_sources(&sources))
}
