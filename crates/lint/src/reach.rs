//! Name-based reachability over the workspace call graph.
//!
//! The lexer cannot resolve paths or trait dispatch, so reachability is
//! computed on *function names*: an edge `f → g` exists when some body
//! of a function named `f` contains the identifier `g` directly
//! followed by `(`. Starting from the serving entry points
//! (`Engine::score_records` / `observe_records`), the closure of those
//! edges — restricted to names actually defined in the scanned files —
//! over-approximates the set of functions a serving call can reach.
//!
//! Over-approximation is the safe direction for a deny rule: a function
//! that merely *shares a name* with a hot-path callee is held to the
//! hot path's standard. The inverse (missing a real edge) can happen
//! only through function pointers/closures passed across crates, which
//! the serving plane does not do on its record path.

use std::collections::{BTreeMap, BTreeSet};

use crate::source::SourceFile;

/// The serving-plane entry points every R2 obligation flows from.
pub const SEEDS: [&str; 2] = ["score_records", "observe_records"];

/// Computes the set of function names reachable from `seeds` through
/// the files for which `in_scope` holds.
pub fn reachable_fns(
    files: &[SourceFile],
    seeds: &[&str],
    mut in_scope: impl FnMut(&SourceFile) -> bool,
) -> BTreeSet<String> {
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in files.iter() {
        if !in_scope(f) {
            continue;
        }
        for item in &f.fns {
            // Test-gated fns (fixtures, helpers) must contribute neither
            // definitions nor edges: a test helper that calls
            // `Engine::fit` would otherwise drag the whole training
            // plane into the serving-reachable set through any shared
            // method name.
            if f.in_test(item.sig_line) {
                continue;
            }
            let entry = edges.entry(item.name.as_str()).or_default();
            entry.extend(item.calls.iter().map(String::as_str));
        }
    }
    let mut reached: BTreeSet<String> = BTreeSet::new();
    let mut frontier: Vec<&str> = seeds
        .iter()
        .copied()
        .filter(|s| edges.contains_key(s))
        .collect();
    for s in &frontier {
        reached.insert((*s).to_string());
    }
    while let Some(name) = frontier.pop() {
        let Some(callees) = edges.get(name) else {
            continue;
        };
        for &callee in callees {
            // Only names *defined* in scope are functions; everything
            // else (std methods, macros-turned-calls) is a leaf.
            if edges.contains_key(callee) && reached.insert(callee.to_string()) {
                frontier.push(callee);
            }
        }
    }
    reached
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_follows_defined_names_only() {
        let a = SourceFile::parse(
            "crates/serve/src/a.rs",
            "pub fn score_records() { helper(); missing(); }\nfn helper() { leaf(); }\nfn leaf() {}\nfn island() {}\n",
        );
        let set = reachable_fns(&[a], &SEEDS, |_| true);
        assert!(set.contains("score_records"));
        assert!(set.contains("helper"));
        assert!(set.contains("leaf"));
        assert!(!set.contains("missing"));
        assert!(!set.contains("island"));
    }
}
