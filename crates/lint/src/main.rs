//! CLI for `ghsom-lint`.
//!
//! ```text
//! cargo run -p ghsom-lint -- [--root DIR] [--report text|json] [--out FILE]
//! ```
//!
//! Exit codes: `0` — no unallowed findings; `1` — at least one
//! unallowed finding; `2` — usage or I/O error. The human summary goes
//! to stderr so `--report json > report.json` stays machine-clean.

use std::path::PathBuf;
use std::process::ExitCode;

use ghsom_lint::report;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--report" => match args.next().as_deref() {
                Some("text") => format = "text".to_string(),
                Some("json") => format = "json".to_string(),
                _ => return usage("--report takes `text` or `json`"),
            },
            "--out" => match args.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage("--out needs a value"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "ghsom-lint [--root DIR] [--report text|json] [--out FILE]\n{}",
                    rule_list()
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let res = match ghsom_lint::lint_workspace(&root) {
        Ok(res) => res,
        Err(e) => {
            eprintln!("ghsom-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let rendered = match format.as_str() {
        "json" => report::render_json(&res),
        _ => report::render_text(&res),
    };
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("ghsom-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        None => print!("{rendered}"),
    }
    let unallowed = res.unallowed().count();
    eprintln!(
        "ghsom-lint: {} files, {} findings, {} unallowed",
        res.files_scanned,
        res.findings.len(),
        unallowed
    );
    if unallowed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn rule_list() -> String {
    ghsom_lint::rules::RULES
        .iter()
        .map(|(name, desc)| format!("  {name:<15} {desc}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "ghsom-lint: {err}\nusage: ghsom-lint [--root DIR] [--report text|json] [--out FILE]"
    );
    ExitCode::from(2)
}
