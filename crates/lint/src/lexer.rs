//! A hand-rolled Rust lexer: tokens + comments with line numbers.
//!
//! The offline build container has no `syn`/`dylint`, so `ghsom-lint`
//! lexes source text directly — the same way `shims/serde_derive`
//! hand-rolls its proc-macro. The lexer's one job is to be *sound about
//! boundaries*: a `.unwrap()` inside a string literal, a doc-comment
//! example, or a nested block comment must never surface as a token,
//! and a `'a` lifetime must never swallow the code after it the way a
//! misread char literal would. Everything a rule matches on is a real
//! code token.
//!
//! Handled: line and (nested) block comments, string literals with
//! escapes, raw strings with arbitrary `#` fences (`r#"…"#`), byte and
//! raw-byte strings, C strings, char literals (incl. `'\u{…}'`),
//! lifetimes and loop labels, raw identifiers (`r#type`), numeric
//! literals (enough to never misparse `0..n` as a float), and
//! single-char punctuation. See `tests/lexer_torture.rs` for the
//! adversarial corpus.

/// A lexed token. Literal *contents* are deliberately dropped: rules
/// only ever match identifier spellings and punctuation shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword. Raw identifiers keep their `r#` prefix so
    /// `r#unsafe` can never match the `unsafe` keyword.
    Ident(String),
    /// `'a` in types/generics, or a loop label.
    Lifetime(String),
    /// Numeric literal (spelling kept only for diagnostics).
    Num(String),
    /// Any string, raw-string, byte-string, C-string or char literal.
    Str,
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A comment (line or block, doc or plain) with its line span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//`/`/*` markers.
    pub text: String,
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (equals `line` for line comments).
    pub end_line: u32,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lexes `src` into `(tokens, comments)`.
///
/// Never panics on any input: unterminated constructs simply run to end
/// of file (the rules operate on whatever tokens precede the breakage,
/// and `rustc` itself rejects such files long before CI reaches us).
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    Lexer {
        b: src.as_bytes(),
        src,
        i: 0,
        line: 1,
        toks: Vec::new(),
        comments: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    toks: Vec<Token>,
    comments: Vec<Comment>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        self.b.get(self.i + ahead).copied().unwrap_or(0)
    }

    fn push(&mut self, tok: Tok) {
        self.toks.push(Token {
            tok,
            line: self.line,
        });
    }

    fn run(mut self) -> (Vec<Token>, Vec<Comment>) {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => {
                    self.i += 1;
                    self.string_body();
                    self.push(Tok::Str);
                }
                b'\'' => self.char_or_lifetime(),
                _ if c.is_ascii_digit() => self.number(),
                _ if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => {
                    self.push(Tok::Punct(c as char));
                    self.i += 1;
                }
            }
        }
        (self.toks, self.comments)
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        self.comments.push(Comment {
            text: self.src[start..self.i].to_string(),
            line: self.line,
            end_line: self.line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        let mut depth = 1usize;
        self.i += 2;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i] == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.i += 2;
            } else {
                if self.b[self.i] == b'\n' {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
        self.comments.push(Comment {
            text: self.src[start..self.i].to_string(),
            line: start_line,
            end_line: self.line,
        });
    }

    /// Body of a `"…"` string, cursor already past the opening quote.
    fn string_body(&mut self) {
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    self.i += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Raw string with `hashes` fence characters, cursor past `r#*"`.
    fn raw_string_body(&mut self, hashes: usize) {
        while self.i < self.b.len() {
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
                continue;
            }
            if self.b[self.i] == b'"'
                && self.b[self.i + 1..]
                    .iter()
                    .take_while(|&&c| c == b'#')
                    .count()
                    >= hashes
            {
                self.i += 1 + hashes;
                return;
            }
            self.i += 1;
        }
    }

    fn char_or_lifetime(&mut self) {
        // Cursor at the opening `'`.
        let n1 = self.peek(1);
        if n1 == b'\\' {
            // Escaped char literal: skip to the closing quote (handles
            // `'\u{1F600}'`, `'\''`, `'\\'`).
            self.i += 2; // past ' and backslash
            if self.peek(0) == b'u' && self.peek(1) == b'{' {
                while self.i < self.b.len() && self.b[self.i] != b'}' {
                    self.i += 1;
                }
            }
            self.i += 1; // the escaped char (or `}`)
            if self.peek(0) == b'\'' {
                self.i += 1;
            }
            self.push(Tok::Str);
            return;
        }
        if is_ident_start(n1) {
            // `'a'` is a char literal; `'a` / `'static` is a lifetime.
            let mut j = self.i + 1;
            while j < self.b.len() && is_ident_continue(self.b[j]) {
                j += 1;
            }
            if self.b.get(j) == Some(&b'\'') {
                self.push(Tok::Str);
                self.i = j + 1;
            } else {
                let name = self.src[self.i + 1..j].to_string();
                self.push(Tok::Lifetime(name));
                self.i = j;
            }
            return;
        }
        // `'"'`, `'1'`, `' '`, multi-byte chars: scan to the closing
        // quote (its 0x27 byte cannot appear inside UTF-8 continuation
        // bytes).
        self.i += 1;
        while self.i < self.b.len() && self.b[self.i] != b'\'' {
            self.i += 1;
        }
        self.i += 1;
        self.push(Tok::Str);
    }

    fn number(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && (is_ident_continue(self.b[self.i])) {
            self.i += 1;
        }
        // A fractional part only when `.` is followed by a digit —
        // leaves `0..n` and `1.max(2)` intact.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.i += 1;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
        }
        let text = self.src[start..self.i].to_string();
        self.push(Tok::Num(text));
    }

    fn ident_or_prefixed_literal(&mut self) {
        let c = self.b[self.i];
        // Raw strings / raw identifiers.
        if c == b'r' {
            if self.peek(1) == b'"' {
                self.i += 2;
                self.raw_string_body(0);
                self.push(Tok::Str);
                return;
            }
            if self.peek(1) == b'#' {
                let hashes = self.b[self.i + 1..]
                    .iter()
                    .take_while(|&&c| c == b'#')
                    .count();
                if self.peek(1 + hashes) == b'"' {
                    self.i += 2 + hashes;
                    self.raw_string_body(hashes);
                    self.push(Tok::Str);
                    return;
                }
                if hashes == 1 && is_ident_start(self.peek(2)) {
                    // Raw identifier: keep the prefix so `r#unsafe`
                    // never matches the `unsafe` keyword.
                    let start = self.i;
                    self.i += 2;
                    while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                        self.i += 1;
                    }
                    let text = self.src[start..self.i].to_string();
                    self.push(Tok::Ident(text));
                    return;
                }
            }
        }
        // Byte / raw-byte / C strings and byte chars.
        if c == b'b' || c == b'c' {
            if self.peek(1) == b'"' {
                self.i += 2;
                self.string_body();
                self.push(Tok::Str);
                return;
            }
            if c == b'b' && self.peek(1) == b'\'' {
                self.i += 1;
                self.char_or_lifetime();
                return;
            }
            if c == b'b' && self.peek(1) == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') {
                let hashes = self.b[self.i + 2..]
                    .iter()
                    .take_while(|&&c| c == b'#')
                    .count();
                if self.peek(2 + hashes) == b'"' {
                    self.i += 3 + hashes;
                    self.raw_string_body(hashes);
                    self.push(Tok::Str);
                    return;
                }
            }
        }
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let text = self.src[start..self.i].to_string();
        self.push(Tok::Ident(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_never_leak_tokens() {
        let src = r##"
            let a = "unsafe unwrap()"; // unsafe in a comment
            /* panic!("no") */
            let b = r#"expect("x")"#;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let strs = toks.iter().filter(|t| t.tok == Tok::Str).count();
        assert_eq!(strs, 1);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/*\n\n*/\nfn f() {}\n\"a\nb\"\nbar";
        let (toks, comments) = lex(src);
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[0].end_line, 3);
        assert_eq!(toks[0].line, 4); // fn
        let bar = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("bar".into()))
            .unwrap();
        assert_eq!(bar.line, 7);
    }
}
