//@ path: crates/featurize/src/r2i.rs
//@ find: no-index@7
pub fn score_records(xs: &[f64]) -> f64 {
    pick(xs)
}
pub fn pick(xs: &[f64]) -> f64 {
    xs[0]
}
