//@ path: crates/bench/src/pin.rs
pub fn set() {
    std::env::set_var("GHSOM_THREADS", "1");
}
