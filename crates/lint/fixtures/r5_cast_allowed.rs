//@ path: crates/serve/src/snapshot.rs
//@ allow: cast@4
pub fn widen(x: usize) -> u64 {
    x as u64 // LINT-ALLOW(cast): usize to u64 is lossless on every supported target
}
