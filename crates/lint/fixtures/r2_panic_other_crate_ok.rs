//@ path: crates/traffic/src/r2o.rs
pub fn parse(x: Option<u8>) -> u8 {
    x.unwrap()
}
