//@ path: crates/daemon/src/server.rs
//@ find: no-panic@7
//@ find: no-panic@10
// The daemon crate is on the serving path: a panic in the network
// front-end kills every tenant at once, so R2 applies to it.
pub fn admit(queue: Option<usize>) -> usize {
    queue.unwrap()
}
pub fn dispatch() {
    panic!("connection state desynced")
}
