//@ path: crates/serve/src/amr.rs
//@ allow: no-panic@6
//@ find: allow@5
pub fn f(x: Option<u8>) -> u8 {
    // LINT-ALLOW(no-panic):
    x.unwrap()
}
