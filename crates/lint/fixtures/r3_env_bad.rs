//@ path: crates/bench/src/other.rs
//@ find: env-guard@5
//@ find: env-guard@8
pub fn set() {
    std::env::set_var("GHSOM_THREADS", "1");
}
pub fn unset() {
    std::env::remove_var("GHSOM_THREADS");
}
