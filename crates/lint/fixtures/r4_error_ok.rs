//@ path: crates/eval/src/r4ok.rs
#[derive(Debug)]
#[non_exhaustive]
pub enum GoodError {
    Oops,
}
impl std::fmt::Display for GoodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "oops")
    }
}
impl std::error::Error for GoodError {}
