//@ path: crates/serve/src/snapshot.rs
//@ find: cast@4
pub fn widen(x: usize) -> u64 {
    x as u64
}
