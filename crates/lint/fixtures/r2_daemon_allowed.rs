//@ path: crates/daemon/src/metrics.rs
//@ allow: no-panic@5
pub fn render(lines: Option<String>) -> String {
    // LINT-ALLOW(no-panic): fixture — render is only called with Some
    lines.unwrap()
}
