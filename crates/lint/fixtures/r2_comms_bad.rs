//@ path: crates/comms/src/node.rs
//@ find: no-panic@8
//@ find: no-panic@11
// The comms crate is on the serving path too: a panic in the fleet
// endpoint that receives bundles kills the daemon hosting it, taking
// every tenant down at once. R2 applies the same as for the daemon.
pub fn seal(part: Option<std::fs::File>) -> std::fs::File {
    part.expect("transfer must be open")
}
pub fn commit(checksum: Option<u64>) -> u64 {
    checksum.unwrap()
}
