//@ path: crates/serve/src/engine.rs
pub fn widen(x: usize) -> u64 {
    x as u64
}
