//@ path: crates/serve/src/r2a.rs
//@ allow: no-panic@4
pub fn a(x: Option<u8>) -> u8 {
    x.unwrap() // LINT-ALLOW(no-panic): x is Some by construction in this fixture
}
