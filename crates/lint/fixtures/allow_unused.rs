//@ path: crates/serve/src/auu.rs
//@ find: allow@3
// LINT-ALLOW(no-panic): nothing on the next line needs this
pub fn f() {}
