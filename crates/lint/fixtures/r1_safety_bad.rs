//@ path: crates/serve/src/r1.rs
//@ find: safety-comment@5
pub fn read(p: *const u8) -> u8 {
    // A plain comment is not a SAFETY justification.
    unsafe { *p }
}
