//@ path: crates/detect/src/r2.rs
//@ find: no-panic@8
//@ find: no-panic@11
//@ find: no-panic@14
//@ find: no-panic@17
//@ find: no-panic@20
pub fn a(x: Option<u8>) -> u8 {
    x.unwrap()
}
pub fn b(x: Option<u8>) -> u8 {
    x.expect("msg")
}
pub fn c() {
    panic!("boom")
}
pub fn d() {
    todo!()
}
pub fn e() {
    unimplemented!()
}
