//@ path: crates/mathkit/src/vector.rs
pub fn score_records(xs: &[f64]) -> f64 {
    kernel(xs)
}
pub fn kernel(xs: &[f64]) -> f64 {
    xs[0]
}
