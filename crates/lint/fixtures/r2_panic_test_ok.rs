//@ path: crates/mathkit/src/r2t.rs
pub fn a(x: Option<u8>) -> Option<u8> {
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        super::a(Some(1)).unwrap();
        panic!("so is panicking");
    }
}
