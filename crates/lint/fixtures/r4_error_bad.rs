//@ path: crates/eval/src/r4.rs
//@ find: error-enum@6
//@ find: error-enum@6
//@ find: error-enum@6
#[derive(Debug)]
pub enum BadError {
    Oops,
}
