//@ path: crates/featurize/src/r2iu.rs
pub fn island(xs: &[f64]) -> f64 {
    xs[0]
}
