//@ path: crates/serve/src/r1ok.rs
pub fn read(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees p is valid for reads.
    unsafe { *p }
}

// SAFETY: Wrapper holds no thread-affine state.
unsafe impl Send for Wrapper {}
pub struct Wrapper;
