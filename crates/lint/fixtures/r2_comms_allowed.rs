//@ path: crates/comms/src/publish.rs
//@ allow: no-panic@5
pub fn fingerprint(meta: Option<u64>) -> u64 {
    // LINT-ALLOW(no-panic): fixture — caller checked presence above
    meta.unwrap()
}
