//@ path: crates/featurize/src/r2ia.rs
//@ allow: no-index@8
pub fn score_records(xs: &[f64]) -> f64 {
    pick(xs)
}
// LINT-ALLOW(no-index): the caller checks xs is non-empty in this fixture
pub fn pick(xs: &[f64]) -> f64 {
    xs[0]
}
