//@ path: crates/serve/src/au.rs
//@ find: allow@3
// LINT-ALLOW(bogus-rule): this rule does not exist
pub fn f() {}
