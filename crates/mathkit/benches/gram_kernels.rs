//! Microkernel-level comparison of the Gram-trick nearest-row engines:
//! the 4-sample block ([`batch::gram_nearest_block`], the tree engine's
//! kernel), the wide 8-sample block ([`batch::gram_nearest_block8`]) and
//! the norm-pruned search ([`batch::gram_nearest_block_pruned`], the
//! serving plane's kernel), on the acceptance shape (1024 units, dim 41,
//! 10k samples).
//!
//! Isolated here so kernel changes can be measured without building the
//! whole workspace. End-to-end numbers live in `ghsom-bench`'s `serving`
//! bench and `BENCH_2.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mathkit::{batch, Matrix};

fn lcg_matrix(rows: usize, cols: usize, mut state: u64) -> Matrix {
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect();
    Matrix::from_flat(rows, cols, data).unwrap()
}

fn bench_kernels(c: &mut Criterion) {
    const DIM: usize = 41;
    const UNITS: usize = 1024;
    const SAMPLES: usize = 10_000;
    let w = lcg_matrix(UNITS, DIM, 7);
    let x = lcg_matrix(SAMPLES, DIM, 99);
    let wt = batch::pack_codebook(&w);
    let wn = batch::half_row_norms_sq(&w);

    // Norm-sorted layout for the pruned search.
    let mut order: Vec<usize> = (0..UNITS).collect();
    order.sort_by(|&a, &b| wn[a].partial_cmp(&wn[b]).unwrap().then(a.cmp(&b)));
    let sorted = Matrix::from_rows(order.iter().map(|&u| w.row(u).to_vec()).collect()).unwrap();
    let swt = batch::pack_codebook(&sorted);
    let swn = batch::half_row_norms_sq(&sorted);
    let perm: Vec<u32> = order.iter().map(|&u| u as u32).collect();

    // The kernels must agree bit-for-bit before we time them.
    let mut a = Vec::new();
    let mut b = Vec::new();
    let mut p = Vec::new();
    batch::gram_nearest_block(x.as_slice(), DIM, &wt, &wn, &mut a);
    batch::gram_nearest_block8(x.as_slice(), DIM, &wt, &wn, &mut b);
    batch::gram_nearest_block_pruned(x.as_slice(), DIM, &swt, &swn, &perm, &mut p);
    assert_eq!(a, b);
    assert_eq!(a, p);

    let mut group = c.benchmark_group("gram_kernels");
    group.throughput(Throughput::Elements(SAMPLES as u64));
    group.bench_function("block4", |bench| {
        bench.iter(|| {
            let mut out = Vec::with_capacity(SAMPLES);
            batch::gram_nearest_block(x.as_slice(), DIM, &wt, &wn, &mut out);
            black_box(out)
        });
    });
    group.bench_function("block8", |bench| {
        bench.iter(|| {
            let mut out = Vec::with_capacity(SAMPLES);
            batch::gram_nearest_block8(x.as_slice(), DIM, &wt, &wn, &mut out);
            black_box(out)
        });
    });
    group.bench_function("pruned", |bench| {
        bench.iter(|| {
            let mut out = Vec::with_capacity(SAMPLES);
            batch::gram_nearest_block_pruned(x.as_slice(), DIM, &swt, &swn, &perm, &mut out);
            black_box(out)
        });
    });
    // The chunked shape the batch engines actually run (512-sample work
    // chunks): isolates the cost of chunking from the kernel itself.
    group.bench_function("pruned_chunk512", |bench| {
        bench.iter(|| {
            let mut acc = 0usize;
            let mut s = 0;
            while s < SAMPLES {
                let e = (s + 512).min(SAMPLES);
                let mut out = Vec::with_capacity(e - s);
                batch::gram_nearest_block_pruned(
                    &x.as_slice()[s * DIM..e * DIM],
                    DIM,
                    &swt,
                    &swn,
                    &perm,
                    &mut out,
                );
                acc += out.len();
                s = e;
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
