//! Error type shared by all `mathkit` operations.

use std::fmt;

/// Errors produced by `mathkit` routines.
///
/// Every fallible public function in this crate returns `Result<_, MathError>`
/// so callers can propagate numerical problems with `?`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MathError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimension the operation expected.
        expected: usize,
        /// Dimension it actually received.
        found: usize,
    },
    /// An operation that requires at least one element received none.
    EmptyInput,
    /// An input contained a NaN or infinite value.
    NonFinite,
    /// A parameter was outside its valid domain (e.g. a negative variance).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations that were attempted.
        iterations: usize,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MathError::EmptyInput => write!(f, "operation requires a non-empty input"),
            MathError::NonFinite => write!(f, "input contains a NaN or infinite value"),
            MathError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            MathError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(MathError, &str)> = vec![
            (
                MathError::DimensionMismatch {
                    expected: 3,
                    found: 2,
                },
                "dimension mismatch: expected 3, found 2",
            ),
            (
                MathError::EmptyInput,
                "operation requires a non-empty input",
            ),
            (
                MathError::NonFinite,
                "input contains a NaN or infinite value",
            ),
            (
                MathError::InvalidParameter {
                    name: "sigma",
                    reason: "must be positive",
                },
                "invalid parameter `sigma`: must be positive",
            ),
            (
                MathError::NoConvergence { iterations: 10 },
                "no convergence after 10 iterations",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<MathError>();
    }
}
