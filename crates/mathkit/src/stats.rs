//! Running and batch statistics: Welford accumulators, summaries, quantiles
//! and fixed-range histograms.

use serde::{Deserialize, Serialize};

use crate::MathError;

/// Numerically stable running mean/variance accumulator (Welford's method).
///
/// Used wherever the pipeline needs single-pass statistics: scaler fitting,
/// quantization-error tracking during GHSOM growth, and the streaming
/// detector's adaptive threshold.
///
/// # Example
///
/// ```
/// use mathkit::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 8);
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`Σ(x−μ)²/n`); `0.0` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`Σ(x−μ)²/(n−1)`); `0.0` with fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// The raw second central moment `Σ(x−μ)²` (the `M₂` accumulator).
    ///
    /// Together with [`Welford::count`] and [`Welford::mean`] this is the
    /// accumulator's **complete** state: [`Welford::from_parts`] rebuilds
    /// an accumulator that continues bit-identically to this one. Used by
    /// the streaming detector to persist its adaptive baseline across
    /// engine swaps and process restarts.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Rebuilds an accumulator from exported state — the inverse of
    /// reading [`Welford::count`] / [`Welford::mean`] / [`Welford::m2`].
    /// The result continues **bit-identically** to the accumulator the
    /// parts were read from (same mean, same variance, same future
    /// updates).
    ///
    /// # Errors
    ///
    /// The parts cross a trust boundary (e.g. a snapshot file), so they
    /// are validated instead of trusted: [`MathError::NonFinite`] when
    /// `mean` or `m2` is NaN/±∞, [`MathError::InvalidParameter`] when
    /// `m2 < 0` (a sum of squares cannot be negative) or when
    /// `count == 0` with non-zero moments (an empty accumulator has
    /// `mean == 0` and `m2 == 0` by construction).
    pub fn from_parts(count: u64, mean: f64, m2: f64) -> Result<Self, MathError> {
        if !mean.is_finite() || !m2.is_finite() {
            return Err(MathError::NonFinite);
        }
        if m2 < 0.0 {
            return Err(MathError::InvalidParameter {
                name: "m2",
                reason: "the second central moment is a sum of squares and cannot be negative",
            });
        }
        if count == 0 && (mean != 0.0 || m2 != 0.0) {
            return Err(MathError::InvalidParameter {
                name: "count",
                reason: "an empty accumulator must have zero mean and m2",
            });
        }
        Ok(Welford { count, mean, m2 })
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    ///
    /// The result is identical (up to floating-point rounding) to pushing all
    /// of `other`'s observations into `self`.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }
}

/// Batch summary of a slice: extrema, mean, deviation and key quantiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 5th percentile.
    pub p05: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes a summary of `values`.
    ///
    /// # Errors
    ///
    /// [`MathError::EmptyInput`] if `values` is empty,
    /// [`MathError::NonFinite`] if it contains NaN or ±∞.
    pub fn from_slice(values: &[f64]) -> Result<Self, MathError> {
        crate::vector::validate(values)?;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut w = Welford::new();
        for &x in values {
            w.push(x);
        }
        Ok(Summary {
            count: values.len(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: w.mean(),
            std: w.sample_std(),
            median: quantile_sorted(&sorted, 0.5),
            p05: quantile_sorted(&sorted, 0.05),
            p95: quantile_sorted(&sorted, 0.95),
            p99: quantile_sorted(&sorted, 0.99),
        })
    }
}

/// Linear-interpolation quantile of an already **sorted** slice.
///
/// `q` is clamped into `[0, 1]`. This is the "type 7" estimator (the
/// numpy/R default).
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] + frac * (sorted[hi] - sorted[lo])
    }
}

/// Convenience quantile of an unsorted slice (sorts a copy).
///
/// # Errors
///
/// [`MathError::EmptyInput`] if `values` is empty,
/// [`MathError::NonFinite`] if it contains NaN or ±∞.
pub fn quantile(values: &[f64], q: f64) -> Result<f64, MathError> {
    crate::vector::validate(values)?;
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Ok(quantile_sorted(&sorted, q))
}

/// Fixed-range histogram with equal-width bins.
///
/// Out-of-range observations are clamped into the first/last bin so that
/// `total()` always equals the number of `add` calls — detector score
/// distributions have long right tails and losing them would bias the
/// threshold calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `nbins` equal-width bins.
    ///
    /// # Errors
    ///
    /// [`MathError::InvalidParameter`] when `nbins == 0`, when `lo >= hi`,
    /// or when either bound is not finite.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Result<Self, MathError> {
        if nbins == 0 {
            return Err(MathError::InvalidParameter {
                name: "nbins",
                reason: "must be at least 1",
            });
        }
        if !lo.is_finite() || !hi.is_finite() {
            return Err(MathError::InvalidParameter {
                name: "range",
                reason: "bounds must be finite",
            });
        }
        if lo >= hi {
            return Err(MathError::InvalidParameter {
                name: "range",
                reason: "lo must be strictly less than hi",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
        })
    }

    /// Adds an observation (NaN observations are ignored).
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let n = self.bins.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.bins[idx] += 1; // LINT-ALLOW(no-index): idx is clamped to 0..bins.len() on the previous line
    }

    /// Adds every value in a slice.
    pub fn extend_from_slice(&mut self, values: &[f64]) {
        for &x in values {
            self.add(x);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of recorded (non-NaN) observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Bin counts normalized to probabilities; all-zero when empty.
    pub fn normalized(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// `(lower, upper)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin index out of bounds");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// The histogram's configured `[lo, hi]` range.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.5, 2.5, 3.5, 10.0, -4.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        let mut w1 = Welford::new();
        w1.push(5.0);
        assert_eq!(w1.mean(), 5.0);
        assert_eq!(w1.sample_variance(), 0.0);
        assert_eq!(w1.population_variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..20] {
            left.push(x);
        }
        for &x in &xs[20..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_from_parts_continues_bit_identically() {
        let mut w = Welford::new();
        for i in 0..37 {
            w.push((i as f64).cos() * 3.0 + 1.0);
        }
        let mut rebuilt = Welford::from_parts(w.count(), w.mean(), w.m2()).unwrap();
        assert_eq!(rebuilt, w);
        // Future updates stay bit-identical, not just the snapshot.
        for x in [0.25, -1.5, 9.0] {
            w.push(x);
            rebuilt.push(x);
            assert_eq!(w.mean().to_bits(), rebuilt.mean().to_bits());
            assert_eq!(w.m2().to_bits(), rebuilt.m2().to_bits());
        }
    }

    #[test]
    fn welford_from_parts_rejects_hostile_state() {
        assert_eq!(
            Welford::from_parts(3, f64::NAN, 1.0).unwrap_err(),
            MathError::NonFinite
        );
        assert_eq!(
            Welford::from_parts(3, 1.0, f64::INFINITY).unwrap_err(),
            MathError::NonFinite
        );
        assert!(matches!(
            Welford::from_parts(3, 1.0, -0.5).unwrap_err(),
            MathError::InvalidParameter { name: "m2", .. }
        ));
        assert!(matches!(
            Welford::from_parts(0, 1.0, 0.0).unwrap_err(),
            MathError::InvalidParameter { name: "count", .. }
        ));
        assert_eq!(Welford::from_parts(0, 0.0, 0.0).unwrap(), Welford::new());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let b = Welford::new();
        let before = a;
        a.merge(&b);
        assert_eq!(a, before);
        let mut c = Welford::new();
        c.merge(&before);
        assert_eq!(c, before);
    }

    #[test]
    fn summary_of_known_data() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert!((s.std - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(Summary::from_slice(&[]).is_err());
        assert!(Summary::from_slice(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 40.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 25.0);
        // q clamped
        assert_eq!(quantile_sorted(&sorted, -3.0), 10.0);
        assert_eq!(quantile_sorted(&sorted, 9.0), 40.0);
    }

    #[test]
    fn quantile_unsorted_convenience() {
        let q = quantile(&[3.0, 1.0, 2.0], 0.5).unwrap();
        assert_eq!(q, 2.0);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile_sorted(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn histogram_basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.extend_from_slice(&[0.5, 1.5, 2.5, 9.9, 5.0]);
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-100.0);
        h.add(100.0);
        h.add(f64::NAN); // ignored
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn histogram_normalized_sums_to_one() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.extend_from_slice(&[0.5, 1.5, 2.5, 3.5]);
        let p = h.normalized();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p, vec![0.25; 4]);
    }

    #[test]
    fn histogram_empty_normalized_is_zero() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(h.normalized(), vec![0.0; 3]);
    }

    #[test]
    fn histogram_bin_edges() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
        assert_eq!(h.range(), (0.0, 10.0));
    }

    #[test]
    fn histogram_rejects_bad_parameters() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }
}
