//! Power-iteration principal component analysis.
//!
//! Two consumers in this workspace:
//!
//! 1. **SOM linear initialization** — spreading the initial codebook along
//!    the first two principal axes of the training data speeds up and
//!    stabilizes convergence (Kohonen's recommended initialization).
//! 2. **The PCA-residual baseline detector** — the classical subspace method
//!    scores a sample by its squared residual off the top-`k` principal
//!    subspace.
//!
//! Power iteration with deflation is entirely adequate here: we only ever
//! need a handful of leading components of covariance matrices with at most
//! ~120 features.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{vector, MathError, Matrix};

/// A fitted PCA model: mean vector, leading components and their variances.
///
/// # Example
///
/// ```
/// use mathkit::{Matrix, Pca};
///
/// # fn main() -> Result<(), mathkit::MathError> {
/// let data = Matrix::from_rows(vec![
///     vec![0.0, 0.0],
///     vec![1.0, 1.0],
///     vec![2.0, 2.0],
///     vec![3.0, 3.1],
/// ])?;
/// let pca = Pca::fit(&data, 1, 100, 42)?;
/// // Points on the diagonal have almost no residual …
/// assert!(pca.residual_sq(&[1.5, 1.5])? < 0.01);
/// // … but a point far off the diagonal does.
/// assert!(pca.residual_sq(&[3.0, -3.0])? > 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    mean: Vec<f64>,
    /// `k × d` matrix; each row is a unit-norm principal axis.
    components: Matrix,
    /// Variance captured by each component (eigenvalues of the covariance).
    eigenvalues: Vec<f64>,
    /// Total variance (trace of the covariance matrix).
    total_variance: f64,
}

impl Pca {
    /// Fits `k` principal components to the rows of `data`.
    ///
    /// `iterations` bounds the power-iteration count per component (200 is
    /// plenty for the matrices in this workspace); `seed` makes the random
    /// starting vectors reproducible.
    ///
    /// # Errors
    ///
    /// [`MathError::InvalidParameter`] when `k` is zero or exceeds the
    /// feature count; [`MathError::EmptyInput`] when `data` has no rows.
    pub fn fit(data: &Matrix, k: usize, iterations: usize, seed: u64) -> Result<Self, MathError> {
        let d = data.cols();
        if k == 0 || k > d {
            return Err(MathError::InvalidParameter {
                name: "k",
                reason: "component count must be in 1..=feature count",
            });
        }
        if data.rows() == 0 {
            return Err(MathError::EmptyInput);
        }
        let mean = data.col_means();
        let mut cov = data.covariance();
        let total_variance: f64 = (0..d).map(|i| cov.get(i, i)).sum();

        let mut rng = StdRng::seed_from_u64(seed);
        let mut components = Matrix::zeros(k, d);
        let mut eigenvalues = Vec::with_capacity(k);

        for comp in 0..k {
            let (v, lambda) = power_iteration(&cov, iterations, &mut rng)?;
            // Deflate: cov -= lambda * v vᵀ
            for i in 0..d {
                for j in 0..d {
                    let val = cov.get(i, j) - lambda * v[i] * v[j];
                    cov.set(i, j, val);
                }
            }
            components.row_mut(comp).copy_from_slice(&v);
            eigenvalues.push(lambda.max(0.0));
        }

        Ok(Pca {
            mean,
            components,
            eigenvalues,
            total_variance: total_variance.max(0.0),
        })
    }

    /// Number of fitted components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.components.cols()
    }

    /// The training-data mean that is subtracted before projection.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Unit-norm principal axis `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_components()`.
    pub fn component(&self, i: usize) -> &[f64] {
        self.components.row(i)
    }

    /// Variance captured by each component.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of total variance captured by each component.
    ///
    /// All-zero data (zero total variance) yields all-zero ratios.
    pub fn explained_ratio(&self) -> Vec<f64> {
        if self.total_variance <= 0.0 {
            return vec![0.0; self.eigenvalues.len()];
        }
        self.eigenvalues
            .iter()
            .map(|&l| (l / self.total_variance).clamp(0.0, 1.0))
            .collect()
    }

    /// Projects a sample onto the principal subspace, returning `k` scores.
    ///
    /// # Errors
    ///
    /// [`MathError::DimensionMismatch`] when `x.len() != dim()`.
    pub fn transform(&self, x: &[f64]) -> Result<Vec<f64>, MathError> {
        if x.len() != self.dim() {
            return Err(MathError::DimensionMismatch {
                expected: self.dim(),
                found: x.len(),
            });
        }
        let centered = vector::sub(x, &self.mean);
        Ok(self
            .components
            .iter_rows()
            .map(|c| vector::dot(c, &centered))
            .collect())
    }

    /// Reconstructs a sample from the principal subspace: `mean + Σ tᵢ·vᵢ`.
    ///
    /// # Errors
    ///
    /// [`MathError::DimensionMismatch`] when `x.len() != dim()`.
    pub fn reconstruct(&self, x: &[f64]) -> Result<Vec<f64>, MathError> {
        let scores = self.transform(x)?;
        let mut out = self.mean.clone();
        for (t, comp) in scores.iter().zip(self.components.iter_rows()) {
            vector::axpy(&mut out, *t, comp);
        }
        Ok(out)
    }

    /// Squared residual `‖x − reconstruct(x)‖²` — the classical subspace
    /// anomaly score (large residual ⇒ the sample leaves the normal
    /// subspace).
    ///
    /// # Errors
    ///
    /// [`MathError::DimensionMismatch`] when `x.len() != dim()`.
    pub fn residual_sq(&self, x: &[f64]) -> Result<f64, MathError> {
        let rec = self.reconstruct(x)?;
        Ok(crate::distance::sq_euclidean(x, &rec))
    }
}

/// Leading eigenpair of a symmetric matrix by power iteration.
///
/// Returns `(eigenvector, eigenvalue)`. For a (near-)zero matrix the
/// eigenvalue converges to ~0 and an arbitrary unit vector is returned,
/// which is exactly what deflation needs.
fn power_iteration(
    m: &Matrix,
    iterations: usize,
    rng: &mut StdRng,
) -> Result<(Vec<f64>, f64), MathError> {
    let d = m.rows();
    if d != m.cols() {
        return Err(MathError::DimensionMismatch {
            expected: d,
            found: m.cols(),
        });
    }
    let mut v: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() - 0.5).collect();
    vector::normalize(&mut v);
    if vector::norm(&v) == 0.0 {
        v[0] = 1.0;
    }
    let mut lambda = 0.0;
    for _ in 0..iterations.max(1) {
        let mut next = m.mul_vec(&v)?;
        let n = vector::norm(&next);
        if n < 1e-300 {
            // Matrix annihilates v (zero matrix after deflation).
            return Ok((v, 0.0));
        }
        for x in next.iter_mut() {
            *x /= n;
        }
        let new_lambda = vector::dot(&next, &m.mul_vec(&next)?);
        let converged = (new_lambda - lambda).abs() <= 1e-12 * new_lambda.abs().max(1.0);
        v = next;
        lambda = new_lambda;
        if converged {
            break;
        }
    }
    Ok((v, lambda))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data stretched along (1, 1)/√2 with slight noise on (1, -1).
    fn diagonal_data() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..100 {
            let t = i as f64 / 10.0;
            let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
            rows.push(vec![t + noise, t - noise]);
        }
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn first_component_is_dominant_direction() {
        let pca = Pca::fit(&diagonal_data(), 2, 300, 1).unwrap();
        let c0 = pca.component(0);
        // Should be ±(1,1)/√2.
        let expected = 1.0 / 2f64.sqrt();
        assert!(
            (c0[0].abs() - expected).abs() < 1e-3,
            "component 0 = {c0:?}"
        );
        assert!((c0[1].abs() - expected).abs() < 1e-3);
        assert!(c0[0].signum() == c0[1].signum());
    }

    #[test]
    fn components_are_orthonormal() {
        let pca = Pca::fit(&diagonal_data(), 2, 300, 2).unwrap();
        let c0 = pca.component(0);
        let c1 = pca.component(1);
        assert!((vector::norm(c0) - 1.0).abs() < 1e-9);
        assert!((vector::norm(c1) - 1.0).abs() < 1e-9);
        assert!(vector::dot(c0, c1).abs() < 1e-6);
    }

    #[test]
    fn eigenvalues_are_sorted_and_explain_variance() {
        let pca = Pca::fit(&diagonal_data(), 2, 300, 3).unwrap();
        let ev = pca.eigenvalues();
        assert!(ev[0] >= ev[1]);
        let ratios = pca.explained_ratio();
        assert!(ratios[0] > 0.99, "ratios {ratios:?}");
        assert!((ratios.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transform_reconstruct_roundtrip_in_subspace() {
        let pca = Pca::fit(&diagonal_data(), 2, 300, 4).unwrap();
        // With all components kept, reconstruction is exact.
        let x = [3.3, 3.1];
        let rec = pca.reconstruct(&x).unwrap();
        assert!(crate::distance::euclidean(&x, &rec) < 1e-6);
        assert!(pca.residual_sq(&x).unwrap() < 1e-10);
    }

    #[test]
    fn residual_flags_off_subspace_points() {
        let pca = Pca::fit(&diagonal_data(), 1, 300, 5).unwrap();
        let on = pca.residual_sq(&[5.0, 5.0]).unwrap();
        let off = pca.residual_sq(&[5.0, -5.0]).unwrap();
        assert!(on < 0.1, "on-subspace residual {on}");
        assert!(off > 10.0, "off-subspace residual {off}");
    }

    #[test]
    fn fit_rejects_bad_k() {
        let data = diagonal_data();
        assert!(Pca::fit(&data, 0, 10, 0).is_err());
        assert!(Pca::fit(&data, 3, 10, 0).is_err());
    }

    #[test]
    fn transform_rejects_wrong_dimension() {
        let pca = Pca::fit(&diagonal_data(), 1, 100, 0).unwrap();
        assert!(matches!(
            pca.transform(&[1.0, 2.0, 3.0]).unwrap_err(),
            MathError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn constant_data_has_zero_variance() {
        let data = Matrix::from_rows(vec![vec![2.0, 2.0]; 10]).unwrap();
        let pca = Pca::fit(&data, 1, 100, 0).unwrap();
        assert_eq!(pca.explained_ratio(), vec![0.0]);
        // Every point reconstructs to the mean, residual of the constant is 0.
        assert!(pca.residual_sq(&[2.0, 2.0]).unwrap() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Pca::fit(&diagonal_data(), 2, 300, 9).unwrap();
        let b = Pca::fit(&diagonal_data(), 2, 300, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_roundtrip() {
        let pca = Pca::fit(&diagonal_data(), 2, 100, 1).unwrap();
        let json = serde_json::to_string(&pca).unwrap();
        let back: Pca = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pca);
    }

    #[test]
    fn accessors() {
        let pca = Pca::fit(&diagonal_data(), 2, 100, 1).unwrap();
        assert_eq!(pca.n_components(), 2);
        assert_eq!(pca.dim(), 2);
        assert_eq!(pca.mean().len(), 2);
    }
}
