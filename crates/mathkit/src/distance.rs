//! Distance metrics for codebook search.
//!
//! The SOM literature almost always uses Euclidean distance, but the
//! detection layer sometimes prefers Manhattan (more robust to single-feature
//! spikes) or cosine (volume-invariant). [`Metric`] makes the choice a value
//! so detector configurations can be serialized.

use serde::{Deserialize, Serialize};

/// Squared Euclidean distance `‖a − b‖²`.
///
/// This is the kernel used for best-matching-unit search: the square root is
/// monotone, so it can be skipped while comparing candidates.
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sq_euclidean: length mismatch");
    // Four independent accumulators over `chunks_exact` — the shape LLVM
    // auto-vectorizes; the remainder runs scalar.
    let mut acc = [0.0f64; 4];
    for (xa, xb) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
        for k in 0..4 {
            let d = xa[k] - xb[k];
            acc[k] += d * d;
        }
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    let tail = a.len() - a.len() % 4;
    for (x, y) in a[tail..].iter().zip(&b[tail..]) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// Euclidean distance `‖a − b‖₂`.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Manhattan distance `‖a − b‖₁`.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "manhattan: length mismatch");
    let mut acc = [0.0f64; 4];
    for (xa, xb) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
        for k in 0..4 {
            acc[k] += (xa[k] - xb[k]).abs();
        }
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    let tail = a.len() - a.len() % 4;
    for (x, y) in a[tail..].iter().zip(&b[tail..]) {
        sum += (x - y).abs();
    }
    sum
}

/// Chebyshev distance `‖a − b‖∞`.
#[inline]
pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "chebyshev: length mismatch");
    a.iter().zip(b).fold(0.0, |m, (x, y)| m.max((x - y).abs()))
}

/// Cosine distance `1 − cos(a, b)`, in `[0, 2]`.
///
/// If either vector is zero the distance is defined as `1.0` (maximally
/// non-aligned with everything), which keeps detector score ranges bounded.
#[inline]
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "cosine: length mismatch");
    let (mut dot, mut na, mut nb) = (0.0, 0.0, 0.0);
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot / (na.sqrt() * nb.sqrt())
}

/// A serializable choice of distance metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Metric {
    /// `‖a − b‖₂` — the SOM default.
    #[default]
    Euclidean,
    /// `‖a − b‖²` — same ordering as Euclidean, cheaper; scores are squared.
    SqEuclidean,
    /// `‖a − b‖₁`.
    Manhattan,
    /// `‖a − b‖∞`.
    Chebyshev,
    /// `1 − cos(a, b)`.
    Cosine,
}

impl Metric {
    /// Evaluates the metric on a pair of equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the slices have different lengths.
    #[inline]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Metric::Euclidean => euclidean(a, b),
            Metric::SqEuclidean => sq_euclidean(a, b),
            Metric::Manhattan => manhattan(a, b),
            Metric::Chebyshev => chebyshev(a, b),
            Metric::Cosine => cosine(a, b),
        }
    }

    /// The comparison kernel as a plain function, resolved **once** per
    /// search instead of once per codebook row.
    ///
    /// For the Euclidean family the kernel is the squared distance (a
    /// monotone proxy, so argmin ordering is preserved); run the winning
    /// value through [`Metric::finalize`] to recover the metric's distance.
    #[inline]
    pub fn scan_kernel(&self) -> fn(&[f64], &[f64]) -> f64 {
        match self {
            Metric::Euclidean | Metric::SqEuclidean => sq_euclidean,
            Metric::Manhattan => manhattan,
            Metric::Chebyshev => chebyshev,
            Metric::Cosine => cosine,
        }
    }

    /// Maps a [`Metric::scan_kernel`] proxy value back to the metric's
    /// distance (the square root for [`Metric::Euclidean`], identity
    /// otherwise).
    #[inline]
    pub fn finalize(&self, proxy: f64) -> f64 {
        match self {
            Metric::Euclidean => proxy.max(0.0).sqrt(),
            _ => proxy,
        }
    }

    /// `true` when BMU search under this metric can use the Gram-trick
    /// batched engine (`‖x−w‖² = ‖x‖² − 2·x·w + ‖w‖²`).
    #[inline]
    pub fn gram_compatible(&self) -> bool {
        matches!(self, Metric::Euclidean | Metric::SqEuclidean)
    }

    /// All metric variants, for exhaustive testing and sweeps.
    pub const ALL: [Metric; 5] = [
        Metric::Euclidean,
        Metric::SqEuclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Cosine,
    ];
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Metric::Euclidean => "euclidean",
            Metric::SqEuclidean => "sq-euclidean",
            Metric::Manhattan => "manhattan",
            Metric::Chebyshev => "chebyshev",
            Metric::Cosine => "cosine",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [1.0, 2.0, 3.0];
    const B: [f64; 3] = [4.0, 6.0, 3.0];

    #[test]
    fn euclidean_matches_hand_computation() {
        assert!((euclidean(&A, &B) - 5.0).abs() < 1e-12);
        assert!((sq_euclidean(&A, &B) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        assert_eq!(manhattan(&A, &B), 7.0);
        assert_eq!(chebyshev(&A, &B), 4.0);
    }

    #[test]
    fn cosine_of_parallel_is_zero() {
        assert!(cosine(&[1.0, 2.0], &[2.0, 4.0]).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_orthogonal_is_one() {
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_opposite_is_two() {
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_with_zero_vector_is_one() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
        assert_eq!(cosine(&[1.0, 1.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn identity_of_indiscernibles() {
        for m in Metric::ALL {
            assert!(
                m.eval(&A, &A).abs() < 1e-12,
                "{m} distance of a point to itself must be ~0"
            );
        }
    }

    #[test]
    fn symmetry() {
        for m in Metric::ALL {
            assert!(
                (m.eval(&A, &B) - m.eval(&B, &A)).abs() < 1e-12,
                "{m} must be symmetric"
            );
        }
    }

    #[test]
    fn metric_eval_dispatches() {
        assert_eq!(Metric::Euclidean.eval(&A, &B), euclidean(&A, &B));
        assert_eq!(Metric::SqEuclidean.eval(&A, &B), sq_euclidean(&A, &B));
        assert_eq!(Metric::Manhattan.eval(&A, &B), manhattan(&A, &B));
        assert_eq!(Metric::Chebyshev.eval(&A, &B), chebyshev(&A, &B));
        assert_eq!(Metric::Cosine.eval(&A, &B), cosine(&A, &B));
    }

    #[test]
    fn display_names() {
        assert_eq!(Metric::Euclidean.to_string(), "euclidean");
        assert_eq!(Metric::Cosine.to_string(), "cosine");
    }

    #[test]
    fn default_is_euclidean() {
        assert_eq!(Metric::default(), Metric::Euclidean);
    }
}
