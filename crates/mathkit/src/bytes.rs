//! Little-endian byte-layout helpers for binary model snapshots.
//!
//! The serving plane persists compiled models as sectioned binary files
//! (see `ghsom_serve::snapshot` for the wire format). This module holds
//! the representation-agnostic pieces: fixed little-endian scalar
//! encode/decode, bulk slice encode/decode, 8-byte alignment arithmetic,
//! and the FNV-1a-64 checksum the snapshot header carries. Everything here
//! is safe code; zero-copy reinterpretation of mapped bytes lives with the
//! format owner.
//!
//! All multi-byte values are **little-endian** on every target; on the
//! dominant LE platforms the bulk paths compile down to `memcpy`.

/// Rounds `offset` up to the next multiple of `align`.
///
/// # Panics
///
/// Panics if `align` is zero or the result overflows `usize`.
pub fn align_up(offset: usize, align: usize) -> usize {
    assert!(align > 0, "alignment must be positive");
    offset
        .checked_add(align - 1)
        // LINT-ALLOW(no-panic): documented panic; encode-side offsets are bounded by an in-memory Vec length
        .expect("aligned offset overflows usize")
        / align
        * align
}

/// Appends `v` as 8 little-endian bytes.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` as 4 little-endian bytes.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` as 8 little-endian bytes (IEEE-754 bit pattern, exact).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a whole slice of `u32`s.
pub fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    out.reserve(vs.len() * 4);
    for &v in vs {
        put_u32(out, v);
    }
}

/// Appends a whole slice of `u64`s.
pub fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
    out.reserve(vs.len() * 8);
    for &v in vs {
        put_u64(out, v);
    }
}

/// Appends a whole slice of `f64`s (bit patterns, exact roundtrip).
pub fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    out.reserve(vs.len() * 8);
    for &v in vs {
        put_f64(out, v);
    }
}

/// Reads a little-endian `u64` at `offset`, or `None` past the end.
pub fn get_u64(bytes: &[u8], offset: usize) -> Option<u64> {
    let end = offset.checked_add(8)?;
    let b: [u8; 8] = bytes.get(offset..end)?.try_into().ok()?;
    Some(u64::from_le_bytes(b))
}

/// Reads a little-endian `u32` at `offset`, or `None` past the end.
pub fn get_u32(bytes: &[u8], offset: usize) -> Option<u32> {
    let end = offset.checked_add(4)?;
    let b: [u8; 4] = bytes.get(offset..end)?.try_into().ok()?;
    Some(u32::from_le_bytes(b))
}

/// Reads a little-endian `f64` at `offset`, or `None` past the end.
pub fn get_f64(bytes: &[u8], offset: usize) -> Option<f64> {
    get_u64(bytes, offset).map(f64::from_bits)
}

/// Reads a little-endian `u32` at `offset` as a `usize`, or `None` past
/// the end.
///
/// The width adaptation is checked (`usize::try_from`), so snapshot
/// decoders can use this instead of an `as usize` cast; it cannot fail
/// on any target Rust supports (`usize` is at least 32 bits there).
pub fn get_u32_usize(bytes: &[u8], offset: usize) -> Option<usize> {
    get_u32(bytes, offset).and_then(|v| usize::try_from(v).ok())
}

/// Reads a little-endian `u64` at `offset` as a `usize`.
///
/// `None` past the end of `bytes` **or** when the value does not fit in
/// `usize` (possible on 32-bit targets) — the checked width adaptation
/// the snapshot trust boundary uses instead of `as` casts.
pub fn get_u64_usize(bytes: &[u8], offset: usize) -> Option<usize> {
    get_u64(bytes, offset).and_then(|v| usize::try_from(v).ok())
}

/// Decodes a whole little-endian `u32` section.
///
/// Returns `None` when `bytes` is not a multiple of 4 long.
pub fn get_u32s(bytes: &[u8]) -> Option<Vec<u32>> {
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(4)
            // LINT-ALLOW(no-panic): chunks_exact(4) yields exactly 4-byte slices
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect(),
    )
}

/// Decodes a whole little-endian `u64` section.
///
/// Returns `None` when `bytes` is not a multiple of 8 long.
pub fn get_u64s(bytes: &[u8]) -> Option<Vec<u64>> {
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            // LINT-ALLOW(no-panic): chunks_exact(8) yields exactly 8-byte slices
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect(),
    )
}

/// Decodes a whole little-endian `f64` section (exact bit patterns).
///
/// Returns `None` when `bytes` is not a multiple of 8 long.
pub fn get_f64s(bytes: &[u8]) -> Option<Vec<f64>> {
    Some(get_u64s(bytes)?.into_iter().map(f64::from_bits).collect())
}

/// FNV-1a 64-bit checksum.
///
/// Deliberately simple: the snapshot checksum defends against truncation
/// and bit rot, not adversaries. Stable across platforms and releases —
/// this function is part of the snapshot wire format.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_rounds_to_multiples() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 8), 16);
        assert_eq!(align_up(13, 4), 16);
    }

    #[test]
    #[should_panic(expected = "alignment must be positive")]
    fn align_up_rejects_zero() {
        align_up(1, 0);
    }

    #[test]
    fn scalars_roundtrip() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX - 1);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        assert_eq!(get_u64(&buf, 0), Some(u64::MAX - 1));
        assert_eq!(get_u32(&buf, 8), Some(0xDEAD_BEEF));
        assert_eq!(get_f64(&buf, 12).unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(get_f64(&buf, 20).unwrap().is_nan());
        // Out-of-range reads fail instead of panicking.
        assert_eq!(get_u64(&buf, buf.len() - 4), None);
        assert_eq!(get_u32(&buf, usize::MAX - 1), None);
    }

    #[test]
    fn slices_roundtrip_exactly() {
        let f = [1.5, -2.25, f64::MIN_POSITIVE, 0.1 + 0.2];
        let u = [0u32, 1, u32::MAX];
        let w = [7u64, u64::MAX];
        let mut buf = Vec::new();
        put_f64s(&mut buf, &f);
        put_u32s(&mut buf, &u);
        put_u64s(&mut buf, &w);
        let back_f = get_f64s(&buf[..32]).unwrap();
        for (a, b) in f.iter().zip(&back_f) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(get_u32s(&buf[32..44]).unwrap(), u);
        assert_eq!(get_u64s(&buf[44..]).unwrap(), w);
        // Ragged sections are rejected.
        assert_eq!(get_f64s(&buf[..31]), None);
        assert_eq!(get_u32s(&buf[..3]), None);
    }

    #[test]
    fn usize_getters_check_range() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, 9);
        assert_eq!(get_u32_usize(&buf, 0), Some(7));
        assert_eq!(get_u64_usize(&buf, 4), Some(9));
        assert_eq!(get_u32_usize(&buf, buf.len()), None);
        assert_eq!(get_u64_usize(&buf, buf.len() - 4), None);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
