//! Dense numerics for the `ghsom-suite` workspace.
//!
//! This crate provides the small, self-contained numerical substrate that the
//! growing hierarchical self-organizing map (GHSOM) and its evaluation
//! harness need:
//!
//! * [`vector`] — flat `&[f64]` kernels (dot products, norms, fused
//!   SOM-style updates) used in the hot training loops.
//! * [`matrix`] — a row-major dense [`Matrix`] with the handful of
//!   operations GHSOM needs (covariance, transpose, matrix-vector products).
//! * [`stats`] — running statistics ([`Welford`]), summaries, quantiles and
//!   fixed-range histograms.
//! * [`entropy`] — Shannon entropy and divergences over count histograms,
//!   used by the windowed traffic-feature extractors.
//! * [`distance`] — the distance metrics a SOM codebook search can use,
//!   with monomorphized scan kernels resolved once per search.
//! * [`batch`] — the batched nearest-row engine: Gram-trick
//!   (`‖x−w‖² = ‖x‖² − 2·x·w + ‖w‖²`) kernels over a transposed codebook,
//!   the compute core of batched BMU search.
//! * [`parallel`] — deterministic chunked data-parallel helpers (std
//!   scoped threads behind the `rayon` cargo feature).
//! * [`sampler`] — seedable samplers (normal, log-normal, Pareto, Zipf,
//!   gamma, categorical) used by the synthetic traffic generators; the
//!   sanctioned `rand` crate only ships uniform sampling, so the classic
//!   transforms are implemented here.
//! * [`pca`] — power-iteration principal component analysis, used both for
//!   SOM linear initialization and as the classical PCA-residual baseline
//!   detector.
//!
//! The crate is deliberately free of `unsafe` and of heavyweight linear
//! algebra dependencies: every routine is sized to what the paper's
//! reproduction actually exercises, and each is tested directly.
//!
//! # Example
//!
//! ```
//! use mathkit::{distance::euclidean, matrix::Matrix, pca::Pca};
//!
//! # fn main() -> Result<(), mathkit::MathError> {
//! let data = Matrix::from_rows(vec![
//!     vec![1.0, 2.0, 0.1],
//!     vec![2.0, 4.1, 0.0],
//!     vec![3.0, 6.0, -0.1],
//!     vec![4.0, 7.9, 0.1],
//! ])?;
//! let pca = Pca::fit(&data, 1, 200, 7)?;
//! // The first component captures the dominant (x, 2x) direction.
//! assert!(pca.explained_ratio()[0] > 0.95);
//! assert!(euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0 < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)] // belt-and-braces should the forbid ever be relaxed
#![warn(missing_docs)]

pub mod batch;
pub mod bytes;
pub mod distance;
pub mod entropy;
pub mod error;
pub mod matrix;
pub mod parallel;
pub mod pca;
pub mod sampler;
pub mod stats;
pub mod vector;

pub use distance::Metric;
pub use error::MathError;
pub use matrix::{Matrix, MatrixView};
pub use pca::Pca;
pub use stats::{Histogram, Summary, Welford};
