//! Deterministic data-parallel helpers for the hot batch kernels.
//!
//! The `rayon` cargo feature gates the actual threading (the offline build
//! container has no rayon crate, so the implementation uses `std::thread`
//! scoped threads with a work-stealing-free chunk queue). The helpers are
//! **bit-deterministic**: work is split into fixed-size chunks and results
//! are merged in chunk-index order, so the output is identical whatever the
//! thread count — including one. With the feature disabled the same chunked
//! algorithm runs sequentially, producing the same bits.
//!
//! Thread count comes from `std::thread::available_parallelism`, clamped by
//! the `GHSOM_THREADS` environment variable when set (handy for
//! single-thread baselines in benchmarks). An outer orchestration layer —
//! the sharded serving plane — can additionally pin the *calling thread* to
//! a fixed budget with [`with_thread_cap`], which takes precedence over the
//! environment and keeps shard workers from spawning nested worker pools.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Per-thread override consulted before the environment. `None` means
    /// "no override"; `Some(n)` caps this thread's helpers at `n` workers.
    static THREAD_CAP: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with this thread's parallel helpers capped at `cap` workers
/// (clamped to at least 1), restoring the previous cap afterwards — also on
/// panic.
///
/// The cap applies to the calling thread only and takes precedence over
/// `GHSOM_THREADS`. Its purpose is nested-parallelism suppression: when an
/// outer layer (e.g. a sharded engine) has already split the work across N
/// OS threads, each worker runs the inner kernels under
/// `with_thread_cap(1, ..)` so the per-shard walk stays sequential instead
/// of oversubscribing the machine with N nested pools.
pub fn with_thread_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_CAP.with(|c| c.replace(Some(cap.max(1)))));
    f()
}

/// Pure thread-count resolution, split out from [`max_threads`] so the
/// parse/clamp policy is unit-testable without touching the process
/// environment.
///
/// Policy:
/// - `raw == None` (variable unset) → `hardware`.
/// - Unparsable values (empty, garbage, negative) → `hardware`; a malformed
///   knob must never change behaviour, only an explicit one.
/// - `0` → `hardware` ("auto": use everything), the conventional meaning of
///   a zero thread-count knob.
/// - `n >= 1` → `min(n, hardware)`. These kernels are CPU-bound with no
///   blocking, so threads beyond the core count only add contention; more
///   importantly an accidental `GHSOM_THREADS=1000000` must not try to
///   spawn a million scoped threads.
///
/// The result is always at least 1, even if `hardware` is reported as 0.
pub fn resolve_threads(raw: Option<&str>, hardware: usize) -> usize {
    let hardware = hardware.max(1);
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        None | Some(0) => hardware,
        Some(n) => n.min(hardware),
    }
}

/// The number of worker threads parallel helpers may use on this thread.
///
/// Resolution order: the calling thread's [`with_thread_cap`] override (if
/// any), then the `GHSOM_THREADS` environment variable, then the machine's
/// available parallelism. `GHSOM_THREADS=1` forces sequential execution;
/// `0`, unset, or invalid values mean "auto" (all available cores); values
/// above the core count are clamped down to it (see [`resolve_threads`] for
/// the full policy).
pub fn max_threads() -> usize {
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    if let Some(cap) = THREAD_CAP.with(|c| c.get()) {
        return cap.min(hardware).max(1);
    }
    let raw = std::env::var("GHSOM_THREADS").ok();
    resolve_threads(raw.as_deref(), hardware)
}

/// Splits `0..total` into `chunk`-sized ranges, maps each through `f`, and
/// returns the results in chunk order.
///
/// Deterministic: the chunk partition depends only on `total` and `chunk`,
/// never on the thread count. Panics in workers propagate.
pub fn par_map_chunks<R, F>(total: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let nchunks = total.div_ceil(chunk);
    let range_of = |i: usize| i * chunk..((i + 1) * chunk).min(total);
    run_indexed(nchunks, move |i| f(range_of(i)))
}

/// Maps `f` over `items`, returning results in item order; parallel when the
/// `rayon` feature is enabled and the machine has more than one thread.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_indexed(items.len(), move |i| f(&items[i]))
}

#[cfg(feature = "rayon")]
fn run_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    let workers = max_threads().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|o| o.expect("all chunks completed")) // LINT-ALLOW(no-panic): the scoped workers send every index exactly once before the channel closes
        .collect()
}

#[cfg(not(feature = "rayon"))]
fn run_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    (0..n).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_in_order() {
        let sums = par_map_chunks(10, 3, |r| r.clone().sum::<usize>());
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = par_map_chunks(0, 4, |r| r.len());
        assert!(out.is_empty());
    }

    #[test]
    fn single_chunk_runs_inline() {
        let out = par_map_chunks(3, 100, |r| r.len());
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn resolve_unset_uses_hardware() {
        assert_eq!(resolve_threads(None, 8), 8);
        assert_eq!(resolve_threads(None, 1), 1);
    }

    #[test]
    fn resolve_zero_means_auto() {
        assert_eq!(resolve_threads(Some("0"), 8), 8);
        assert_eq!(resolve_threads(Some(" 0 "), 3), 3);
    }

    #[test]
    fn resolve_clamps_above_hardware() {
        assert_eq!(resolve_threads(Some("64"), 8), 8);
        assert_eq!(resolve_threads(Some("1000000"), 4), 4);
        assert_eq!(resolve_threads(Some("2"), 8), 2);
        assert_eq!(resolve_threads(Some("8"), 8), 8);
    }

    #[test]
    fn resolve_rejects_garbage() {
        assert_eq!(resolve_threads(Some(""), 6), 6);
        assert_eq!(resolve_threads(Some("abc"), 6), 6);
        assert_eq!(resolve_threads(Some("-3"), 6), 6);
        assert_eq!(resolve_threads(Some("2.5"), 6), 6);
    }

    #[test]
    fn resolve_survives_zero_hardware() {
        // `available_parallelism` can in principle report an error upstream;
        // the resolver itself must still never return 0.
        assert_eq!(resolve_threads(None, 0), 1);
        assert_eq!(resolve_threads(Some("4"), 0), 1);
    }

    #[test]
    fn thread_cap_overrides_and_restores() {
        let outer = max_threads();
        let inner = with_thread_cap(1, max_threads);
        assert_eq!(inner, 1);
        assert_eq!(max_threads(), outer, "cap must be restored on exit");
        // Nested caps restore the *previous* cap, not clear it.
        with_thread_cap(1, || {
            with_thread_cap(4, || assert!(max_threads() >= 1));
            assert_eq!(max_threads(), 1);
        });
    }

    #[test]
    fn thread_cap_restored_on_panic() {
        let before = max_threads();
        let result = std::panic::catch_unwind(|| {
            with_thread_cap(1, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(max_threads(), before);
    }

    #[test]
    fn capped_helpers_still_produce_identical_results() {
        let seq = with_thread_cap(1, || par_map_chunks(100, 7, |r| r.sum::<usize>()));
        let par = par_map_chunks(100, 7, |r| r.sum::<usize>());
        assert_eq!(seq, par);
    }
}
