//! Deterministic data-parallel helpers for the hot batch kernels.
//!
//! The `rayon` cargo feature gates the actual threading (the offline build
//! container has no rayon crate, so the implementation uses `std::thread`
//! scoped threads with a work-stealing-free chunk queue). The helpers are
//! **bit-deterministic**: work is split into fixed-size chunks and results
//! are merged in chunk-index order, so the output is identical whatever the
//! thread count — including one. With the feature disabled the same chunked
//! algorithm runs sequentially, producing the same bits.
//!
//! Thread count comes from `std::thread::available_parallelism`, clamped by
//! the `GHSOM_THREADS` environment variable when set (handy for
//! single-thread baselines in benchmarks).

use std::ops::Range;

/// The number of worker threads parallel helpers may use.
///
/// `GHSOM_THREADS=1` forces sequential execution; unset or invalid values
/// fall back to the machine's available parallelism.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("GHSOM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Splits `0..total` into `chunk`-sized ranges, maps each through `f`, and
/// returns the results in chunk order.
///
/// Deterministic: the chunk partition depends only on `total` and `chunk`,
/// never on the thread count. Panics in workers propagate.
pub fn par_map_chunks<R, F>(total: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let nchunks = total.div_ceil(chunk);
    let range_of = |i: usize| i * chunk..((i + 1) * chunk).min(total);
    run_indexed(nchunks, move |i| f(range_of(i)))
}

/// Maps `f` over `items`, returning results in item order; parallel when the
/// `rayon` feature is enabled and the machine has more than one thread.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_indexed(items.len(), move |i| f(&items[i]))
}

#[cfg(feature = "rayon")]
fn run_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    let workers = max_threads().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|o| o.expect("all chunks completed"))
        .collect()
}

#[cfg(not(feature = "rayon"))]
fn run_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    (0..n).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_in_order() {
        let sums = par_map_chunks(10, 3, |r| r.clone().sum::<usize>());
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = par_map_chunks(0, 4, |r| r.len());
        assert!(out.is_empty());
    }

    #[test]
    fn single_chunk_runs_inline() {
        let out = par_map_chunks(3, 100, |r| r.len());
        assert_eq!(out, vec![3]);
    }
}
