//! Flat `&[f64]` kernels used by the SOM/GHSOM training loops.
//!
//! These functions are the hot path of codebook training: they avoid
//! allocation and use `debug_assert!` for dimension checks so release builds
//! pay no cost, while the fallible `checked_*` wrappers are available at API
//! boundaries where inputs come from the outside world.

use crate::MathError;

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dimension-checked [`dot`].
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] if lengths differ.
pub fn checked_dot(a: &[f64], b: &[f64]) -> Result<f64, MathError> {
    if a.len() != b.len() {
        return Err(MathError::DimensionMismatch {
            expected: a.len(),
            found: b.len(),
        });
    }
    Ok(dot(a, b))
}

/// Squared Euclidean norm `‖a‖²`.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum()
}

/// Euclidean norm `‖a‖₂`.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    norm_sq(a).sqrt()
}

/// Manhattan norm `‖a‖₁`.
#[inline]
pub fn norm_l1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Chebyshev norm `‖a‖∞`.
#[inline]
pub fn norm_linf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// Normalizes `a` to unit Euclidean length in place.
///
/// A zero vector is left untouched (there is no meaningful direction to
/// preserve), which is the behaviour the power-iteration PCA relies on.
pub fn normalize(a: &mut [f64]) {
    let n = norm(a);
    if n > 0.0 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

/// Element-wise `out = a - b` into a fresh vector.
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise `a += s * b`, the fused update at the heart of SOM training
/// (`w += α·h·(x − w)` is expressed as `axpy(w, α·h, x − w)` without the
/// temporary by [`som_update`]).
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn axpy(a: &mut [f64], s: f64, b: &[f64]) {
    debug_assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += s * y;
    }
}

/// The Kohonen update rule `w += rate · (x − w)` without allocating.
///
/// `rate` is the product of the learning rate and the neighborhood kernel
/// value for the unit being updated. With `rate = 1` the weight jumps exactly
/// onto the input; with `rate = 0` it is unchanged.
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn som_update(w: &mut [f64], rate: f64, x: &[f64]) {
    debug_assert_eq!(w.len(), x.len(), "som_update: length mismatch");
    for (wi, xi) in w.iter_mut().zip(x) {
        *wi += rate * (xi - *wi);
    }
}

/// Arithmetic mean of a set of equal-length vectors.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] when `rows` is empty and
/// [`MathError::DimensionMismatch`] when the rows disagree on length.
pub fn mean_vector<'a, I>(rows: I) -> Result<Vec<f64>, MathError>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut iter = rows.into_iter();
    let first = iter.next().ok_or(MathError::EmptyInput)?;
    let mut acc: Vec<f64> = first.to_vec();
    let mut count = 1usize;
    for row in iter {
        if row.len() != acc.len() {
            return Err(MathError::DimensionMismatch {
                expected: acc.len(),
                found: row.len(),
            });
        }
        for (a, x) in acc.iter_mut().zip(row) {
            *a += x;
        }
        count += 1;
    }
    let inv = 1.0 / count as f64;
    for a in acc.iter_mut() {
        *a *= inv;
    }
    Ok(acc)
}

/// Linear interpolation `(1−t)·a + t·b` as a fresh vector.
///
/// Used when a new SOM row/column is inserted between two existing units.
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
pub fn lerp(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "lerp: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
}

/// Returns `true` when every element is finite (no NaN, no ±∞).
#[inline]
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|x| x.is_finite())
}

/// Validates that a slice is non-empty and fully finite.
///
/// # Errors
///
/// [`MathError::EmptyInput`] for an empty slice, [`MathError::NonFinite`]
/// when any element is NaN or infinite.
pub fn validate(a: &[f64]) -> Result<(), MathError> {
    if a.is_empty() {
        return Err(MathError::EmptyInput);
    }
    if !all_finite(a) {
        return Err(MathError::NonFinite);
    }
    Ok(())
}

/// Index of the minimum value, breaking ties toward the lowest index.
///
/// Returns `None` for an empty slice. NaN entries never win.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in a.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if x >= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the maximum value, breaking ties toward the lowest index.
///
/// Returns `None` for an empty slice. NaN entries never win.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in a.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Clamps every element into `[lo, hi]` in place.
pub fn clamp_in_place(a: &mut [f64], lo: f64, hi: f64) {
    for x in a.iter_mut() {
        *x = x.clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, -5.0, 6.0];
        assert_eq!(dot(&a, &b), 4.0 - 10.0 + 18.0);
        assert_eq!(norm_sq(&a), 14.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_l1(&b), 15.0);
        assert_eq!(norm_linf(&b), 6.0);
    }

    #[test]
    fn checked_dot_rejects_mismatch() {
        let err = checked_dot(&[1.0], &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            MathError::DimensionMismatch {
                expected: 1,
                found: 2
            }
        );
    }

    #[test]
    fn normalize_makes_unit_length() {
        let mut v = vec![3.0, 0.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_leaves_zero_vector() {
        let mut v = vec![0.0, 0.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn som_update_moves_toward_input() {
        let mut w = vec![0.0, 0.0];
        som_update(&mut w, 0.5, &[2.0, -2.0]);
        assert_eq!(w, vec![1.0, -1.0]);
        // rate = 1 jumps exactly onto the input
        som_update(&mut w, 1.0, &[5.0, 5.0]);
        assert_eq!(w, vec![5.0, 5.0]);
        // rate = 0 is a no-op
        som_update(&mut w, 0.0, &[100.0, 100.0]);
        assert_eq!(w, vec![5.0, 5.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = vec![1.0, 1.0];
        axpy(&mut a, 2.0, &[3.0, -1.0]);
        assert_eq!(a, vec![7.0, -1.0]);
    }

    #[test]
    fn mean_vector_averages_rows() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0, 6.0]];
        let m = mean_vector(rows.iter().map(|r| r.as_slice())).unwrap();
        assert_eq!(m, vec![2.0, 4.0]);
    }

    #[test]
    fn mean_vector_rejects_empty_and_ragged() {
        let empty: Vec<&[f64]> = vec![];
        assert_eq!(mean_vector(empty).unwrap_err(), MathError::EmptyInput);
        let ragged: Vec<&[f64]> = vec![&[1.0, 2.0], &[1.0]];
        assert!(matches!(
            mean_vector(ragged).unwrap_err(),
            MathError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = [0.0, 10.0];
        let b = [10.0, 0.0];
        assert_eq!(lerp(&a, &b, 0.0), vec![0.0, 10.0]);
        assert_eq!(lerp(&a, &b, 1.0), vec![10.0, 0.0]);
        assert_eq!(lerp(&a, &b, 0.5), vec![5.0, 5.0]);
    }

    #[test]
    fn validate_flags_bad_inputs() {
        assert_eq!(validate(&[]).unwrap_err(), MathError::EmptyInput);
        assert_eq!(
            validate(&[1.0, f64::NAN]).unwrap_err(),
            MathError::NonFinite
        );
        assert_eq!(
            validate(&[f64::INFINITY]).unwrap_err(),
            MathError::NonFinite
        );
        assert!(validate(&[0.0, -1.0]).is_ok());
    }

    #[test]
    fn argmin_argmax_with_ties_and_nan() {
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmin(&[2.0, 1.0, 1.0]), Some(1));
        assert_eq!(argmax(&[2.0, 2.0, 1.0]), Some(0));
        assert_eq!(argmin(&[f64::NAN, 3.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), None);
    }

    #[test]
    fn clamp_bounds_all_elements() {
        let mut v = vec![-2.0, 0.5, 7.0];
        clamp_in_place(&mut v, 0.0, 1.0);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn sub_produces_difference() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
    }
}
