//! Batched nearest-codebook-row kernels — the compute core of SOM/GHSOM
//! best-matching-unit search.
//!
//! The naive BMU loop evaluates `‖x − w‖²` row by row, re-reading the whole
//! codebook per sample through an enum-dispatched metric. The kernels here
//! restructure that search around the Gram identity
//!
//! ```text
//! ‖x − w‖² = ‖x‖² − 2·x·w + ‖w‖²
//! ```
//!
//! with the codebook stored **transposed** (feature-major). A
//! register-blocked microkernel ([`GROUP`] = 8 accumulators held in
//! locals) turns the accumulation into broadcast-multiply-add streams the
//! compiler vectorizes, and the unit-group-outer / sample-inner loop order
//! keeps each weight slab L1-resident across a whole sample block.
//! Codebook row norms are computed once per codebook version and reused
//! across every sample (see `som::Som`'s cache).
//!
//! On top of the exhaustive engines, [`gram_nearest_block_pruned`] serves
//! frozen (inference-only) codebooks from a **norm-sorted** packing:
//! triangle-inequality pruning in norm space skips most unit groups
//! outright while provably returning the exhaustive scan's exact result —
//! the serving plane's kernel.
//!
//! Numerical contract: for a given `(x, w)` pair the dot product and norms
//! are accumulated in ascending feature order, so the single-sample and
//! batched paths produce **bit-identical** distances — callers may mix them
//! freely. The Gram form does lose a few ULPs to cancellation versus the
//! subtract-square form for nearly-coincident points; tests compare against
//! the naive scan with a 1e-9 relative tolerance.

use crate::Matrix;

/// `‖w‖²` of every row.
///
/// Accumulated with `gram_norm_sq`, the exact operation sequence of the
/// kernel's dot products, so that `‖x‖² − 2·x·w + ‖w‖²` cancels to exactly
/// zero when `x` equals a codebook row.
pub fn row_norms_sq(w: &Matrix) -> Vec<f64> {
    w.iter_rows().map(gram_norm_sq).collect()
}

/// `‖w‖²/2` of every row — the precomputed half of the proxy ranking
/// `‖w‖²/2 − x·w` the kernels compare by. This is what callers should
/// cache per codebook version (halving is exact in binary floating
/// point, so no information is lost versus [`row_norms_sq`]).
pub fn half_row_norms_sq(w: &Matrix) -> Vec<f64> {
    w.iter_rows().map(|r| 0.5 * gram_norm_sq(r)).collect()
}

/// Squared norm with the same multiply-add sequence as [`dots8`]: for
/// `x == w` the three Gram terms are then bit-identical and the squared
/// distance is exactly zero, with or without FMA in the build.
#[inline]
fn gram_norm_sq(x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &v in x {
        acc = fmadd(acc, v, v);
    }
    acc
}

/// The codebook packed into group-tiled layout for the microkernel:
/// units are grouped in slabs of [`GROUP`]; within group `g`, weight `j`
/// of group-member `k` (unit `g·GROUP + k`) lives at
/// `g·(dim·GROUP) + j·GROUP + k`. Each group's slab is contiguous
/// (`dim × GROUP` doubles, ~2.6 KB at dim 41), so the kernel streams
/// sequential cache lines — no power-of-two stride aliasing in L1. The
/// tail group is zero-padded; callers bound comparisons by the true unit
/// count.
pub fn pack_codebook(w: &Matrix) -> Vec<f64> {
    let (units, dim) = w.shape();
    let groups = units.div_ceil(GROUP);
    let mut wt = vec![0.0; groups * dim * GROUP];
    for (u, row) in w.iter_rows().enumerate() {
        let (g, k) = (u / GROUP, u % GROUP);
        for (j, &x) in row.iter().enumerate() {
            wt[g * (dim * GROUP) + j * GROUP + k] = x;
        }
    }
    wt
}

/// Index and squared distance of the best (and optionally runner-up) match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nearest {
    /// Index of the nearest codebook row (lowest index wins ties).
    pub unit: usize,
    /// Squared Euclidean distance to it (clamped at zero).
    pub d2: f64,
}

/// Best and second-best matches of one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nearest2 {
    /// The best match.
    pub first: Nearest,
    /// The runner-up.
    pub second: Nearest,
}

/// Units per register-blocked microkernel call: 8 independent dot-product
/// accumulators live in locals, which the compiler keeps in one ZMM / two
/// YMM registers across the feature loop — the shape that turns the Gram
/// accumulation into broadcast-FMA streams with no loop-carried memory
/// dependency. The 8-unit weight group (`8 × dim` doubles, ~2.6 KB at
/// dim 41) stays L1-resident while a whole sample block streams past it.
///
/// Public because it defines the [`pack_codebook`] tile width consumers of
/// the packed layout (e.g. the compiled serving arena) must reproduce.
pub const GROUP: usize = 8;

/// Length in doubles of the [`pack_codebook`] arena for a `units × dim`
/// codebook (the tail unit group is zero-padded to a whole tile).
pub fn packed_len(units: usize, dim: usize) -> usize {
    units.div_ceil(GROUP) * GROUP * dim
}

/// Fused (when the build target has FMA, e.g. via the workspace's
/// `target-cpu=native`) or plain multiply-add. Both batched and
/// single-sample paths go through the same helper, so distances stay
/// bit-identical within one build whichever path computed them.
#[inline(always)]
fn fmadd(acc: f64, a: f64, b: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// Samples per microkernel call: four samples share each weight-slab load,
/// and 4 × 8 accumulators give the out-of-order core four independent FMA
/// chains per unit lane. (4 × 8 doubles is exactly the SSE register
/// budget, so baseline builds don't spill.)
const SAMPLE_BLOCK: usize = 4;

/// Dot products of one sample against unit group `g`:
/// `out[k] = x · w_{g·GROUP+k}`. Eight independent accumulators live in
/// locals (one ZMM / two YMM registers) across the feature loop; the
/// group slab of [`pack_codebook`] is streamed contiguously.
#[inline]
fn dots8(x: &[f64], wt: &[f64], dim: usize, g: usize) -> [f64; GROUP] {
    let slab = &wt[g * (dim * GROUP)..(g + 1) * (dim * GROUP)];
    let mut acc = [0.0f64; GROUP];
    for (seg, &xj) in slab.chunks_exact(GROUP).zip(x) {
        for k in 0..GROUP {
            acc[k] = fmadd(acc[k], xj, seg[k]);
        }
    }
    acc
}

/// [`dots8`] for four samples at once against the same unit group. Each
/// per-(sample, unit) accumulation is the identical operation sequence as
/// [`dots8`], so results are bit-equal to four separate calls.
#[inline]
#[allow(clippy::type_complexity)]
fn dots8_quad(
    x0: &[f64],
    x1: &[f64],
    x2: &[f64],
    x3: &[f64],
    wt: &[f64],
    dim: usize,
    g: usize,
) -> [[f64; GROUP]; SAMPLE_BLOCK] {
    let slab = &wt[g * (dim * GROUP)..(g + 1) * (dim * GROUP)];
    let (x0, x1, x2, x3) = (&x0[..dim], &x1[..dim], &x2[..dim], &x3[..dim]);
    let mut a0 = [0.0f64; GROUP];
    let mut a1 = [0.0f64; GROUP];
    let mut a2 = [0.0f64; GROUP];
    let mut a3 = [0.0f64; GROUP];
    for (j, seg) in slab.chunks_exact(GROUP).enumerate() {
        let (y0, y1, y2, y3) = (x0[j], x1[j], x2[j], x3[j]);
        for k in 0..GROUP {
            a0[k] = fmadd(a0[k], y0, seg[k]);
            a1[k] = fmadd(a1[k], y1, seg[k]);
            a2[k] = fmadd(a2[k], y2, seg[k]);
            a3[k] = fmadd(a3[k], y3, seg[k]);
        }
    }
    [a0, a1, a2, a3]
}

/// Samples per wide microkernel call: eight samples share each
/// weight-slab load and eight independent FMA chains per unit lane cover
/// the multiply-add latency×throughput product of AVX-512 cores. The
/// 8 × 8 accumulator tile is 8 ZMM registers — fine within AVX-512's 32,
/// spilly on 16-register baselines, which is why the wide kernels are
/// separate entry points rather than replacements for
/// [`gram_nearest_block`]. [`gram_nearest_block_pruned`] (the serving
/// kernel) blocks its evaluated groups at this width via `dots8_oct`.
const SAMPLE_BLOCK8: usize = 8;

/// [`dots8`] for eight samples at once against the same unit group. Each
/// per-(sample, unit) accumulation is the identical operation sequence as
/// [`dots8`], so results are bit-equal to eight separate calls.
///
/// Written with eight *named* accumulator locals (not an indexed 2-D
/// array): each `[f64; GROUP]` local is an independent SSA value the
/// compiler keeps in one vector register; runtime-indexed arrays get
/// spilled to the stack and the kernel degrades to scalar speed.
#[inline]
#[allow(clippy::too_many_arguments)]
fn dots8_oct(
    rows: &[f64],
    base: usize,
    wt: &[f64],
    dim: usize,
    g: usize,
) -> [[f64; GROUP]; SAMPLE_BLOCK8] {
    let slab = &wt[g * (dim * GROUP)..(g + 1) * (dim * GROUP)];
    let x = |q: usize| &rows[(base + q) * dim..(base + q + 1) * dim];
    let (x0, x1, x2, x3) = (x(0), x(1), x(2), x(3));
    let (x4, x5, x6, x7) = (x(4), x(5), x(6), x(7));
    let mut a0 = [0.0f64; GROUP];
    let mut a1 = [0.0f64; GROUP];
    let mut a2 = [0.0f64; GROUP];
    let mut a3 = [0.0f64; GROUP];
    let mut a4 = [0.0f64; GROUP];
    let mut a5 = [0.0f64; GROUP];
    let mut a6 = [0.0f64; GROUP];
    let mut a7 = [0.0f64; GROUP];
    for (j, seg) in slab.chunks_exact(GROUP).enumerate() {
        let (y0, y1, y2, y3) = (x0[j], x1[j], x2[j], x3[j]);
        let (y4, y5, y6, y7) = (x4[j], x5[j], x6[j], x7[j]);
        for k in 0..GROUP {
            a0[k] = fmadd(a0[k], y0, seg[k]);
            a1[k] = fmadd(a1[k], y1, seg[k]);
            a2[k] = fmadd(a2[k], y2, seg[k]);
            a3[k] = fmadd(a3[k], y3, seg[k]);
            a4[k] = fmadd(a4[k], y4, seg[k]);
            a5[k] = fmadd(a5[k], y5, seg[k]);
            a6[k] = fmadd(a6[k], y6, seg[k]);
            a7[k] = fmadd(a7[k], y7, seg[k]);
        }
    }
    [a0, a1, a2, a3, a4, a5, a6, a7]
}

/// Nearest codebook row of `x` under squared Euclidean distance.
///
/// `wt` is the [`pack_codebook`] layout and `wn_half` the
/// [`half_row_norms_sq`] of the same codebook version. Ties resolve to
/// the lowest unit index. Allocation-free (this is the per-record hot
/// path of hierarchy projection) and bit-identical to the corresponding
/// entry of [`gram_nearest_block`].
///
/// # Panics
///
/// Debug-asserts shape agreement; garbage in, garbage out in release.
pub fn gram_nearest(x: &[f64], wt: &[f64], wn_half: &[f64]) -> Nearest {
    let dim = x.len();
    let units = wn_half.len();
    debug_assert_eq!(wt.len(), units.div_ceil(GROUP) * GROUP * dim);
    let mut best = Nearest {
        unit: 0,
        d2: f64::INFINITY,
    };
    for g in 0..units.div_ceil(GROUP) {
        let g0 = g * GROUP;
        let gl = GROUP.min(units - g0);
        let dots = dots8(x, wt, dim, g);
        for (k, (&dot, &wh)) in dots.iter().zip(&wn_half[g0..g0 + gl]).enumerate() {
            let proxy = wh - dot;
            if proxy < best.d2 {
                best = Nearest {
                    unit: g0 + k,
                    d2: proxy,
                };
            }
        }
    }
    best.d2 = (gram_norm_sq(x) + 2.0 * best.d2).max(0.0);
    best
}

/// Best *and* second-best codebook rows of `x` (for topographic error).
///
/// Tie behaviour matches a sequential two-best scan in ascending unit
/// order with strict `<` comparisons.
///
/// # Panics
///
/// Debug-asserts shape agreement, and that the codebook has ≥ 2 rows.
pub fn gram_nearest2(x: &[f64], wt: &[f64], wn_half: &[f64]) -> Nearest2 {
    let mut out = Vec::with_capacity(1);
    gram_nearest2_block(x, x.len(), wt, wn_half, &mut out);
    out[0]
}

/// [`gram_nearest`] over a contiguous block of samples (row-major, width
/// `dim`), appending one [`Nearest`] per row to `out`.
///
/// Loop order is unit-group outer / sample inner: each 8-unit slab of the
/// transposed codebook is loaded into L1 once and reused by every sample
/// in the block, so the search is compute-bound (broadcast-FMA) instead
/// of codebook-bandwidth-bound.
pub fn gram_nearest_block(
    rows: &[f64],
    dim: usize,
    wt: &[f64],
    wn_half: &[f64],
    out: &mut Vec<Nearest>,
) {
    debug_assert_eq!(rows.len() % dim, 0);
    let ns = rows.len() / dim;
    let units = wn_half.len();
    debug_assert_eq!(wt.len(), units.div_ceil(GROUP) * GROUP * dim);
    let start = out.len();
    out.extend((0..ns).map(|_| Nearest {
        unit: 0,
        d2: f64::INFINITY,
    }));
    let xn: Vec<f64> = rows.chunks_exact(dim).map(gram_norm_sq).collect();
    // Candidates are ranked by the proxy `‖w‖²/2 − x·w`; for a fixed
    // sample, `d² = ‖x‖² + 2·proxy` is strictly increasing in it, so the
    // argmin (and tie order) is preserved while the per-unit compare costs
    // one subtraction instead of sub + mul + add. `out[..].d2` holds the
    // proxy during the scan and is mapped to the distance at the end.
    let quads = ns / SAMPLE_BLOCK * SAMPLE_BLOCK;
    for g in 0..units.div_ceil(GROUP) {
        let g0 = g * GROUP;
        let gl = GROUP.min(units - g0);
        let wnh = &wn_half[g0..g0 + gl];
        let mut update = |s: usize, dots: &[f64; GROUP]| {
            let best = &mut out[start + s];
            // Locals keep the running best in registers across the group
            // instead of a load/store-forwarding chain through `out`.
            let (mut bu, mut bd) = (best.unit, best.d2);
            for (k, (&dot, &wh)) in dots.iter().zip(wnh).enumerate() {
                let proxy = wh - dot;
                if proxy < bd {
                    bu = g0 + k;
                    bd = proxy;
                }
            }
            *best = Nearest { unit: bu, d2: bd };
        };
        let mut s = 0;
        while s < quads {
            let base = s * dim;
            let quad = dots8_quad(
                &rows[base..base + dim],
                &rows[base + dim..base + 2 * dim],
                &rows[base + 2 * dim..base + 3 * dim],
                &rows[base + 3 * dim..base + 4 * dim],
                wt,
                dim,
                g,
            );
            for (q, dots) in quad.iter().enumerate() {
                update(s + q, dots);
            }
            s += SAMPLE_BLOCK;
        }
        for s in quads..ns {
            let dots = dots8(&rows[s * dim..(s + 1) * dim], wt, dim, g);
            update(s, &dots);
        }
    }
    for (n, &x2) in out[start..].iter_mut().zip(&xn) {
        n.d2 = (x2 + 2.0 * n.d2).max(0.0);
    }
}

/// [`gram_nearest_block`] with the wide 8-sample microkernel
/// (`SAMPLE_BLOCK8`) and a **branchless lane-wise argmin** — the
/// exhaustive wide-blocking variant, kept as the reference/benchmark
/// sibling of the norm-pruned serving kernel
/// ([`gram_nearest_block_pruned`], which reuses the same 8-sample
/// microkernel for the groups it does evaluate).
///
/// Bit-identical to [`gram_nearest_block`] (and therefore to
/// [`gram_nearest`]) on every input: per-(sample, unit) dot products use
/// the same ascending-feature accumulation, and the winner is the same
/// lowest-index unit a strict-`<` ascending scan picks (see the lane
/// reduction below). Only the blocking and the reduction *shape* differ.
///
/// Why not the scan's compare loop: with a trained codebook the candidate
/// stream is full of near-ties, so the scan's `proxy < best` branch
/// mispredicts constantly (measured ~2× slower on KDD features than on
/// uniform noise). Here every sample keeps an 8-lane running minimum —
/// `lane_min[k]` is the best proxy unit-lane `k` has seen over all unit
/// groups and `lane_g[k]` the group that produced it — updated with pure
/// selects the compiler turns into vector blends: no data-dependent
/// branch anywhere in the hot loop. One horizontal resolve per sample at
/// the end recovers the exact scan winner: the global minimum value, then
/// the lowest unit index among lanes achieving it (a lane's stored group
/// is the *first* group reaching that lane's minimum, so candidates are
/// exactly the first-occurrence units).
pub fn gram_nearest_block8(
    rows: &[f64],
    dim: usize,
    wt: &[f64],
    wn_half: &[f64],
    out: &mut Vec<Nearest>,
) {
    debug_assert_eq!(rows.len() % dim, 0);
    let ns = rows.len() / dim;
    let units = wn_half.len();
    debug_assert_eq!(wt.len(), units.div_ceil(GROUP) * GROUP * dim);
    let xn: Vec<f64> = rows.chunks_exact(dim).map(gram_norm_sq).collect();
    // Per-sample lane state (~96 B/sample): callers feed chunks of a few
    // hundred samples, so this stays cache-resident across the group loop.
    let mut lane_min = vec![[f64::INFINITY; GROUP]; ns];
    let mut lane_g = vec![[0u32; GROUP]; ns];
    let octs = ns / SAMPLE_BLOCK8 * SAMPLE_BLOCK8;
    for g in 0..units.div_ceil(GROUP) {
        let g0 = g * GROUP;
        let gl = GROUP.min(units - g0);
        // Tail lanes get +∞ half-norms: their proxies can never win.
        let mut wnh = [f64::INFINITY; GROUP];
        wnh[..gl].copy_from_slice(&wn_half[g0..g0 + gl]);
        let gb = g as u32;
        let mut update = |s: usize, dots: &[f64; GROUP]| {
            let m = &mut lane_min[s];
            let mg = &mut lane_g[s];
            for k in 0..GROUP {
                let proxy = wnh[k] - dots[k];
                let better = proxy < m[k];
                m[k] = if better { proxy } else { m[k] };
                mg[k] = if better { gb } else { mg[k] };
            }
        };
        let mut s = 0;
        while s < octs {
            let oct = dots8_oct(rows, s, wt, dim, g);
            for (q, dots) in oct.iter().enumerate() {
                update(s + q, dots);
            }
            s += SAMPLE_BLOCK8;
        }
        for s in octs..ns {
            let dots = dots8(&rows[s * dim..(s + 1) * dim], wt, dim, g);
            update(s, &dots);
        }
    }
    // Horizontal resolve: the minimum proxy, then the lowest unit index
    // among lanes achieving it — exactly the ascending strict-`<` scan's
    // winner (`==` also equates ±0.0 the way the scan's `<` does, and the
    // finalized distance bits agree for either zero).
    out.extend((0..ns).map(|s| {
        let m = &lane_min[s];
        let mg = &lane_g[s];
        let mut bd = f64::INFINITY;
        for &v in m {
            if v < bd {
                bd = v;
            }
        }
        let mut bu = usize::MAX;
        for k in 0..GROUP {
            if m[k] == bd {
                bu = bu.min(mg[k] as usize * GROUP + k);
            }
        }
        // All lanes at +∞ only happens when every proxy was NaN; fall back
        // to unit 0 like the scan does.
        if bu == usize::MAX {
            bu = 0;
        }
        Nearest {
            unit: bu,
            d2: (xn[s] + 2.0 * bd).max(0.0),
        }
    }));
}

/// Norm-pruned nearest-row search over a **norm-sorted** packed codebook —
/// the serving plane's kernel.
///
/// `wt`/`wn_half` must hold the codebook in ascending-norm order (sorted
/// by `(wn_half, original index)`); `perm[packed] = original unit index`.
/// Every [`Nearest`] reports the **original** unit index, and the result
/// is exactly what the exhaustive ascending scan over the original order
/// produces — same winner (ties resolve to the lowest original index) and
/// bit-identical distance.
///
/// The speedup comes from the triangle inequality in norm space:
/// `‖x−w‖ ≥ |‖x‖−‖w‖|`, so once a candidate with squared distance `b` is
/// in hand, any unit whose norm differs from `‖x‖` by more than `√b` can
/// be skipped without evaluating its dot product. Each sample starts at
/// the group whose norm band brackets `‖x‖` (binary search), then expands
/// outward group by group in both directions, stopping a direction when
/// its band bound exceeds the current best **plus a conservative rounding
/// slack**. The slack covers the worst-case error of the Gram-form
/// arithmetic (`O(dim · ε)` relative to `(‖x‖+‖w‖)²`), so a skipped unit
/// provably loses the *computed* comparison too — pruning can never
/// change the result, only avoid work. On trained codebooks (norms spread
/// by the data) this evaluates ~⅓ of the units; on degenerate
/// equal-norm codebooks it gracefully evaluates everything.
pub fn gram_nearest_block_pruned(
    rows: &[f64],
    dim: usize,
    wt: &[f64],
    wn_half: &[f64],
    perm: &[u32],
    out: &mut Vec<Nearest>,
) {
    debug_assert_eq!(rows.len() % dim, 0);
    let units = wn_half.len();
    debug_assert_eq!(perm.len(), units);
    debug_assert_eq!(wt.len(), units.div_ceil(GROUP) * GROUP * dim);
    debug_assert!(wn_half.windows(2).all(|w| w[0] <= w[1]), "must be sorted");
    let groups = units.div_ceil(GROUP);
    // Norm band of each unit group (ascending, contiguous).
    let lo: Vec<f64> = (0..groups)
        .map(|g| (2.0 * wn_half[g * GROUP]).sqrt())
        .collect();
    let hi: Vec<f64> = (0..groups)
        .map(|g| (2.0 * wn_half[(units - 1).min(g * GROUP + GROUP - 1)]).sqrt())
        .collect();
    let ns = rows.len() / dim;
    if ns == 0 {
        return;
    }
    // Tiny maps (the bulk of a deep hierarchy's nodes): pruning cannot
    // skip anything worth the bookkeeping — evaluate exhaustively with
    // the lexicographic update and none of the sort/band machinery.
    // (Measured: from ~3 unit groups up, the shared-slab block walk below
    // wins even when it prunes nothing.)
    if groups <= 2 {
        gram_nearest_exhaustive_block(rows, dim, wt, wn_half, perm, out);
        return;
    }
    // Sub-block calls (deep-hierarchy frontier fragments are mostly a
    // handful of samples): the scalar walk, no allocations at all.
    if ns < SAMPLE_BLOCK8 {
        for x in rows.chunks_exact(dim) {
            let xn = gram_norm_sq(x);
            out.push(pruned_nearest_one(x, xn, wt, wn_half, perm, dim));
        }
        return;
    }
    let xn_all: Vec<f64> = rows.chunks_exact(dim).map(gram_norm_sq).collect();
    // Samples are processed in ascending-‖x‖ order so that each 8-sample
    // block shares a norm neighborhood: the outward group walk (and its
    // slab loads) is then amortized across the whole block instead of
    // repeated per sample. Processing order does not affect results —
    // every sample's best is resolved independently.
    let mut order: Vec<u32> = (0..ns as u32).collect();
    order.sort_by(|&a, &b| {
        xn_all[a as usize]
            .partial_cmp(&xn_all[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let start = out.len();
    out.extend((0..ns).map(|_| Nearest {
        unit: 0,
        d2: f64::INFINITY,
    }));
    // Full 8-sample blocks go through the shared-slab oct walk; leftover
    // samples (and any call smaller than a block) take the scalar walk
    // below — small frontier groups must not pay for padded lanes.
    let full = ns / SAMPLE_BLOCK8 * SAMPLE_BLOCK8;
    let mut scratch = vec![0.0; SAMPLE_BLOCK8 * dim];
    for block in order[..full].chunks_exact(SAMPLE_BLOCK8) {
        for (q, &s) in block.iter().enumerate() {
            let s = s as usize;
            scratch[q * dim..(q + 1) * dim].copy_from_slice(&rows[s * dim..(s + 1) * dim]);
        }
        let xns: [f64; SAMPLE_BLOCK8] = std::array::from_fn(|q| xn_all[block[q] as usize]);
        let xnorms: [f64; SAMPLE_BLOCK8] = std::array::from_fn(|q| xns[q].max(0.0).sqrt());
        // Running bests in (proxy, original-index) lexicographic order —
        // exactly the ascending-scan semantics under permutation.
        let mut best_p = [f64::INFINITY; SAMPLE_BLOCK8];
        let mut best_u = [0u32; SAMPLE_BLOCK8];
        let eval =
            |g: usize, best_p: &mut [f64; SAMPLE_BLOCK8], best_u: &mut [u32; SAMPLE_BLOCK8]| {
                let g0 = g * GROUP;
                let gl = GROUP.min(units - g0);
                let dots = dots8_oct(&scratch, 0, wt, dim, g);
                for q in 0..SAMPLE_BLOCK8 {
                    for k in 0..gl {
                        let proxy = wn_half[g0 + k] - dots[q][k];
                        let u = perm[g0 + k];
                        if proxy < best_p[q] || (proxy == best_p[q] && u < best_u[q]) {
                            best_p[q] = proxy;
                            best_u[q] = u;
                        }
                    }
                }
            };
        // Seed at the group whose norm band brackets the block median ‖x‖.
        let mid = xns[SAMPLE_BLOCK8 / 2];
        let mid_norm = mid.max(0.0).sqrt();
        let seed = (wn_half.partition_point(|&h| h < 0.5 * mid) / GROUP).min(groups - 1);
        eval(seed, &mut best_p, &mut best_u);
        // Expand outward. A direction stays alive while *any* sample still
        // admits it. The per-sample admission bound is the one that is
        // monotone over everything left in that direction: walking down,
        // every remaining unit has norm ≤ hi[g], so `(‖x‖ − hi[g])⁺` lower-
        // bounds its distance; walking up, every remaining unit has norm
        // ≥ lo[g], so `(lo[g] − ‖x‖)⁺` does. Once the squared bound
        // exceeds a sample's current best by more than the rounding slack,
        // no remaining unit that way can hold its winner even under
        // worst-case Gram rounding — and the bound only grows, so a dead
        // direction stays dead.
        let admit = |edge: f64, going_up: bool, best_p: &[f64; SAMPLE_BLOCK8]| {
            (0..SAMPLE_BLOCK8).any(|q| {
                // Clamped like the final distance: a numerically negative
                // exact-hit best must not make the test over-eager.
                let best_d2 = (xns[q] + 2.0 * best_p[q]).max(0.0);
                let margin = xnorms[q] + edge;
                let slack = 8.0 * dim as f64 * f64::EPSILON * margin * margin;
                let gap = if going_up {
                    (edge - xnorms[q]).max(0.0)
                } else {
                    (xnorms[q] - edge).max(0.0)
                };
                gap * gap <= best_d2 + slack
            })
        };
        let mut down = seed.checked_sub(1);
        let mut up = (seed + 1 < groups).then_some(seed + 1);
        while down.is_some() || up.is_some() {
            // Walk the band nearer the block median first: it is the
            // likelier improver (the choice affects only evaluation order,
            // never the result).
            let take_down = match (down, up) {
                (Some(d), Some(u)) => mid_norm - hi[d] <= lo[u] - mid_norm,
                (Some(_), None) => true,
                _ => false,
            };
            if take_down {
                let g = down.expect("checked"); // LINT-ALLOW(no-panic): take_down is true only in match arms where down is Some
                if admit(hi[g], false, &best_p) {
                    eval(g, &mut best_p, &mut best_u);
                    down = g.checked_sub(1);
                } else {
                    down = None;
                }
            } else if let Some(g) = up {
                if admit(lo[g], true, &best_p) {
                    eval(g, &mut best_p, &mut best_u);
                    up = (g + 1 < groups).then_some(g + 1);
                } else {
                    up = None;
                }
            } else {
                break;
            }
        }
        for (q, &s) in block.iter().enumerate() {
            out[start + s as usize] = Nearest {
                unit: best_u[q] as usize,
                d2: (xns[q] + 2.0 * best_p[q]).max(0.0),
            };
        }
    }
    // Scalar walk for the tail: identical search, one sample per pass.
    for &s in &order[full..] {
        let s = s as usize;
        let x = &rows[s * dim..(s + 1) * dim];
        out[start + s] = pruned_nearest_one(x, xn_all[s], wt, wn_half, perm, dim);
    }
}

/// One-sample norm-pruned search — the allocation-free scalar core of
/// [`gram_nearest_block_pruned`], used for sub-block sample counts and
/// block tails. Band edges are recomputed per visited group (two square
/// roots) instead of materialized, so a call touching a handful of groups
/// costs no heap traffic at all.
fn pruned_nearest_one(
    x: &[f64],
    xn: f64,
    wt: &[f64],
    wn_half: &[f64],
    perm: &[u32],
    dim: usize,
) -> Nearest {
    let units = wn_half.len();
    let groups = units.div_ceil(GROUP);
    let lo = |g: usize| (2.0 * wn_half[g * GROUP]).sqrt();
    let hi = |g: usize| (2.0 * wn_half[(units - 1).min(g * GROUP + GROUP - 1)]).sqrt();
    let xnorm = xn.max(0.0).sqrt();
    let mut best_p = f64::INFINITY;
    let mut best_u = 0u32;
    let eval = |g: usize, best_p: &mut f64, best_u: &mut u32| {
        let g0 = g * GROUP;
        let gl = GROUP.min(units - g0);
        let dots = dots8(x, wt, dim, g);
        for k in 0..gl {
            let proxy = wn_half[g0 + k] - dots[k];
            let u = perm[g0 + k];
            if proxy < *best_p || (proxy == *best_p && u < *best_u) {
                *best_p = proxy;
                *best_u = u;
            }
        }
    };
    let seed = (wn_half.partition_point(|&h| h < 0.5 * xn) / GROUP).min(groups - 1);
    eval(seed, &mut best_p, &mut best_u);
    let admit = |edge: f64, going_up: bool, best_p: f64| {
        let best_d2 = (xn + 2.0 * best_p).max(0.0);
        let margin = xnorm + edge;
        let slack = 8.0 * dim as f64 * f64::EPSILON * margin * margin;
        let gap = if going_up {
            (edge - xnorm).max(0.0)
        } else {
            (xnorm - edge).max(0.0)
        };
        gap * gap <= best_d2 + slack
    };
    let mut down = seed.checked_sub(1);
    let mut up = (seed + 1 < groups).then_some(seed + 1);
    while down.is_some() || up.is_some() {
        let take_down = match (down, up) {
            (Some(d), Some(u)) => xnorm - hi(d) <= lo(u) - xnorm,
            (Some(_), None) => true,
            _ => false,
        };
        if take_down {
            let g = down.expect("checked"); // LINT-ALLOW(no-panic): take_down is true only in match arms where down is Some
            if admit(hi(g), false, best_p) {
                eval(g, &mut best_p, &mut best_u);
                down = g.checked_sub(1);
            } else {
                down = None;
            }
        } else if let Some(g) = up {
            if admit(lo(g), true, best_p) {
                eval(g, &mut best_p, &mut best_u);
                up = (g + 1 < groups).then_some(g + 1);
            } else {
                up = None;
            }
        } else {
            break;
        }
    }
    Nearest {
        unit: best_u as usize,
        d2: (xn + 2.0 * best_p).max(0.0),
    }
}

/// Exhaustive nearest-row search of **one sample** over one packed slab —
/// the tiny-map path of [`gram_nearest_block_pruned`] exposed for callers
/// that fuse many small codebooks into a strided arena (the serving
/// plane's subtree-fused frontier walk) and pick each sample's slab by
/// index.
///
/// Same contracts as the pruned search: `wt` in [`pack_codebook`] layout,
/// `wn_half`/`perm` parallel to its packed positions, winner reported by
/// `(proxy, original index)` lexicographic order with the bit-identical
/// clamped Gram distance. Because every unit is evaluated, `wn_half` need
/// **not** be sorted here; padding lanes can be disabled by giving them a
/// `+∞` half-norm and a `u32::MAX` permutation entry (they then lose every
/// comparison, including the all-NaN fallback to unit 0 — identical to the
/// unpadded scan).
pub fn gram_nearest_exhaustive(
    x: &[f64],
    dim: usize,
    wt: &[f64],
    wn_half: &[f64],
    perm: &[u32],
) -> Nearest {
    debug_assert_eq!(x.len(), dim);
    let units = wn_half.len();
    debug_assert_eq!(perm.len(), units);
    debug_assert_eq!(wt.len(), units.div_ceil(GROUP) * GROUP * dim);
    let xn = gram_norm_sq(x);
    let mut best_p = f64::INFINITY;
    let mut best_u = 0u32;
    for g in 0..units.div_ceil(GROUP) {
        let g0 = g * GROUP;
        let gl = GROUP.min(units - g0);
        let dots = dots8(x, wt, dim, g);
        for k in 0..gl {
            let proxy = wn_half[g0 + k] - dots[k];
            let u = perm[g0 + k];
            if proxy < best_p || (proxy == best_p && u < best_u) {
                best_p = proxy;
                best_u = u;
            }
        }
    }
    Nearest {
        unit: best_u as usize,
        d2: (xn + 2.0 * best_p).max(0.0),
    }
}

/// [`gram_nearest_exhaustive`] over a contiguous block of samples,
/// appending one [`Nearest`] per row to `out` — same slab contracts,
/// same winner and bit-identical distances, but full 8-sample blocks go
/// through the register-blocked `dots8_oct` tile so each weight-group
/// load is amortized across eight samples. With only one or two unit
/// groups per slab there is nothing to prune, so this is also the
/// tiny-map fast path of [`gram_nearest_block_pruned`] — and the kernel
/// the subtree-fused frontier walk batches its per-slot sample runs
/// through (short runs fall back to the one-sample scan below; the
/// sequence of `(proxy, original index)` candidate updates per sample is
/// identical either way, so the processing route never changes a bit of
/// the result).
pub fn gram_nearest_exhaustive_block(
    rows: &[f64],
    dim: usize,
    wt: &[f64],
    wn_half: &[f64],
    perm: &[u32],
    out: &mut Vec<Nearest>,
) {
    debug_assert_eq!(rows.len() % dim, 0);
    let units = wn_half.len();
    debug_assert_eq!(perm.len(), units);
    debug_assert_eq!(wt.len(), units.div_ceil(GROUP) * GROUP * dim);
    let ns = rows.len() / dim;
    let groups = units.div_ceil(GROUP);
    let full = ns / SAMPLE_BLOCK8 * SAMPLE_BLOCK8;
    let mut base = 0usize;
    while base < full {
        let mut best_p = [f64::INFINITY; SAMPLE_BLOCK8];
        let mut best_u = [0u32; SAMPLE_BLOCK8];
        for g in 0..groups {
            let g0 = g * GROUP;
            let gl = GROUP.min(units - g0);
            let oct = dots8_oct(rows, base, wt, dim, g);
            for q in 0..SAMPLE_BLOCK8 {
                for k in 0..gl {
                    let proxy = wn_half[g0 + k] - oct[q][k];
                    let u = perm[g0 + k];
                    if proxy < best_p[q] || (proxy == best_p[q] && u < best_u[q]) {
                        best_p[q] = proxy;
                        best_u[q] = u;
                    }
                }
            }
        }
        for q in 0..SAMPLE_BLOCK8 {
            let xn = gram_norm_sq(&rows[(base + q) * dim..(base + q + 1) * dim]);
            out.push(Nearest {
                unit: best_u[q] as usize,
                d2: (xn + 2.0 * best_p[q]).max(0.0),
            });
        }
        base += SAMPLE_BLOCK8;
    }
    for s in full..ns {
        out.push(gram_nearest_exhaustive(
            &rows[s * dim..(s + 1) * dim],
            dim,
            wt,
            wn_half,
            perm,
        ));
    }
}

/// [`gram_nearest2`] over a contiguous block of samples.
pub fn gram_nearest2_block(
    rows: &[f64],
    dim: usize,
    wt: &[f64],
    wn_half: &[f64],
    out: &mut Vec<Nearest2>,
) {
    debug_assert_eq!(rows.len() % dim, 0);
    let ns = rows.len() / dim;
    let units = wn_half.len();
    debug_assert!(units >= 2, "gram_nearest2 requires at least 2 units");
    let start = out.len();
    let inf = Nearest {
        unit: 0,
        d2: f64::INFINITY,
    };
    out.extend((0..ns).map(|_| Nearest2 {
        first: inf,
        second: inf,
    }));
    let xn: Vec<f64> = rows.chunks_exact(dim).map(gram_norm_sq).collect();
    // Same proxy ranking as `gram_nearest_block`.
    let update = |two: &mut Nearest2, unit: usize, proxy: f64| {
        if proxy < two.first.d2 {
            two.second = two.first;
            two.first = Nearest { unit, d2: proxy };
        } else if proxy < two.second.d2 {
            two.second = Nearest { unit, d2: proxy };
        }
    };
    for g in 0..units.div_ceil(GROUP) {
        let g0 = g * GROUP;
        let gl = GROUP.min(units - g0);
        for (s, x) in rows.chunks_exact(dim).enumerate() {
            let dots = dots8(x, wt, dim, g);
            let two = &mut out[start + s];
            for (k, &dot) in dots.iter().enumerate().take(gl) {
                update(two, g0 + k, wn_half[g0 + k] - dot);
            }
        }
    }
    for (n, &x2) in out[start..].iter_mut().zip(&xn) {
        n.first.d2 = (x2 + 2.0 * n.first.d2).max(0.0);
        n.second.d2 = (x2 + 2.0 * n.second.d2).max(0.0);
    }
}

/// Nearest row under an arbitrary metric kernel, with the enum dispatch
/// hoisted out of the loop. Used by the non-Euclidean batched paths.
pub fn kernel_nearest<F: Fn(&[f64], &[f64]) -> f64>(x: &[f64], w: &Matrix, kernel: &F) -> Nearest {
    let mut best = Nearest {
        unit: 0,
        d2: f64::INFINITY,
    };
    for (u, row) in w.iter_rows().enumerate() {
        let d = kernel(x, row);
        if d < best.d2 {
            best = Nearest { unit: u, d2: d };
        }
    }
    best
}

/// Two best rows under an arbitrary metric kernel.
pub fn kernel_nearest2<F: Fn(&[f64], &[f64]) -> f64>(
    x: &[f64],
    w: &Matrix,
    kernel: &F,
) -> Nearest2 {
    let mut first = Nearest {
        unit: 0,
        d2: f64::INFINITY,
    };
    let mut second = first;
    for (u, row) in w.iter_rows().enumerate() {
        let d = kernel(x, row);
        if d < first.d2 {
            second = first;
            first = Nearest { unit: u, d2: d };
        } else if d < second.d2 {
            second = Nearest { unit: u, d2: d };
        }
    }
    Nearest2 { first, second }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance;

    fn codebook() -> Matrix {
        Matrix::from_rows(vec![
            vec![0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.5],
            vec![0.2, 0.9, 0.1],
            vec![1.0, 1.0, 1.0],
            vec![0.2, 0.9, 0.1], // duplicate of unit 2 — tie case
        ])
        .unwrap()
    }

    #[test]
    fn gram_matches_naive_scan() {
        let w = codebook();
        let wt = pack_codebook(&w);
        let wn = half_row_norms_sq(&w);
        for x in [
            [0.1, 0.1, 0.0],
            [0.9, 0.1, 0.45],
            [0.2, 0.9, 0.1],
            [10.0, -3.0, 2.0],
        ] {
            let got = gram_nearest(&x, &wt, &wn);
            let mut best = (0usize, f64::INFINITY);
            for (u, row) in w.iter_rows().enumerate() {
                let d = distance::sq_euclidean(&x, row);
                if d < best.1 {
                    best = (u, d);
                }
            }
            assert_eq!(got.unit, best.0);
            assert!((got.d2 - best.1).abs() <= 1e-9 * best.1.max(1.0));
        }
    }

    #[test]
    fn duplicate_rows_tie_to_lowest_index() {
        let w = codebook();
        let wt = pack_codebook(&w);
        let wn = half_row_norms_sq(&w);
        // Exactly on the duplicated weight: units 2 and 4 tie at zero.
        let got = gram_nearest(&[0.2, 0.9, 0.1], &wt, &wn);
        assert_eq!(got.unit, 2);
        assert_eq!(got.d2, 0.0);
        let two = gram_nearest2(&[0.2, 0.9, 0.1], &wt, &wn);
        assert_eq!(two.first.unit, 2);
        assert_eq!(two.second.unit, 4);
    }

    #[test]
    fn block_matches_single() {
        let w = codebook();
        let wt = pack_codebook(&w);
        let wn = half_row_norms_sq(&w);
        let data = Matrix::from_rows(vec![
            vec![0.1, 0.2, 0.3],
            vec![0.9, 0.9, 0.9],
            vec![-1.0, 0.5, 0.0],
        ])
        .unwrap();
        let mut out = Vec::new();
        gram_nearest_block(data.as_slice(), 3, &wt, &wn, &mut out);
        for (x, got) in data.iter_rows().zip(&out) {
            let single = gram_nearest(x, &wt, &wn);
            assert_eq!(*got, single);
        }
    }

    #[test]
    fn block8_is_bit_identical_to_block() {
        let w = codebook();
        let wt = pack_codebook(&w);
        let wn = half_row_norms_sq(&w);
        // 19 samples: two full 8-blocks plus a 3-sample tail, crossing the
        // duplicate-row tie case.
        let rows: Vec<Vec<f64>> = (0..19)
            .map(|i| match i % 4 {
                0 => vec![0.2, 0.9, 0.1], // exact duplicate-unit tie
                1 => vec![i as f64 * 0.1, -0.3, 0.7],
                2 => vec![1.0, 1.0, 1.0],
                _ => vec![-2.0, 0.5, i as f64],
            })
            .collect();
        let data = Matrix::from_rows(rows).unwrap();
        let mut narrow = Vec::new();
        let mut wide = Vec::new();
        gram_nearest_block(data.as_slice(), 3, &wt, &wn, &mut narrow);
        gram_nearest_block8(data.as_slice(), 3, &wt, &wn, &mut wide);
        assert_eq!(narrow.len(), wide.len());
        for (a, b) in narrow.iter().zip(&wide) {
            assert_eq!(a.unit, b.unit);
            assert_eq!(a.d2.to_bits(), b.d2.to_bits());
        }
    }

    /// Sorts a codebook by `(half-norm, original index)` and returns the
    /// pruned-kernel inputs — mirrors what the serving compiler does.
    fn norm_sorted(w: &Matrix) -> (Vec<f64>, Vec<f64>, Vec<u32>) {
        let wn = half_row_norms_sq(w);
        let mut order: Vec<usize> = (0..w.rows()).collect();
        order.sort_by(|&a, &b| wn[a].partial_cmp(&wn[b]).unwrap().then(a.cmp(&b)));
        let sorted = Matrix::from_rows(order.iter().map(|&u| w.row(u).to_vec()).collect()).unwrap();
        (
            pack_codebook(&sorted),
            half_row_norms_sq(&sorted),
            order.iter().map(|&u| u as u32).collect(),
        )
    }

    #[test]
    fn pruned_matches_exhaustive_scan_bitwise() {
        // A codebook with duplicate rows (exact ties) and spread norms.
        let mut rows = vec![
            vec![0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.5],
            vec![0.2, 0.9, 0.1],
            vec![1.0, 1.0, 1.0],
            vec![0.2, 0.9, 0.1], // duplicate of unit 2
        ];
        for i in 0..40 {
            let t = i as f64 * 0.17;
            rows.push(vec![t, 1.3 - t * 0.4, (i % 5) as f64 * 0.3]);
        }
        let w = Matrix::from_rows(rows).unwrap();
        let wt = pack_codebook(&w);
        let wn = half_row_norms_sq(&w);
        let (swt, swn, perm) = norm_sorted(&w);
        let mut samples = vec![
            vec![0.2, 0.9, 0.1], // exactly on the duplicated unit: tie at 0
            vec![0.0, 0.0, 0.0],
            vec![10.0, -3.0, 2.0],
        ];
        for i in 0..64 {
            let t = i as f64 * 0.31;
            samples.push(vec![t.sin() * 2.0, t.cos() * 1.5, t * 0.1 - 1.0]);
        }
        let data = Matrix::from_rows(samples).unwrap();
        let mut exhaustive = Vec::new();
        let mut pruned = Vec::new();
        gram_nearest_block(data.as_slice(), 3, &wt, &wn, &mut exhaustive);
        gram_nearest_block_pruned(data.as_slice(), 3, &swt, &swn, &perm, &mut pruned);
        for (i, (a, b)) in exhaustive.iter().zip(&pruned).enumerate() {
            assert_eq!(a.unit, b.unit, "sample {i} winner");
            assert_eq!(a.d2.to_bits(), b.d2.to_bits(), "sample {i} distance");
        }
    }

    #[test]
    fn exhaustive_single_matches_pruned_bitwise_with_and_without_padding() {
        // Enough rows to force >2 groups so the pruned walk actually
        // prunes rather than taking its own exhaustive tiny-map path.
        // 27 units → 4 groups with a ragged tail, exercising both the
        // in-group tail lanes and the appended all-padding group below.
        let mut rows = vec![vec![0.2, 0.9, 0.1], vec![0.2, 0.9, 0.1]]; // exact tie
        for i in 0..25 {
            let t = i as f64 * 0.23;
            rows.push(vec![t.sin(), 2.0 - t * 0.3, (i % 7) as f64 * 0.4]);
        }
        let w = Matrix::from_rows(rows).unwrap();
        let (swt, swn, perm) = norm_sorted(&w);
        let units = w.rows();
        // Padded copy: one extra all-zero group with +∞ half-norms and
        // u32::MAX perm entries — the fused-arena slot shape.
        let stride = units.div_ceil(GROUP) * GROUP + GROUP;
        let mut pwt = swt.clone();
        pwt.resize(stride * 3, 0.0);
        let mut pwn = swn.clone();
        pwn.resize(stride, f64::INFINITY);
        let mut pperm = perm.clone();
        pperm.resize(stride, u32::MAX);
        for i in 0..50 {
            let t = i as f64 * 0.37;
            let x = [t.cos() * 2.0, t * 0.2 - 1.0, (i % 9) as f64 * 0.5];
            let mut pruned = Vec::new();
            gram_nearest_block_pruned(&x, 3, &swt, &swn, &perm, &mut pruned);
            let exact = gram_nearest_exhaustive(&x, 3, &swt, &swn, &perm);
            let padded = gram_nearest_exhaustive(&x, 3, &pwt, &pwn, &pperm);
            assert_eq!(exact.unit, pruned[0].unit, "sample {i} winner");
            assert_eq!(exact.d2.to_bits(), pruned[0].d2.to_bits(), "sample {i} d2");
            assert_eq!(padded.unit, exact.unit, "sample {i} padded winner");
            assert_eq!(
                padded.d2.to_bits(),
                exact.d2.to_bits(),
                "sample {i} padded d2"
            );
        }
    }

    #[test]
    fn pruned_breaks_equal_distance_ties_by_original_index() {
        // Two units at different norms but exactly equal distance from x:
        // w0 = 3, w1 = 1 (1-D), x = 2 → d² = 1 for both. The ascending
        // scan picks unit 0; norm order visits unit 1 first, so only the
        // lexicographic (proxy, original-index) update gets this right.
        let w = Matrix::from_rows(vec![vec![3.0], vec![1.0]]).unwrap();
        let (swt, swn, perm) = norm_sorted(&w);
        assert_eq!(perm, vec![1, 0], "sanity: norm order flips the pair");
        let mut out = Vec::new();
        gram_nearest_block_pruned(&[2.0], 1, &swt, &swn, &perm, &mut out);
        assert_eq!(out[0].unit, 0);
        assert_eq!(out[0].d2, 1.0);
    }

    #[test]
    fn pruned_handles_equal_norm_codebooks() {
        // All rows on the unit circle: norm pruning can never skip, the
        // search must degrade to the exhaustive result.
        let rows: Vec<Vec<f64>> = (0..13)
            .map(|i| {
                let t = i as f64;
                vec![(t * 0.7).cos(), (t * 0.7).sin()]
            })
            .collect();
        let w = Matrix::from_rows(rows).unwrap();
        let wt = pack_codebook(&w);
        let wn = half_row_norms_sq(&w);
        let (swt, swn, perm) = norm_sorted(&w);
        let data = Matrix::from_rows(
            (0..30)
                .map(|i| vec![(i as f64 * 0.3).cos() * 1.2, i as f64 * 0.1 - 1.5])
                .collect(),
        )
        .unwrap();
        let mut exhaustive = Vec::new();
        let mut pruned = Vec::new();
        gram_nearest_block(data.as_slice(), 2, &wt, &wn, &mut exhaustive);
        gram_nearest_block_pruned(data.as_slice(), 2, &swt, &swn, &perm, &mut pruned);
        for (a, b) in exhaustive.iter().zip(&pruned) {
            assert_eq!(a.unit, b.unit);
            assert_eq!(a.d2.to_bits(), b.d2.to_bits());
        }
    }

    #[test]
    fn packed_len_matches_pack_codebook() {
        let w = codebook();
        assert_eq!(pack_codebook(&w).len(), packed_len(w.rows(), w.cols()));
    }

    #[test]
    fn nearest2_orders_by_distance() {
        let w = codebook();
        let wt = pack_codebook(&w);
        let wn = half_row_norms_sq(&w);
        let two = gram_nearest2(&[0.6, 0.4, 0.3], &wt, &wn);
        assert!(two.first.d2 <= two.second.d2);
        assert_ne!(two.first.unit, two.second.unit);
    }

    #[test]
    fn kernel_scan_matches_metric() {
        let w = codebook();
        let x = [0.3, 0.3, 0.3];
        let got = kernel_nearest(&x, &w, &distance::manhattan);
        let mut best = (0usize, f64::INFINITY);
        for (u, row) in w.iter_rows().enumerate() {
            let d = distance::manhattan(&x, row);
            if d < best.1 {
                best = (u, d);
            }
        }
        assert_eq!(got.unit, best.0);
        assert_eq!(got.d2, best.1);
    }
}
