//! Batched nearest-codebook-row kernels — the compute core of SOM/GHSOM
//! best-matching-unit search.
//!
//! The naive BMU loop evaluates `‖x − w‖²` row by row, re-reading the whole
//! codebook per sample through an enum-dispatched metric. The kernels here
//! restructure that search around the Gram identity
//!
//! ```text
//! ‖x − w‖² = ‖x‖² − 2·x·w + ‖w‖²
//! ```
//!
//! with the codebook stored **transposed** (feature-major). A
//! register-blocked microkernel ([`GROUP`] = 8 accumulators held in
//! locals) turns the accumulation into broadcast-multiply-add streams the
//! compiler vectorizes, and the unit-group-outer / sample-inner loop order
//! keeps each weight slab L1-resident across a whole sample block.
//! Codebook row norms are computed once per codebook version and reused
//! across every sample (see `som::Som`'s cache).
//!
//! Numerical contract: for a given `(x, w)` pair the dot product and norms
//! are accumulated in ascending feature order, so the single-sample and
//! batched paths produce **bit-identical** distances — callers may mix them
//! freely. The Gram form does lose a few ULPs to cancellation versus the
//! subtract-square form for nearly-coincident points; tests compare against
//! the naive scan with a 1e-9 relative tolerance.

use crate::Matrix;

/// `‖w‖²` of every row.
///
/// Accumulated with [`gram_norm_sq`], the exact operation sequence of the
/// kernel's dot products, so that `‖x‖² − 2·x·w + ‖w‖²` cancels to exactly
/// zero when `x` equals a codebook row.
pub fn row_norms_sq(w: &Matrix) -> Vec<f64> {
    w.iter_rows().map(gram_norm_sq).collect()
}

/// `‖w‖²/2` of every row — the precomputed half of the proxy ranking
/// `‖w‖²/2 − x·w` the kernels compare by. This is what callers should
/// cache per codebook version (halving is exact in binary floating
/// point, so no information is lost versus [`row_norms_sq`]).
pub fn half_row_norms_sq(w: &Matrix) -> Vec<f64> {
    w.iter_rows().map(|r| 0.5 * gram_norm_sq(r)).collect()
}

/// Squared norm with the same multiply-add sequence as [`dots8`]: for
/// `x == w` the three Gram terms are then bit-identical and the squared
/// distance is exactly zero, with or without FMA in the build.
#[inline]
fn gram_norm_sq(x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &v in x {
        acc = fmadd(acc, v, v);
    }
    acc
}

/// The codebook packed into group-tiled layout for the microkernel:
/// units are grouped in slabs of [`GROUP`]; within group `g`, weight `j`
/// of group-member `k` (unit `g·GROUP + k`) lives at
/// `g·(dim·GROUP) + j·GROUP + k`. Each group's slab is contiguous
/// (`dim × GROUP` doubles, ~2.6 KB at dim 41), so the kernel streams
/// sequential cache lines — no power-of-two stride aliasing in L1. The
/// tail group is zero-padded; callers bound comparisons by the true unit
/// count.
pub fn pack_codebook(w: &Matrix) -> Vec<f64> {
    let (units, dim) = w.shape();
    let groups = units.div_ceil(GROUP);
    let mut wt = vec![0.0; groups * dim * GROUP];
    for (u, row) in w.iter_rows().enumerate() {
        let (g, k) = (u / GROUP, u % GROUP);
        for (j, &x) in row.iter().enumerate() {
            wt[g * (dim * GROUP) + j * GROUP + k] = x;
        }
    }
    wt
}

/// Index and squared distance of the best (and optionally runner-up) match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nearest {
    /// Index of the nearest codebook row (lowest index wins ties).
    pub unit: usize,
    /// Squared Euclidean distance to it (clamped at zero).
    pub d2: f64,
}

/// Best and second-best matches of one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nearest2 {
    /// The best match.
    pub first: Nearest,
    /// The runner-up.
    pub second: Nearest,
}

/// Units per register-blocked microkernel call: 8 independent dot-product
/// accumulators live in locals, which the compiler keeps in one ZMM / two
/// YMM registers across the feature loop — the shape that turns the Gram
/// accumulation into broadcast-FMA streams with no loop-carried memory
/// dependency. The 8-unit weight group (`8 × dim` doubles, ~2.6 KB at
/// dim 41) stays L1-resident while a whole sample block streams past it.
const GROUP: usize = 8;

/// Fused (when the build target has FMA, e.g. via the workspace's
/// `target-cpu=native`) or plain multiply-add. Both batched and
/// single-sample paths go through the same helper, so distances stay
/// bit-identical within one build whichever path computed them.
#[inline(always)]
fn fmadd(acc: f64, a: f64, b: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// Samples per microkernel call: four samples share each weight-slab load,
/// and 4 × 8 accumulators give the out-of-order core four independent FMA
/// chains per unit lane. (4 × 8 doubles is exactly the SSE register
/// budget, so baseline builds don't spill.)
const SAMPLE_BLOCK: usize = 4;

/// Dot products of one sample against unit group `g`:
/// `out[k] = x · w_{g·GROUP+k}`. Eight independent accumulators live in
/// locals (one ZMM / two YMM registers) across the feature loop; the
/// group slab of [`pack_codebook`] is streamed contiguously.
#[inline]
fn dots8(x: &[f64], wt: &[f64], dim: usize, g: usize) -> [f64; GROUP] {
    let slab = &wt[g * (dim * GROUP)..(g + 1) * (dim * GROUP)];
    let mut acc = [0.0f64; GROUP];
    for (seg, &xj) in slab.chunks_exact(GROUP).zip(x) {
        for k in 0..GROUP {
            acc[k] = fmadd(acc[k], xj, seg[k]);
        }
    }
    acc
}

/// [`dots8`] for four samples at once against the same unit group. Each
/// per-(sample, unit) accumulation is the identical operation sequence as
/// [`dots8`], so results are bit-equal to four separate calls.
#[inline]
#[allow(clippy::type_complexity)]
fn dots8_quad(
    x0: &[f64],
    x1: &[f64],
    x2: &[f64],
    x3: &[f64],
    wt: &[f64],
    dim: usize,
    g: usize,
) -> [[f64; GROUP]; SAMPLE_BLOCK] {
    let slab = &wt[g * (dim * GROUP)..(g + 1) * (dim * GROUP)];
    let (x0, x1, x2, x3) = (&x0[..dim], &x1[..dim], &x2[..dim], &x3[..dim]);
    let mut a0 = [0.0f64; GROUP];
    let mut a1 = [0.0f64; GROUP];
    let mut a2 = [0.0f64; GROUP];
    let mut a3 = [0.0f64; GROUP];
    for (j, seg) in slab.chunks_exact(GROUP).enumerate() {
        let (y0, y1, y2, y3) = (x0[j], x1[j], x2[j], x3[j]);
        for k in 0..GROUP {
            a0[k] = fmadd(a0[k], y0, seg[k]);
            a1[k] = fmadd(a1[k], y1, seg[k]);
            a2[k] = fmadd(a2[k], y2, seg[k]);
            a3[k] = fmadd(a3[k], y3, seg[k]);
        }
    }
    [a0, a1, a2, a3]
}

/// Nearest codebook row of `x` under squared Euclidean distance.
///
/// `wt` is the [`pack_codebook`] layout and `wn_half` the
/// [`half_row_norms_sq`] of the same codebook version. Ties resolve to
/// the lowest unit index. Allocation-free (this is the per-record hot
/// path of hierarchy projection) and bit-identical to the corresponding
/// entry of [`gram_nearest_block`].
///
/// # Panics
///
/// Debug-asserts shape agreement; garbage in, garbage out in release.
pub fn gram_nearest(x: &[f64], wt: &[f64], wn_half: &[f64]) -> Nearest {
    let dim = x.len();
    let units = wn_half.len();
    debug_assert_eq!(wt.len(), units.div_ceil(GROUP) * GROUP * dim);
    let mut best = Nearest {
        unit: 0,
        d2: f64::INFINITY,
    };
    for g in 0..units.div_ceil(GROUP) {
        let g0 = g * GROUP;
        let gl = GROUP.min(units - g0);
        let dots = dots8(x, wt, dim, g);
        for (k, (&dot, &wh)) in dots.iter().zip(&wn_half[g0..g0 + gl]).enumerate() {
            let proxy = wh - dot;
            if proxy < best.d2 {
                best = Nearest {
                    unit: g0 + k,
                    d2: proxy,
                };
            }
        }
    }
    best.d2 = (gram_norm_sq(x) + 2.0 * best.d2).max(0.0);
    best
}

/// Best *and* second-best codebook rows of `x` (for topographic error).
///
/// Tie behaviour matches a sequential two-best scan in ascending unit
/// order with strict `<` comparisons.
///
/// # Panics
///
/// Debug-asserts shape agreement, and that the codebook has ≥ 2 rows.
pub fn gram_nearest2(x: &[f64], wt: &[f64], wn_half: &[f64]) -> Nearest2 {
    let mut out = Vec::with_capacity(1);
    gram_nearest2_block(x, x.len(), wt, wn_half, &mut out);
    out[0]
}

/// [`gram_nearest`] over a contiguous block of samples (row-major, width
/// `dim`), appending one [`Nearest`] per row to `out`.
///
/// Loop order is unit-group outer / sample inner: each 8-unit slab of the
/// transposed codebook is loaded into L1 once and reused by every sample
/// in the block, so the search is compute-bound (broadcast-FMA) instead
/// of codebook-bandwidth-bound.
pub fn gram_nearest_block(
    rows: &[f64],
    dim: usize,
    wt: &[f64],
    wn_half: &[f64],
    out: &mut Vec<Nearest>,
) {
    debug_assert_eq!(rows.len() % dim, 0);
    let ns = rows.len() / dim;
    let units = wn_half.len();
    debug_assert_eq!(wt.len(), units.div_ceil(GROUP) * GROUP * dim);
    let start = out.len();
    out.extend((0..ns).map(|_| Nearest {
        unit: 0,
        d2: f64::INFINITY,
    }));
    let xn: Vec<f64> = rows.chunks_exact(dim).map(gram_norm_sq).collect();
    // Candidates are ranked by the proxy `‖w‖²/2 − x·w`; for a fixed
    // sample, `d² = ‖x‖² + 2·proxy` is strictly increasing in it, so the
    // argmin (and tie order) is preserved while the per-unit compare costs
    // one subtraction instead of sub + mul + add. `out[..].d2` holds the
    // proxy during the scan and is mapped to the distance at the end.
    let quads = ns / SAMPLE_BLOCK * SAMPLE_BLOCK;
    for g in 0..units.div_ceil(GROUP) {
        let g0 = g * GROUP;
        let gl = GROUP.min(units - g0);
        let wnh = &wn_half[g0..g0 + gl];
        let mut update = |s: usize, dots: &[f64; GROUP]| {
            let best = &mut out[start + s];
            // Locals keep the running best in registers across the group
            // instead of a load/store-forwarding chain through `out`.
            let (mut bu, mut bd) = (best.unit, best.d2);
            for (k, (&dot, &wh)) in dots.iter().zip(wnh).enumerate() {
                let proxy = wh - dot;
                if proxy < bd {
                    bu = g0 + k;
                    bd = proxy;
                }
            }
            *best = Nearest { unit: bu, d2: bd };
        };
        let mut s = 0;
        while s < quads {
            let base = s * dim;
            let quad = dots8_quad(
                &rows[base..base + dim],
                &rows[base + dim..base + 2 * dim],
                &rows[base + 2 * dim..base + 3 * dim],
                &rows[base + 3 * dim..base + 4 * dim],
                wt,
                dim,
                g,
            );
            for (q, dots) in quad.iter().enumerate() {
                update(s + q, dots);
            }
            s += SAMPLE_BLOCK;
        }
        for s in quads..ns {
            let dots = dots8(&rows[s * dim..(s + 1) * dim], wt, dim, g);
            update(s, &dots);
        }
    }
    for (n, &x2) in out[start..].iter_mut().zip(&xn) {
        n.d2 = (x2 + 2.0 * n.d2).max(0.0);
    }
}

/// [`gram_nearest2`] over a contiguous block of samples.
pub fn gram_nearest2_block(
    rows: &[f64],
    dim: usize,
    wt: &[f64],
    wn_half: &[f64],
    out: &mut Vec<Nearest2>,
) {
    debug_assert_eq!(rows.len() % dim, 0);
    let ns = rows.len() / dim;
    let units = wn_half.len();
    debug_assert!(units >= 2, "gram_nearest2 requires at least 2 units");
    let start = out.len();
    let inf = Nearest {
        unit: 0,
        d2: f64::INFINITY,
    };
    out.extend((0..ns).map(|_| Nearest2 {
        first: inf,
        second: inf,
    }));
    let xn: Vec<f64> = rows.chunks_exact(dim).map(gram_norm_sq).collect();
    // Same proxy ranking as `gram_nearest_block`.
    let update = |two: &mut Nearest2, unit: usize, proxy: f64| {
        if proxy < two.first.d2 {
            two.second = two.first;
            two.first = Nearest { unit, d2: proxy };
        } else if proxy < two.second.d2 {
            two.second = Nearest { unit, d2: proxy };
        }
    };
    for g in 0..units.div_ceil(GROUP) {
        let g0 = g * GROUP;
        let gl = GROUP.min(units - g0);
        for (s, x) in rows.chunks_exact(dim).enumerate() {
            let dots = dots8(x, wt, dim, g);
            let two = &mut out[start + s];
            for (k, &dot) in dots.iter().enumerate().take(gl) {
                update(two, g0 + k, wn_half[g0 + k] - dot);
            }
        }
    }
    for (n, &x2) in out[start..].iter_mut().zip(&xn) {
        n.first.d2 = (x2 + 2.0 * n.first.d2).max(0.0);
        n.second.d2 = (x2 + 2.0 * n.second.d2).max(0.0);
    }
}

/// Nearest row under an arbitrary metric kernel, with the enum dispatch
/// hoisted out of the loop. Used by the non-Euclidean batched paths.
pub fn kernel_nearest<F: Fn(&[f64], &[f64]) -> f64>(x: &[f64], w: &Matrix, kernel: &F) -> Nearest {
    let mut best = Nearest {
        unit: 0,
        d2: f64::INFINITY,
    };
    for (u, row) in w.iter_rows().enumerate() {
        let d = kernel(x, row);
        if d < best.d2 {
            best = Nearest { unit: u, d2: d };
        }
    }
    best
}

/// Two best rows under an arbitrary metric kernel.
pub fn kernel_nearest2<F: Fn(&[f64], &[f64]) -> f64>(
    x: &[f64],
    w: &Matrix,
    kernel: &F,
) -> Nearest2 {
    let mut first = Nearest {
        unit: 0,
        d2: f64::INFINITY,
    };
    let mut second = first;
    for (u, row) in w.iter_rows().enumerate() {
        let d = kernel(x, row);
        if d < first.d2 {
            second = first;
            first = Nearest { unit: u, d2: d };
        } else if d < second.d2 {
            second = Nearest { unit: u, d2: d };
        }
    }
    Nearest2 { first, second }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance;

    fn codebook() -> Matrix {
        Matrix::from_rows(vec![
            vec![0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.5],
            vec![0.2, 0.9, 0.1],
            vec![1.0, 1.0, 1.0],
            vec![0.2, 0.9, 0.1], // duplicate of unit 2 — tie case
        ])
        .unwrap()
    }

    #[test]
    fn gram_matches_naive_scan() {
        let w = codebook();
        let wt = pack_codebook(&w);
        let wn = half_row_norms_sq(&w);
        for x in [
            [0.1, 0.1, 0.0],
            [0.9, 0.1, 0.45],
            [0.2, 0.9, 0.1],
            [10.0, -3.0, 2.0],
        ] {
            let got = gram_nearest(&x, &wt, &wn);
            let mut best = (0usize, f64::INFINITY);
            for (u, row) in w.iter_rows().enumerate() {
                let d = distance::sq_euclidean(&x, row);
                if d < best.1 {
                    best = (u, d);
                }
            }
            assert_eq!(got.unit, best.0);
            assert!((got.d2 - best.1).abs() <= 1e-9 * best.1.max(1.0));
        }
    }

    #[test]
    fn duplicate_rows_tie_to_lowest_index() {
        let w = codebook();
        let wt = pack_codebook(&w);
        let wn = half_row_norms_sq(&w);
        // Exactly on the duplicated weight: units 2 and 4 tie at zero.
        let got = gram_nearest(&[0.2, 0.9, 0.1], &wt, &wn);
        assert_eq!(got.unit, 2);
        assert_eq!(got.d2, 0.0);
        let two = gram_nearest2(&[0.2, 0.9, 0.1], &wt, &wn);
        assert_eq!(two.first.unit, 2);
        assert_eq!(two.second.unit, 4);
    }

    #[test]
    fn block_matches_single() {
        let w = codebook();
        let wt = pack_codebook(&w);
        let wn = half_row_norms_sq(&w);
        let data = Matrix::from_rows(vec![
            vec![0.1, 0.2, 0.3],
            vec![0.9, 0.9, 0.9],
            vec![-1.0, 0.5, 0.0],
        ])
        .unwrap();
        let mut out = Vec::new();
        gram_nearest_block(data.as_slice(), 3, &wt, &wn, &mut out);
        for (x, got) in data.iter_rows().zip(&out) {
            let single = gram_nearest(x, &wt, &wn);
            assert_eq!(*got, single);
        }
    }

    #[test]
    fn nearest2_orders_by_distance() {
        let w = codebook();
        let wt = pack_codebook(&w);
        let wn = half_row_norms_sq(&w);
        let two = gram_nearest2(&[0.6, 0.4, 0.3], &wt, &wn);
        assert!(two.first.d2 <= two.second.d2);
        assert_ne!(two.first.unit, two.second.unit);
    }

    #[test]
    fn kernel_scan_matches_metric() {
        let w = codebook();
        let x = [0.3, 0.3, 0.3];
        let got = kernel_nearest(&x, &w, &distance::manhattan);
        let mut best = (0usize, f64::INFINITY);
        for (u, row) in w.iter_rows().enumerate() {
            let d = distance::manhattan(&x, row);
            if d < best.1 {
                best = (u, d);
            }
        }
        assert_eq!(got.unit, best.0);
        assert_eq!(got.d2, best.1);
    }
}
