//! A row-major dense matrix sized for GHSOM's needs.
//!
//! Data sets in this workspace are matrices whose rows are samples; the
//! operations below (column statistics, covariance, matrix–vector products)
//! are exactly what PCA initialization and the PCA-residual baseline need.

use serde::{Deserialize, Serialize};

use crate::{vector, MathError};

/// Dense row-major matrix of `f64`.
///
/// Rows are samples and columns are features throughout this workspace.
///
/// # Example
///
/// ```
/// use mathkit::Matrix;
///
/// # fn main() -> Result<(), mathkit::MathError> {
/// let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.col_mean(1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize"); // LINT-ALLOW(no-panic): documented panic; callers size matrices from in-memory data far below usize::MAX
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// [`MathError::EmptyInput`] when `rows` is empty or the first row has
    /// zero length; [`MathError::DimensionMismatch`] when rows are ragged;
    /// [`MathError::NonFinite`] when any entry is NaN or infinite.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, MathError> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(MathError::EmptyInput);
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(MathError::EmptyInput);
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in &rows {
            if row.len() != ncols {
                return Err(MathError::DimensionMismatch {
                    expected: ncols,
                    found: row.len(),
                });
            }
            if !vector::all_finite(row) {
                return Err(MathError::NonFinite);
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// [`MathError::DimensionMismatch`] when `data.len() != rows * cols`,
    /// [`MathError::EmptyInput`] when either dimension is zero.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MathError> {
        if rows == 0 || cols == 0 {
            return Err(MathError::EmptyInput);
        }
        if data.len() != rows * cols {
            return Err(MathError::DimensionMismatch {
                expected: rows * cols,
                found: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Copy of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Flat row-major view of the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// [`MathError::DimensionMismatch`] when the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MathError> {
        if self.cols != other.rows {
            return Err(MathError::DimensionMismatch {
                expected: self.cols,
                found: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.get(k, c);
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// [`MathError::DimensionMismatch`] when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, MathError> {
        if v.len() != self.cols {
            return Err(MathError::DimensionMismatch {
                expected: self.cols,
                found: v.len(),
            });
        }
        Ok(self.iter_rows().map(|row| vector::dot(row, v)).collect())
    }

    /// Mean of each column.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        let inv = 1.0 / self.rows as f64;
        for m in means.iter_mut() {
            *m *= inv;
        }
        means
    }

    /// Mean of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col_mean(&self, c: usize) -> f64 {
        assert!(c < self.cols, "column index out of bounds");
        self.col(c).iter().sum::<f64>() / self.rows as f64
    }

    /// Population variance of each column.
    pub fn col_variances(&self) -> Vec<f64> {
        let means = self.col_means();
        let mut vars = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for ((v, x), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *v += d * d;
            }
        }
        let inv = 1.0 / self.rows as f64;
        for v in vars.iter_mut() {
            *v *= inv;
        }
        vars
    }

    /// Subtracts the column means in place, returning the means.
    ///
    /// After this call every column of the matrix has zero mean.
    pub fn center_columns(&mut self) -> Vec<f64> {
        let means = self.col_means();
        for r in 0..self.rows {
            let row = self.row_mut(r);
            for (x, m) in row.iter_mut().zip(&means) {
                *x -= m;
            }
        }
        means
    }

    /// Sample covariance matrix of the rows (features × features).
    ///
    /// Uses the `1/(n−1)` normalization; for a single row the covariance is
    /// defined as the zero matrix.
    pub fn covariance(&self) -> Matrix {
        let d = self.cols;
        let means = self.col_means();
        let mut cov = Matrix::zeros(d, d);
        if self.rows < 2 {
            return cov;
        }
        for row in self.iter_rows() {
            for i in 0..d {
                let di = row[i] - means[i];
                if di == 0.0 {
                    continue;
                }
                for j in i..d {
                    let dj = row[j] - means[j];
                    cov.data[i * d + j] += di * dj;
                }
            }
        }
        let inv = 1.0 / (self.rows - 1) as f64;
        for i in 0..d {
            for j in i..d {
                let v = cov.data[i * d + j] * inv;
                cov.data[i * d + j] = v;
                cov.data[j * d + i] = v;
            }
        }
        cov
    }

    /// Frobenius norm `√Σ aᵢⱼ²`.
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm(&self.data)
    }

    /// Borrowed [`MatrixView`] of the whole matrix.
    #[inline]
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView {
            rows: self.rows,
            cols: self.cols,
            data: &self.data,
        }
    }
}

/// A borrowed row-major matrix: shape plus a flat `&[f64]` buffer.
///
/// This is the zero-copy sample container of the serving path: a caller
/// that already holds rows contiguously (e.g. a reused feature-transform
/// buffer) hands batch consumers a `MatrixView` instead of materializing
/// an owned [`Matrix`]. Unlike [`Matrix`], a view may be empty
/// (`rows == 0`), and no finiteness check is performed — views wrap
/// buffers whose producers enforce their own invariants.
///
/// # Example
///
/// ```
/// use mathkit::matrix::MatrixView;
///
/// # fn main() -> Result<(), mathkit::MathError> {
/// let flat = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
/// let v = MatrixView::new(2, 3, &flat)?;
/// assert_eq!(v.shape(), (2, 3));
/// assert_eq!(v.row(1), &[4.0, 5.0, 6.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f64],
}

impl<'a> MatrixView<'a> {
    /// Wraps a flat row-major buffer as a `rows × cols` view.
    ///
    /// # Errors
    ///
    /// [`MathError::DimensionMismatch`] when `data.len() != rows * cols`;
    /// [`MathError::EmptyInput`] for the degenerate `rows > 0, cols == 0`
    /// shape (a zero-width view cannot yield rows — `iter_rows` would
    /// have nothing coherent to produce).
    pub fn new(rows: usize, cols: usize, data: &'a [f64]) -> Result<Self, MathError> {
        if rows > 0 && cols == 0 {
            return Err(MathError::EmptyInput);
        }
        if data.len() != rows * cols {
            return Err(MathError::DimensionMismatch {
                expected: rows * cols,
                found: data.len(),
            });
        }
        Ok(MatrixView { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the view has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &'a [f64]> {
        // `max(1)`: the only cols == 0 view is the fully empty 0 × 0 one
        // (`new` rejects rows > 0 with zero width), whose empty buffer
        // yields no chunks — while `chunks_exact(0)` would panic.
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Flat row-major view of the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// Copies the view into an owned [`Matrix`].
    ///
    /// # Errors
    ///
    /// [`MathError::EmptyInput`] when the view has no rows or no columns
    /// (an owned [`Matrix`] cannot be empty).
    pub fn to_matrix(&self) -> Result<Matrix, MathError> {
        Matrix::from_flat(self.rows, self.cols, self.data.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    fn from_rows_rejects_bad_inputs() {
        assert_eq!(
            Matrix::from_rows(vec![]).unwrap_err(),
            MathError::EmptyInput
        );
        assert_eq!(
            Matrix::from_rows(vec![vec![]]).unwrap_err(),
            MathError::EmptyInput
        );
        assert!(matches!(
            Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).unwrap_err(),
            MathError::DimensionMismatch { .. }
        ));
        assert_eq!(
            Matrix::from_rows(vec![vec![f64::NAN]]).unwrap_err(),
            MathError::NonFinite
        );
    }

    #[test]
    fn from_flat_validates_length() {
        assert!(Matrix::from_flat(2, 2, vec![0.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_flat(2, 2, vec![0.0; 3]).unwrap_err(),
            MathError::DimensionMismatch { .. }
        ));
        assert_eq!(
            Matrix::from_flat(0, 2, vec![]).unwrap_err(),
            MathError::EmptyInput
        );
    }

    #[test]
    fn set_and_row_mut() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 9.0);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.get(0, 1), 9.0);
        assert_eq!(m.get(1, 0), 7.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let mut id = Matrix::zeros(3, 3);
        for i in 0..3 {
            id.set(i, i, 1.0);
        }
        assert_eq!(m.matmul(&id).unwrap(), m);
    }

    #[test]
    fn matmul_hand_example() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(vec![vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = sample(); // 2x3
        assert!(matches!(
            a.matmul(&a).unwrap_err(),
            MathError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn mul_vec_works() {
        let m = sample();
        assert_eq!(m.mul_vec(&[1.0, 0.0, 1.0]).unwrap(), vec![4.0, 10.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn column_statistics() {
        let m = sample();
        assert_eq!(m.col_means(), vec![2.5, 3.5, 4.5]);
        assert_eq!(m.col_mean(0), 2.5);
        // population variance of {1,4} = 2.25
        assert_eq!(m.col_variances(), vec![2.25, 2.25, 2.25]);
    }

    #[test]
    fn center_columns_zeroes_means() {
        let mut m = sample();
        let means = m.center_columns();
        assert_eq!(means, vec![2.5, 3.5, 4.5]);
        for mean in m.col_means() {
            assert!(mean.abs() < 1e-12);
        }
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let cov = m.covariance();
        // var(x) = 1, cov(x, 2x) = 2, var(2x) = 4 (sample normalization)
        assert!((cov.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - 2.0).abs() < 1e-12);
        assert!((cov.get(1, 0) - 2.0).abs() < 1e-12);
        assert!((cov.get(1, 1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_of_single_row_is_zero() {
        let m = Matrix::from_rows(vec![vec![5.0, 7.0]]).unwrap();
        assert_eq!(m.covariance(), Matrix::zeros(2, 2));
    }

    #[test]
    fn frobenius_norm_example() {
        let m = Matrix::from_rows(vec![vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn view_mirrors_the_matrix() {
        let m = sample();
        let v = m.view();
        assert_eq!(v.shape(), m.shape());
        assert!(!v.is_empty());
        assert_eq!(v.row(1), m.row(1));
        assert_eq!(v.as_slice(), m.as_slice());
        let rows: Vec<&[f64]> = v.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], m.row(0));
        assert_eq!(v.to_matrix().unwrap(), m);
    }

    #[test]
    fn view_validates_buffer_length() {
        let flat = [1.0, 2.0, 3.0];
        assert!(MatrixView::new(1, 3, &flat).is_ok());
        assert!(matches!(
            MatrixView::new(2, 3, &flat).unwrap_err(),
            MathError::DimensionMismatch { .. }
        ));
        // Empty views are legal (unlike owned matrices).
        let v = MatrixView::new(0, 3, &[]).unwrap();
        assert!(v.is_empty());
        assert_eq!(v.iter_rows().count(), 0);
        assert!(v.to_matrix().is_err());
        // …but a non-empty zero-width view is not representable.
        assert_eq!(
            MatrixView::new(3, 0, &[]).unwrap_err(),
            MathError::EmptyInput
        );
        // The fully empty 0 × 0 view iterates without panicking.
        let nil = MatrixView::new(0, 0, &[]).unwrap();
        assert!(nil.is_empty());
        assert_eq!(nil.iter_rows().count(), 0);
    }
}
