//! Shannon entropy and divergences over count histograms.
//!
//! Traffic-feature entropy (of destination ports, source addresses, …) is a
//! classic anomaly indicator: scans disperse a distribution, floods
//! concentrate it. The windowed feature extractor in the `featurize` crate
//! uses these routines.

use crate::MathError;

/// Shannon entropy (base 2) of a count histogram.
///
/// Zero-count bins contribute nothing. An all-zero (or empty) histogram has
/// entropy `0.0`, matching the convention that an empty observation window is
/// maximally concentrated.
///
/// The result lies in `[0, log2(k)]` where `k` is the number of non-zero
/// bins.
///
/// # Example
///
/// ```
/// use mathkit::entropy::shannon;
///
/// // Uniform over 4 symbols → 2 bits.
/// assert!((shannon(&[5, 5, 5, 5]) - 2.0).abs() < 1e-12);
/// // Fully concentrated → 0 bits.
/// assert_eq!(shannon(&[10, 0, 0]), 0.0);
/// ```
pub fn shannon(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    let mut h = 0.0;
    for &c in counts {
        if c == 0 {
            continue;
        }
        let p = c as f64 / total;
        h -= p * p.log2();
    }
    // Guard against -0.0 from rounding.
    h.max(0.0)
}

/// Shannon entropy of an explicit probability vector.
///
/// # Errors
///
/// [`MathError::InvalidParameter`] if any probability is negative or the
/// probabilities do not sum to 1 within `1e-9` (empty input is also
/// rejected).
pub fn shannon_probs(probs: &[f64]) -> Result<f64, MathError> {
    if probs.is_empty() {
        return Err(MathError::EmptyInput);
    }
    let mut sum = 0.0;
    for &p in probs {
        if !(0.0..=1.0).contains(&p) {
            return Err(MathError::InvalidParameter {
                name: "probs",
                reason: "probabilities must lie in [0, 1]",
            });
        }
        sum += p;
    }
    if (sum - 1.0).abs() > 1e-9 {
        return Err(MathError::InvalidParameter {
            name: "probs",
            reason: "probabilities must sum to 1",
        });
    }
    let mut h = 0.0;
    for &p in probs {
        if p > 0.0 {
            h -= p * p.log2();
        }
    }
    Ok(h.max(0.0))
}

/// Entropy normalized into `[0, 1]` by the maximum `log2(len)`.
///
/// A histogram with a single bin is defined to have normalized entropy `0`.
/// This is the form used as a feature value, because it is comparable across
/// windows with different alphabet sizes.
pub fn normalized(counts: &[u64]) -> f64 {
    if counts.len() <= 1 {
        return 0.0;
    }
    let h = shannon(counts);
    let hmax = (counts.len() as f64).log2();
    (h / hmax).clamp(0.0, 1.0)
}

/// Kullback–Leibler divergence `D(p‖q)` in bits.
///
/// # Errors
///
/// [`MathError::DimensionMismatch`] when lengths differ;
/// [`MathError::InvalidParameter`] when `p` has mass where `q` has none
/// (the divergence would be infinite) or when either vector is not a valid
/// distribution.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> Result<f64, MathError> {
    if p.len() != q.len() {
        return Err(MathError::DimensionMismatch {
            expected: p.len(),
            found: q.len(),
        });
    }
    // Validate both are distributions.
    shannon_probs(p)?;
    shannon_probs(q)?;
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi == 0.0 {
            continue;
        }
        if qi == 0.0 {
            return Err(MathError::InvalidParameter {
                name: "q",
                reason: "q must dominate p (no zero where p is positive)",
            });
        }
        d += pi * (pi / qi).log2();
    }
    Ok(d.max(0.0))
}

/// Jensen–Shannon divergence in bits — a bounded, symmetric smoothing of KL.
///
/// Always finite; lies in `[0, 1]` for base-2 logarithms.
///
/// # Errors
///
/// [`MathError::DimensionMismatch`] when lengths differ;
/// [`MathError::InvalidParameter`] when either input is not a distribution.
pub fn js_divergence(p: &[f64], q: &[f64]) -> Result<f64, MathError> {
    if p.len() != q.len() {
        return Err(MathError::DimensionMismatch {
            expected: p.len(),
            found: q.len(),
        });
    }
    shannon_probs(p)?;
    shannon_probs(q)?;
    let m: Vec<f64> = p.iter().zip(q).map(|(a, b)| 0.5 * (a + b)).collect();
    let mut d = 0.0;
    for (&pi, &mi) in p.iter().zip(&m) {
        if pi > 0.0 {
            d += 0.5 * pi * (pi / mi).log2();
        }
    }
    for (&qi, &mi) in q.iter().zip(&m) {
        if qi > 0.0 {
            d += 0.5 * qi * (qi / mi).log2();
        }
    }
    Ok(d.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shannon_uniform_is_log2_k() {
        assert!((shannon(&[1, 1]) - 1.0).abs() < 1e-12);
        assert!((shannon(&[3, 3, 3, 3, 3, 3, 3, 3]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn shannon_concentrated_is_zero() {
        assert_eq!(shannon(&[42]), 0.0);
        assert_eq!(shannon(&[0, 0, 99, 0]), 0.0);
    }

    #[test]
    fn shannon_empty_is_zero() {
        assert_eq!(shannon(&[]), 0.0);
        assert_eq!(shannon(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn shannon_bounds() {
        let counts = [7, 1, 3, 9, 2];
        let h = shannon(&counts);
        assert!(h >= 0.0);
        assert!(h <= (counts.len() as f64).log2() + 1e-12);
    }

    #[test]
    fn shannon_probs_matches_counts() {
        let h1 = shannon(&[1, 3]);
        let h2 = shannon_probs(&[0.25, 0.75]).unwrap();
        assert!((h1 - h2).abs() < 1e-12);
    }

    #[test]
    fn shannon_probs_rejects_invalid() {
        assert!(shannon_probs(&[]).is_err());
        assert!(shannon_probs(&[0.5, 0.6]).is_err());
        assert!(shannon_probs(&[-0.1, 1.1]).is_err());
    }

    #[test]
    fn normalized_entropy_range() {
        assert_eq!(normalized(&[5]), 0.0);
        assert_eq!(normalized(&[]), 0.0);
        assert!((normalized(&[1, 1, 1, 1]) - 1.0).abs() < 1e-12);
        let n = normalized(&[10, 1]);
        assert!(n > 0.0 && n < 1.0);
    }

    #[test]
    fn kl_self_divergence_is_zero() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).unwrap().abs() < 1e-12);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let d = kl_divergence(&p, &q).unwrap();
        assert!(d > 0.0);
    }

    #[test]
    fn kl_rejects_unsupported_mass() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!(kl_divergence(&p, &q).is_err());
    }

    #[test]
    fn kl_rejects_length_mismatch() {
        assert!(matches!(
            kl_divergence(&[1.0], &[0.5, 0.5]).unwrap_err(),
            MathError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = [0.9, 0.1, 0.0];
        let q = [0.1, 0.1, 0.8];
        let d1 = js_divergence(&p, &q).unwrap();
        let d2 = js_divergence(&q, &p).unwrap();
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0 && d1 <= 1.0);
    }

    #[test]
    fn js_handles_disjoint_support() {
        // Unlike KL, JS stays finite on disjoint supports and reaches its
        // maximum of 1 bit.
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let d = js_divergence(&p, &q).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn js_self_divergence_is_zero() {
        let p = [0.3, 0.7];
        assert!(js_divergence(&p, &p).unwrap().abs() < 1e-12);
    }
}
