//! Seedable samplers for the synthetic traffic generators.
//!
//! The sanctioned offline `rand` crate provides uniform sampling only
//! (`rand_distr` is a separate, unsanctioned crate), so the classic
//! transforms are implemented here: Box–Muller normals, log-normals, inverse
//! CDF exponentials, Pareto, a table-based Zipf sampler, Marsaglia–Tsang
//! gamma, and a binary-search categorical distribution.
//!
//! All samplers take `&mut impl Rng` so callers control seeding and
//! reproducibility — every experiment in the repro harness is deterministic
//! under a fixed seed.

use rand::Rng;

use crate::MathError;

/// Standard normal draw via the Box–Muller transform.
///
/// Uses one fresh pair of uniforms per call (the second variate is
/// discarded); this is a deliberate trade of a little speed for
/// statelessness, which keeps parallel generation trivially reproducible.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal draw with the given mean and standard deviation.
///
/// # Panics
///
/// Panics in debug builds if `sigma` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    debug_assert!(sigma >= 0.0, "normal: sigma must be non-negative");
    mu + sigma * standard_normal(rng)
}

/// Normal draw truncated (by rejection) into `[lo, hi]`.
///
/// Falls back to clamping after 64 rejected draws, so it never loops
/// unboundedly even for pathological bounds far in the tail.
///
/// # Panics
///
/// Panics in debug builds if `lo > hi` or `sigma < 0`.
pub fn truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    debug_assert!(lo <= hi, "truncated_normal: lo must not exceed hi");
    for _ in 0..64 {
        let x = normal(rng, mu, sigma);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    normal(rng, mu, sigma).clamp(lo, hi)
}

/// Log-normal draw: `exp(N(mu, sigma))`.
///
/// `mu`/`sigma` are the parameters of the underlying normal (i.e. of
/// `ln X`), matching the usual parameterization for flow-size models.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Exponential draw with rate `lambda` via inverse CDF.
///
/// # Panics
///
/// Panics in debug builds if `lambda <= 0`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0, "exponential: lambda must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    -u.ln() / lambda
}

/// Pareto draw with minimum `scale` and tail index `shape`.
///
/// Heavy-tailed flow volumes (elephant flows) are modelled with this.
///
/// # Panics
///
/// Panics in debug builds if `scale <= 0` or `shape <= 0`.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, scale: f64, shape: f64) -> f64 {
    debug_assert!(scale > 0.0, "pareto: scale must be positive");
    debug_assert!(shape > 0.0, "pareto: shape must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    scale / u.powf(1.0 / shape)
}

/// Gamma draw via Marsaglia–Tsang (2000), with the Ahrens boost for
/// `shape < 1`.
///
/// # Panics
///
/// Panics in debug builds if `shape <= 0` or `scale <= 0`.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    debug_assert!(shape > 0.0, "gamma: shape must be positive");
    debug_assert!(scale > 0.0, "gamma: scale must be positive");
    if shape < 1.0 {
        // Boost: X(a) = X(a+1) * U^(1/a)
        let u: f64 = 1.0 - rng.gen::<f64>();
        return gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen();
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v * scale;
        }
        if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v * scale;
        }
    }
}

/// Beta draw as a ratio of gammas.
///
/// # Panics
///
/// Panics in debug builds if either shape parameter is non-positive.
pub fn beta<R: Rng + ?Sized>(rng: &mut R, alpha: f64, b: f64) -> f64 {
    let x = gamma(rng, alpha, 1.0);
    let y = gamma(rng, b, 1.0);
    x / (x + y)
}

/// A Zipf (discrete power-law) sampler over ranks `0..n`.
///
/// Rank `k` (0-based) has probability proportional to `1/(k+1)^s`. The CDF is
/// precomputed once so each draw is a binary search — the traffic generator
/// samples service/port popularity millions of times.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use mathkit::sampler::Zipf;
///
/// # fn main() -> Result<(), mathkit::MathError> {
/// let zipf = Zipf::new(100, 1.2)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Errors
    ///
    /// [`MathError::InvalidParameter`] when `n == 0` or `s` is not finite
    /// and non-negative.
    pub fn new(n: usize, s: f64) -> Result<Self, MathError> {
        if n == 0 {
            return Err(MathError::InvalidParameter {
                name: "n",
                reason: "must be at least 1",
            });
        }
        if !s.is_finite() || s < 0.0 {
            return Err(MathError::InvalidParameter {
                name: "s",
                reason: "must be finite and non-negative",
            });
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when there is exactly one rank (the sampler is then constant).
    pub fn is_empty(&self) -> bool {
        false // construction guarantees n >= 1
    }

    /// Draws a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Categorical distribution over arbitrary weights, sampled by binary search
/// on the cumulative table.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use mathkit::sampler::Categorical;
///
/// # fn main() -> Result<(), mathkit::MathError> {
/// let cat = Categorical::new(&[8.0, 1.0, 1.0])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let mut counts = [0usize; 3];
/// for _ in 0..1000 {
///     counts[cat.sample(&mut rng)] += 1;
/// }
/// assert!(counts[0] > counts[1] + counts[2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Builds the distribution from non-negative weights.
    ///
    /// # Errors
    ///
    /// [`MathError::EmptyInput`] for an empty weight list;
    /// [`MathError::InvalidParameter`] when a weight is negative/non-finite
    /// or when all weights are zero.
    pub fn new(weights: &[f64]) -> Result<Self, MathError> {
        if weights.is_empty() {
            return Err(MathError::EmptyInput);
        }
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(MathError::InvalidParameter {
                    name: "weights",
                    reason: "weights must be finite and non-negative",
                });
            }
            acc += w;
            cdf.push(acc);
        }
        if acc <= 0.0 {
            return Err(MathError::InvalidParameter {
                name: "weights",
                reason: "at least one weight must be positive",
            });
        }
        for c in cdf.iter_mut() {
            *c /= acc;
        }
        Ok(Categorical { cdf })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always `false`: construction rejects empty weight lists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Welford;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    const N: usize = 20_000;

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(1);
        let mut w = Welford::new();
        for _ in 0..N {
            w.push(standard_normal(&mut r));
        }
        assert!(w.mean().abs() < 0.03, "mean {}", w.mean());
        assert!(
            (w.population_variance() - 1.0).abs() < 0.05,
            "var {}",
            w.population_variance()
        );
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(2);
        let mut w = Welford::new();
        for _ in 0..N {
            w.push(normal(&mut r, 10.0, 3.0));
        }
        assert!((w.mean() - 10.0).abs() < 0.1);
        assert!((w.population_std() - 3.0).abs() < 0.1);
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut r = rng(3);
        for _ in 0..2000 {
            let x = truncated_normal(&mut r, 0.0, 1.0, -0.5, 0.5);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn truncated_normal_pathological_bounds_clamp() {
        let mut r = rng(4);
        // Bounds 40 sigma into the tail: rejection will fail, clamp kicks in.
        let x = truncated_normal(&mut r, 0.0, 1.0, 40.0, 41.0);
        assert!((40.0..=41.0).contains(&x));
    }

    #[test]
    fn log_normal_is_positive_with_correct_log_moments() {
        let mut r = rng(5);
        let mut w = Welford::new();
        for _ in 0..N {
            let x = log_normal(&mut r, 2.0, 0.5);
            assert!(x > 0.0);
            w.push(x.ln());
        }
        assert!((w.mean() - 2.0).abs() < 0.02);
        assert!((w.population_std() - 0.5).abs() < 0.02);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng(6);
        let mut w = Welford::new();
        for _ in 0..N {
            let x = exponential(&mut r, 4.0);
            assert!(x >= 0.0);
            w.push(x);
        }
        assert!((w.mean() - 0.25).abs() < 0.01);
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let mut r = rng(7);
        for _ in 0..2000 {
            assert!(pareto(&mut r, 3.0, 2.5) >= 3.0);
        }
    }

    #[test]
    fn pareto_mean_for_finite_mean_shape() {
        // E[X] = scale * shape / (shape - 1) for shape > 1.
        let mut r = rng(8);
        let mut w = Welford::new();
        for _ in 0..N {
            w.push(pareto(&mut r, 1.0, 3.0));
        }
        assert!((w.mean() - 1.5).abs() < 0.06, "mean {}", w.mean());
    }

    #[test]
    fn gamma_moments() {
        // shape k, scale θ → mean kθ, var kθ².
        let mut r = rng(9);
        let mut w = Welford::new();
        for _ in 0..N {
            let x = gamma(&mut r, 4.0, 2.0);
            assert!(x > 0.0);
            w.push(x);
        }
        assert!((w.mean() - 8.0).abs() < 0.15, "mean {}", w.mean());
        assert!(
            (w.population_variance() - 16.0).abs() < 1.2,
            "var {}",
            w.population_variance()
        );
    }

    #[test]
    fn gamma_small_shape_boost_path() {
        let mut r = rng(10);
        let mut w = Welford::new();
        for _ in 0..N {
            let x = gamma(&mut r, 0.5, 1.0);
            assert!(x > 0.0);
            w.push(x);
        }
        assert!((w.mean() - 0.5).abs() < 0.05);
    }

    #[test]
    fn beta_lies_in_unit_interval_with_correct_mean() {
        let mut r = rng(11);
        let mut w = Welford::new();
        for _ in 0..N {
            let x = beta(&mut r, 2.0, 6.0);
            assert!((0.0..=1.0).contains(&x));
            w.push(x);
        }
        assert!((w.mean() - 0.25).abs() < 0.02);
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let zipf = Zipf::new(50, 1.5).unwrap();
        assert_eq!(zipf.len(), 50);
        let mut r = rng(12);
        let mut counts = vec![0usize; 50];
        for _ in 0..N {
            counts[zipf.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[5]);
        // Every draw in range (implicitly checked by indexing) and rank 0
        // holds roughly its theoretical share.
        let p0_expected = 1.0 / (1..=50).map(|k| 1.0 / (k as f64).powf(1.5)).sum::<f64>();
        let p0 = counts[0] as f64 / N as f64;
        assert!((p0 - p0_expected).abs() < 0.03);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let zipf = Zipf::new(4, 0.0).unwrap();
        let mut r = rng(13);
        let mut counts = vec![0usize; 4];
        for _ in 0..N {
            counts[zipf.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / N as f64 - 0.25).abs() < 0.03);
        }
    }

    #[test]
    fn zipf_rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(5, -1.0).is_err());
        assert!(Zipf::new(5, f64::NAN).is_err());
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let cat = Categorical::new(&[1.0, 2.0, 7.0]).unwrap();
        assert_eq!(cat.len(), 3);
        let mut r = rng(14);
        let mut counts = [0usize; 3];
        for _ in 0..N {
            counts[cat.sample(&mut r)] += 1;
        }
        assert!((counts[0] as f64 / N as f64 - 0.1).abs() < 0.02);
        assert!((counts[1] as f64 / N as f64 - 0.2).abs() < 0.02);
        assert!((counts[2] as f64 / N as f64 - 0.7).abs() < 0.02);
    }

    #[test]
    fn categorical_zero_weight_category_never_sampled() {
        let cat = Categorical::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut r = rng(15);
        for _ in 0..5000 {
            assert_ne!(cat.sample(&mut r), 1);
        }
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[-1.0, 2.0]).is_err());
        assert!(Categorical::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn samplers_are_deterministic_under_seed() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
