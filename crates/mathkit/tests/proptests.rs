//! Property-based tests for the numerical substrate.
//!
//! These check the algebraic laws the rest of the workspace silently relies
//! on: metric axioms, entropy bounds, Welford/merge equivalence, quantile
//! monotonicity and PCA projection contraction.

use mathkit::distance::{self, Metric};
use mathkit::sampler::{Categorical, Zipf};
use mathkit::stats::{quantile_sorted, Welford};
use mathkit::{entropy, vector, Matrix, Pca};
use proptest::prelude::*;

/// A strategy for finite, reasonably-sized f64 values.
fn finite() -> impl Strategy<Value = f64> {
    prop_oneof![-1e6..1e6f64, Just(0.0), Just(1.0), Just(-1.0),]
}

fn vec_pair(len: std::ops::Range<usize>) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    len.prop_flat_map(|n| {
        (
            prop::collection::vec(finite(), n),
            prop::collection::vec(finite(), n),
        )
    })
}

proptest! {
    #[test]
    fn metrics_are_non_negative_and_symmetric((a, b) in vec_pair(1..16)) {
        for m in Metric::ALL {
            let d_ab = m.eval(&a, &b);
            let d_ba = m.eval(&b, &a);
            prop_assert!(d_ab >= -1e-9, "{m} produced negative distance {d_ab}");
            prop_assert!((d_ab - d_ba).abs() <= 1e-9 * d_ab.abs().max(1.0));
        }
    }

    #[test]
    fn metrics_self_distance_is_zero(a in prop::collection::vec(finite(), 1..16)) {
        let zero = vector::norm(&a) == 0.0;
        for m in Metric::ALL {
            // Cosine distance of the zero vector to itself is defined as 1
            // (no direction to align), so it is exempt here.
            if m == Metric::Cosine && zero {
                continue;
            }
            prop_assert!(m.eval(&a, &a).abs() < 1e-9);
        }
    }

    #[test]
    fn euclidean_triangle_inequality(
        (a, b) in vec_pair(3..8),
        c in prop::collection::vec(finite(), 3..8)
    ) {
        // Only comparable when all three have the same length.
        if c.len() == a.len() {
            let ab = distance::euclidean(&a, &b);
            let ac = distance::euclidean(&a, &c);
            let cb = distance::euclidean(&c, &b);
            prop_assert!(ab <= ac + cb + 1e-6 * ab.max(1.0));
        }
    }

    #[test]
    fn dot_is_bilinear(a in prop::collection::vec(-1e3..1e3f64, 1..10),
                       b in prop::collection::vec(-1e3..1e3f64, 1..10),
                       s in -100.0..100.0f64) {
        if a.len() == b.len() {
            let scaled: Vec<f64> = a.iter().map(|x| x * s).collect();
            let lhs = vector::dot(&scaled, &b);
            let rhs = s * vector::dot(&a, &b);
            prop_assert!((lhs - rhs).abs() <= 1e-6 * rhs.abs().max(1.0));
        }
    }

    #[test]
    fn som_update_is_convex_combination(
        w in prop::collection::vec(-1e3..1e3f64, 1..10),
        x in prop::collection::vec(-1e3..1e3f64, 1..10),
        rate in 0.0..1.0f64
    ) {
        if w.len() == x.len() {
            let mut updated = w.clone();
            vector::som_update(&mut updated, rate, &x);
            // Each coordinate stays inside [min(w,x), max(w,x)].
            for ((u, wi), xi) in updated.iter().zip(&w).zip(&x) {
                let lo = wi.min(*xi) - 1e-9;
                let hi = wi.max(*xi) + 1e-9;
                prop_assert!((lo..=hi).contains(u), "coordinate escaped hull");
            }
        }
    }

    #[test]
    fn entropy_bounds_hold(counts in prop::collection::vec(0u64..1000, 1..64)) {
        let h = entropy::shannon(&counts);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (counts.len() as f64).log2() + 1e-9);
        let n = entropy::normalized(&counts);
        prop_assert!((0.0..=1.0).contains(&n));
    }

    #[test]
    fn entropy_is_permutation_invariant(mut counts in prop::collection::vec(0u64..1000, 2..32)) {
        let h1 = entropy::shannon(&counts);
        counts.rotate_left(1);
        let h2 = entropy::shannon(&counts);
        prop_assert!((h1 - h2).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_matches_sequential(
        xs in prop::collection::vec(-1e4..1e4f64, 0..64),
        ys in prop::collection::vec(-1e4..1e4f64, 0..64)
    ) {
        let mut seq = Welford::new();
        for &x in xs.iter().chain(&ys) { seq.push(x); }
        let mut a = Welford::new();
        for &x in &xs { a.push(x); }
        let mut b = Welford::new();
        for &y in &ys { b.push(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), seq.count());
        if seq.count() > 0 {
            prop_assert!((a.mean() - seq.mean()).abs() < 1e-6 * seq.mean().abs().max(1.0));
            prop_assert!((a.population_variance() - seq.population_variance()).abs()
                < 1e-6 * seq.population_variance().max(1.0));
        }
    }

    #[test]
    fn quantiles_are_monotone(mut xs in prop::collection::vec(-1e4..1e4f64, 1..64),
                              q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile_sorted(&xs, lo) <= quantile_sorted(&xs, hi) + 1e-9);
        // Quantiles never escape the data range.
        prop_assert!(quantile_sorted(&xs, lo) >= xs[0] - 1e-9);
        prop_assert!(quantile_sorted(&xs, hi) <= xs[xs.len() - 1] + 1e-9);
    }

    #[test]
    fn categorical_samples_in_range(weights in prop::collection::vec(0.0..10.0f64, 1..32),
                                    seed in 0u64..1000) {
        use rand::SeedableRng;
        if weights.iter().sum::<f64>() > 0.0 {
            let cat = Categorical::new(&weights).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                let i = cat.sample(&mut rng);
                prop_assert!(i < weights.len());
                prop_assert!(weights[i] > 0.0, "sampled a zero-weight category");
            }
        }
    }

    #[test]
    fn zipf_samples_in_range(n in 1usize..200, s in 0.0..3.0f64, seed in 0u64..1000) {
        use rand::SeedableRng;
        let zipf = Zipf::new(n, s).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }

    #[test]
    fn matrix_transpose_is_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen::<f64>() * 10.0 - 5.0).collect();
        let m = Matrix::from_flat(rows, cols, data).unwrap();
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn covariance_is_symmetric_psd_diagonal(rows in 2usize..20, cols in 1usize..6, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen::<f64>() * 10.0 - 5.0).collect();
        let m = Matrix::from_flat(rows, cols, data).unwrap();
        let cov = m.covariance();
        for i in 0..cols {
            prop_assert!(cov.get(i, i) >= -1e-9, "negative variance on diagonal");
            for j in 0..cols {
                prop_assert!((cov.get(i, j) - cov.get(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn pca_residual_is_non_negative_and_zero_for_mean(
        rows in 4usize..24, cols in 2usize..5, seed in 0u64..50
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen::<f64>() * 4.0).collect();
        let m = Matrix::from_flat(rows, cols, data).unwrap();
        let pca = Pca::fit(&m, 1, 100, seed).unwrap();
        for row in m.iter_rows() {
            prop_assert!(pca.residual_sq(row).unwrap() >= -1e-9);
        }
        // The mean itself projects to scores ~0 and reconstructs to itself.
        let mean = m.col_means();
        prop_assert!(pca.residual_sq(&mean).unwrap() < 1e-9);
    }

    #[test]
    fn mean_vector_lies_in_coordinate_hull(
        rows in 1usize..16, cols in 1usize..6, seed in 0u64..100
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.gen::<f64>() * 10.0 - 5.0).collect())
            .collect();
        let mean = vector::mean_vector(data.iter().map(|r| r.as_slice())).unwrap();
        for c in 0..cols {
            let lo = data.iter().map(|r| r[c]).fold(f64::INFINITY, f64::min);
            let hi = data.iter().map(|r| r[c]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mean[c] >= lo - 1e-9 && mean[c] <= hi + 1e-9);
        }
    }
}
