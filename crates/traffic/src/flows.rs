//! Raw flow-event simulation.
//!
//! The KDD connection records were themselves *derived* from raw tcpdump
//! traces. This module provides that lower layer: a simulator that emits
//! time-stamped 5-tuple flow events for background traffic and injected
//! attack episodes. The [`crate::window`] aggregator then derives the
//! KDD-style time-based features from these events — exercising the same
//! code path a live NetFlow deployment of the paper's detector would use.

use mathkit::sampler::{self, Categorical, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::label::AttackType;
use crate::record::{Flag, Protocol, Service};

/// One observed network flow (a NetFlow-style record).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowEvent {
    /// Start time in seconds from the beginning of the trace.
    pub time: f64,
    /// Source address (opaque 32-bit id).
    pub src_ip: u32,
    /// Destination address (opaque 32-bit id).
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Application service (derived from the destination port).
    pub service: Service,
    /// Connection status at flow end.
    pub flag: Flag,
    /// Flow duration in seconds.
    pub duration: f64,
    /// Bytes from source to destination.
    pub src_bytes: f64,
    /// Bytes from destination to source.
    pub dst_bytes: f64,
    /// Ground-truth label of the activity that produced this flow.
    pub label: AttackType,
}

impl FlowEvent {
    /// `true` when the flag indicates a SYN error (`S0`–`S3`).
    pub fn is_syn_error(&self) -> bool {
        matches!(self.flag, Flag::S0 | Flag::S1 | Flag::S2 | Flag::S3)
    }

    /// `true` when the flag indicates a rejected connection (`REJ`).
    pub fn is_rej_error(&self) -> bool {
        matches!(self.flag, Flag::Rej)
    }
}

/// The kind of attack an [`AttackEpisode`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EpisodeKind {
    /// TCP SYN flood against one host/port (labelled `neptune`).
    SynFlood {
        /// Victim address.
        target: u32,
    },
    /// ICMP echo-reply flood against one host (labelled `smurf`).
    SmurfFlood {
        /// Victim address.
        target: u32,
    },
    /// Sequential TCP port scan of one host (labelled `portsweep`).
    PortScan {
        /// Scanned host.
        target: u32,
    },
    /// ICMP sweep across many hosts (labelled `ipsweep`).
    HostSweep,
}

impl EpisodeKind {
    /// The ground-truth label this episode's flows carry.
    pub fn label(&self) -> AttackType {
        match self {
            EpisodeKind::SynFlood { .. } => AttackType::Neptune,
            EpisodeKind::SmurfFlood { .. } => AttackType::Smurf,
            EpisodeKind::PortScan { .. } => AttackType::Portsweep,
            EpisodeKind::HostSweep => AttackType::Ipsweep,
        }
    }
}

/// A time-bounded attack injected into the background traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackEpisode {
    /// What the attacker does.
    pub kind: EpisodeKind,
    /// Episode start time (seconds).
    pub start: f64,
    /// Episode length (seconds).
    pub duration: f64,
    /// Mean attack flows per second.
    pub rate: f64,
}

/// Configuration of the flow simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSimConfig {
    /// Trace length in seconds.
    pub duration_secs: f64,
    /// Mean background flows per second.
    pub background_rate: f64,
    /// Number of distinct server addresses in the background population.
    pub server_count: usize,
    /// Number of distinct client addresses.
    pub client_count: usize,
    /// Injected attacks.
    pub episodes: Vec<AttackEpisode>,
}

impl Default for FlowSimConfig {
    /// Ten minutes of ~50 flows/s background traffic with no attacks.
    fn default() -> Self {
        FlowSimConfig {
            duration_secs: 600.0,
            background_rate: 50.0,
            server_count: 64,
            client_count: 512,
            episodes: Vec::new(),
        }
    }
}

/// Seeded generator of flow traces.
#[derive(Debug)]
pub struct FlowSimulator {
    config: FlowSimConfig,
    rng: StdRng,
}

/// Well-known ports for the background services.
fn service_port(service: Service) -> u16 {
    match service {
        Service::Http => 80,
        Service::Smtp => 25,
        Service::Ftp => 21,
        Service::FtpData => 20,
        Service::Telnet => 23,
        Service::Ssh => 22,
        Service::DomainUdp | Service::Domain => 53,
        Service::Pop3 => 110,
        Service::Imap4 => 143,
        Service::Finger => 79,
        Service::Snmp => 161,
        _ => 1024,
    }
}

impl FlowSimulator {
    /// Creates a simulator with the given configuration and seed.
    pub fn new(config: FlowSimConfig, seed: u64) -> Self {
        FlowSimulator {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates the whole trace, sorted by start time.
    pub fn generate(&mut self) -> Vec<FlowEvent> {
        let mut flows = self.background_flows();
        let episodes = self.config.episodes.clone();
        for ep in &episodes {
            flows.extend(self.episode_flows(ep));
        }
        flows.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
        flows
    }

    /// Poisson background traffic: Zipf-popular servers, categorical
    /// services, log-normal volumes.
    fn background_flows(&mut self) -> Vec<FlowEvent> {
        let services = [
            Service::Http,
            Service::Smtp,
            Service::DomainUdp,
            Service::FtpData,
            Service::Ssh,
            Service::Pop3,
        ];
        let service_weights = [0.55, 0.15, 0.15, 0.06, 0.05, 0.04];
        let service_dist = Categorical::new(&service_weights).expect("static weights");
        let server_zipf = Zipf::new(self.config.server_count.max(1), 1.1).expect("valid zipf");

        let mut flows = Vec::new();
        let mut t = 0.0;
        loop {
            t += sampler::exponential(&mut self.rng, self.config.background_rate.max(1e-9));
            if t >= self.config.duration_secs {
                break;
            }
            let service = services[service_dist.sample(&mut self.rng)];
            let protocol = if service == Service::DomainUdp {
                Protocol::Udp
            } else {
                Protocol::Tcp
            };
            // 2% of background connections fail benignly.
            let flag = if self.rng.gen::<f64>() < 0.98 {
                Flag::Sf
            } else if self.rng.gen::<f64>() < 0.5 {
                Flag::Rej
            } else {
                Flag::S0
            };
            flows.push(FlowEvent {
                time: t,
                src_ip: 0x0A00_0000 + self.rng.gen_range(0..self.config.client_count.max(1)) as u32,
                dst_ip: 0xC0A8_0000 + server_zipf.sample(&mut self.rng) as u32,
                src_port: self.rng.gen_range(1024..65535),
                dst_port: service_port(service),
                protocol,
                service,
                flag,
                duration: sampler::exponential(&mut self.rng, 0.7).min(120.0),
                src_bytes: sampler::log_normal(&mut self.rng, 5.5, 1.0).round(),
                dst_bytes: sampler::log_normal(&mut self.rng, 7.0, 1.3).round(),
                label: AttackType::Normal,
            });
        }
        flows
    }

    fn episode_flows(&mut self, ep: &AttackEpisode) -> Vec<FlowEvent> {
        let mut flows = Vec::new();
        let mut t = ep.start;
        let end = ep.start + ep.duration;
        let mut scan_port: u16 = 1;
        let mut sweep_host: u32 = 0;
        loop {
            t += sampler::exponential(&mut self.rng, ep.rate.max(1e-9));
            if t >= end || t >= self.config.duration_secs {
                break;
            }
            let flow = match ep.kind {
                EpisodeKind::SynFlood { target } => FlowEvent {
                    time: t,
                    // Spoofed, never-repeating sources.
                    src_ip: self.rng.gen(),
                    dst_ip: target,
                    src_port: self.rng.gen_range(1024..65535),
                    dst_port: 80,
                    protocol: Protocol::Tcp,
                    service: Service::Http,
                    flag: Flag::S0,
                    duration: 0.0,
                    src_bytes: 0.0,
                    dst_bytes: 0.0,
                    label: AttackType::Neptune,
                },
                EpisodeKind::SmurfFlood { target } => FlowEvent {
                    time: t,
                    src_ip: self.rng.gen(),
                    dst_ip: target,
                    src_port: 0,
                    dst_port: 0,
                    protocol: Protocol::Icmp,
                    service: Service::EcrI,
                    flag: Flag::Sf,
                    duration: 0.0,
                    src_bytes: 1032.0,
                    dst_bytes: 0.0,
                    label: AttackType::Smurf,
                },
                EpisodeKind::PortScan { target } => {
                    scan_port = scan_port.wrapping_add(1).max(1);
                    FlowEvent {
                        time: t,
                        src_ip: 0xDEAD_0001,
                        dst_ip: target,
                        src_port: 40000,
                        dst_port: scan_port,
                        protocol: Protocol::Tcp,
                        service: Service::Private,
                        flag: if self.rng.gen::<f64>() < 0.8 {
                            Flag::Rej
                        } else {
                            Flag::Sf
                        },
                        duration: 0.0,
                        src_bytes: 0.0,
                        dst_bytes: 0.0,
                        label: AttackType::Portsweep,
                    }
                }
                EpisodeKind::HostSweep => {
                    sweep_host = sweep_host.wrapping_add(1);
                    FlowEvent {
                        time: t,
                        src_ip: 0xDEAD_0002,
                        dst_ip: 0xC0A8_0000 + (sweep_host % 4096),
                        src_port: 0,
                        dst_port: 0,
                        protocol: Protocol::Icmp,
                        service: Service::EcoI,
                        flag: Flag::Sf,
                        duration: 0.0,
                        src_bytes: 8.0,
                        dst_bytes: 0.0,
                        label: AttackType::Ipsweep,
                    }
                }
            };
            flows.push(flow);
        }
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_with_attacks() -> FlowSimConfig {
        FlowSimConfig {
            duration_secs: 60.0,
            background_rate: 40.0,
            server_count: 16,
            client_count: 64,
            episodes: vec![
                AttackEpisode {
                    kind: EpisodeKind::SynFlood {
                        target: 0xC0A8_0001,
                    },
                    start: 20.0,
                    duration: 10.0,
                    rate: 300.0,
                },
                AttackEpisode {
                    kind: EpisodeKind::PortScan {
                        target: 0xC0A8_0002,
                    },
                    start: 40.0,
                    duration: 10.0,
                    rate: 100.0,
                },
            ],
        }
    }

    #[test]
    fn trace_is_time_sorted() {
        let mut sim = FlowSimulator::new(config_with_attacks(), 1);
        let flows = sim.generate();
        assert!(!flows.is_empty());
        for pair in flows.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }

    #[test]
    fn background_rate_is_respected() {
        let mut sim = FlowSimulator::new(FlowSimConfig::default(), 2);
        let flows = sim.generate();
        let expected = 600.0 * 50.0;
        let got = flows.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.1,
            "expected ~{expected} flows, got {got}"
        );
    }

    #[test]
    fn episodes_are_time_bounded_and_labelled() {
        let mut sim = FlowSimulator::new(config_with_attacks(), 3);
        let flows = sim.generate();
        let syn: Vec<_> = flows
            .iter()
            .filter(|f| f.label == AttackType::Neptune)
            .collect();
        assert!(!syn.is_empty());
        for f in &syn {
            assert!(f.time >= 20.0 && f.time <= 30.0);
            assert_eq!(f.dst_ip, 0xC0A8_0001);
            assert_eq!(f.flag, Flag::S0);
            assert!(f.is_syn_error());
        }
        let scan: Vec<_> = flows
            .iter()
            .filter(|f| f.label == AttackType::Portsweep)
            .collect();
        assert!(!scan.is_empty());
        // Port scan touches many distinct ports.
        let distinct_ports: std::collections::BTreeSet<u16> =
            scan.iter().map(|f| f.dst_port).collect();
        assert!(distinct_ports.len() > 50);
    }

    #[test]
    fn syn_flood_rate_dominates_background() {
        let mut sim = FlowSimulator::new(config_with_attacks(), 4);
        let flows = sim.generate();
        let in_attack = flows
            .iter()
            .filter(|f| f.time >= 20.0 && f.time < 30.0)
            .count();
        let before = flows.iter().filter(|f| f.time < 10.0).count();
        assert!(
            in_attack > 3 * before,
            "attack window {in_attack} vs quiet window {before}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = FlowSimulator::new(config_with_attacks(), 9).generate();
        let b = FlowSimulator::new(config_with_attacks(), 9).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn flag_helpers() {
        let mut f = FlowEvent {
            time: 0.0,
            src_ip: 0,
            dst_ip: 0,
            src_port: 0,
            dst_port: 0,
            protocol: Protocol::Tcp,
            service: Service::Http,
            flag: Flag::S0,
            duration: 0.0,
            src_bytes: 0.0,
            dst_bytes: 0.0,
            label: AttackType::Normal,
        };
        assert!(f.is_syn_error());
        assert!(!f.is_rej_error());
        f.flag = Flag::Rej;
        assert!(f.is_rej_error());
        assert!(!f.is_syn_error());
        f.flag = Flag::Sf;
        assert!(!f.is_rej_error() && !f.is_syn_error());
    }

    #[test]
    fn episode_kind_labels() {
        assert_eq!(
            EpisodeKind::SynFlood { target: 1 }.label(),
            AttackType::Neptune
        );
        assert_eq!(
            EpisodeKind::SmurfFlood { target: 1 }.label(),
            AttackType::Smurf
        );
        assert_eq!(
            EpisodeKind::PortScan { target: 1 }.label(),
            AttackType::Portsweep
        );
        assert_eq!(EpisodeKind::HostSweep.label(), AttackType::Ipsweep);
    }
}
