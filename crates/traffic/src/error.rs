//! Error type for traffic generation and parsing.

use std::fmt;

/// Errors produced while generating or parsing traffic data.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrafficError {
    /// A CSV line had the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Number of fields expected.
        expected: usize,
        /// Number of fields found.
        found: usize,
    },
    /// A CSV field failed to parse.
    FieldParse {
        /// 1-based line number.
        line: usize,
        /// Column name of the offending field.
        column: &'static str,
        /// The raw value that failed to parse.
        value: String,
    },
    /// An unknown attack label was encountered.
    UnknownLabel(String),
    /// A generator mix specification was invalid.
    InvalidMix(&'static str),
    /// The requested operation needs a non-empty dataset.
    EmptyDataset,
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::FieldCount {
                line,
                expected,
                found,
            } => write!(f, "line {line}: expected {expected} fields, found {found}"),
            TrafficError::FieldParse {
                line,
                column,
                value,
            } => write!(f, "line {line}: cannot parse `{value}` as {column}"),
            TrafficError::UnknownLabel(l) => write!(f, "unknown attack label `{l}`"),
            TrafficError::InvalidMix(reason) => write!(f, "invalid traffic mix: {reason}"),
            TrafficError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
        }
    }
}

impl std::error::Error for TrafficError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TrafficError::FieldCount {
                line: 3,
                expected: 42,
                found: 40
            }
            .to_string(),
            "line 3: expected 42 fields, found 40"
        );
        assert_eq!(
            TrafficError::UnknownLabel("zorp".into()).to_string(),
            "unknown attack label `zorp`"
        );
        assert_eq!(
            TrafficError::InvalidMix("weights sum to zero").to_string(),
            "invalid traffic mix: weights sum to zero"
        );
        assert_eq!(
            TrafficError::EmptyDataset.to_string(),
            "operation requires a non-empty dataset"
        );
        assert_eq!(
            TrafficError::FieldParse {
                line: 7,
                column: "src_bytes",
                value: "abc".into()
            }
            .to_string(),
            "line 7: cannot parse `abc` as src_bytes"
        );
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<TrafficError>();
    }
}
