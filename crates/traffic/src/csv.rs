//! Reader/writer for the KDD Cup 99 CSV column format.
//!
//! The on-disk format is 41 comma-separated feature fields followed by the
//! label with a trailing dot, e.g.
//!
//! ```text
//! 0,tcp,http,SF,215,45076,0,0,0,0,0,1,…,0.00,0.00,normal.
//! ```
//!
//! With these routines the *real* KDD files can be dropped into any
//! experiment in place of the synthetic generator. The mapping is lossy in
//! exactly one documented way: service names outside the modelled 36-name
//! vocabulary parse to [`crate::Service::Other`].

use std::io::{BufRead, Write};

use crate::label::AttackType;
use crate::record::{ConnectionRecord, Flag, Protocol, Service};
use crate::{Dataset, TrafficError};

/// Number of comma-separated fields per line (41 features + label).
pub const FIELDS_PER_LINE: usize = 42;

/// Formats one record as a KDD CSV line (no trailing newline).
pub fn to_line(rec: &ConnectionRecord) -> String {
    // Counts print as integers, rates with two decimals — matching the
    // original files' formatting.
    let int = |v: f64| format!("{}", v.round() as i64);
    let rate = |v: f64| format!("{v:.2}");
    [
        int(rec.duration),
        rec.protocol.name().to_string(),
        rec.service.name().to_string(),
        rec.flag.name().to_string(),
        int(rec.src_bytes),
        int(rec.dst_bytes),
        int(rec.land),
        int(rec.wrong_fragment),
        int(rec.urgent),
        int(rec.hot),
        int(rec.num_failed_logins),
        int(rec.logged_in),
        int(rec.num_compromised),
        int(rec.root_shell),
        int(rec.su_attempted),
        int(rec.num_root),
        int(rec.num_file_creations),
        int(rec.num_shells),
        int(rec.num_access_files),
        int(rec.num_outbound_cmds),
        int(rec.is_host_login),
        int(rec.is_guest_login),
        int(rec.count),
        int(rec.srv_count),
        rate(rec.serror_rate),
        rate(rec.srv_serror_rate),
        rate(rec.rerror_rate),
        rate(rec.srv_rerror_rate),
        rate(rec.same_srv_rate),
        rate(rec.diff_srv_rate),
        rate(rec.srv_diff_host_rate),
        int(rec.dst_host_count),
        int(rec.dst_host_srv_count),
        rate(rec.dst_host_same_srv_rate),
        rate(rec.dst_host_diff_srv_rate),
        rate(rec.dst_host_same_src_port_rate),
        rate(rec.dst_host_srv_diff_host_rate),
        rate(rec.dst_host_serror_rate),
        rate(rec.dst_host_srv_serror_rate),
        rate(rec.dst_host_rerror_rate),
        rate(rec.dst_host_srv_rerror_rate),
        format!("{}.", rec.label.name()),
    ]
    .join(",")
}

/// Parses one KDD CSV line.
///
/// # Errors
///
/// [`TrafficError::FieldCount`] on a malformed field count,
/// [`TrafficError::FieldParse`] when a numeric field fails to parse, and
/// [`TrafficError::UnknownLabel`] for unknown protocol/flag/label strings.
/// `line_no` is used only for error reporting.
pub fn parse_line(line: &str, line_no: usize) -> Result<ConnectionRecord, TrafficError> {
    let fields: Vec<&str> = line.trim().split(',').collect();
    if fields.len() != FIELDS_PER_LINE {
        return Err(TrafficError::FieldCount {
            line: line_no,
            expected: FIELDS_PER_LINE,
            found: fields.len(),
        });
    }
    let num = |idx: usize, column: &'static str| -> Result<f64, TrafficError> {
        fields[idx]
            .trim()
            .parse::<f64>()
            .map_err(|_| TrafficError::FieldParse {
                line: line_no,
                column,
                value: fields[idx].to_string(),
            })
    };
    Ok(ConnectionRecord {
        duration: num(0, "duration")?,
        protocol: Protocol::parse(fields[1])?,
        service: Service::parse(fields[2]),
        flag: Flag::parse(fields[3])?,
        src_bytes: num(4, "src_bytes")?,
        dst_bytes: num(5, "dst_bytes")?,
        land: num(6, "land")?,
        wrong_fragment: num(7, "wrong_fragment")?,
        urgent: num(8, "urgent")?,
        hot: num(9, "hot")?,
        num_failed_logins: num(10, "num_failed_logins")?,
        logged_in: num(11, "logged_in")?,
        num_compromised: num(12, "num_compromised")?,
        root_shell: num(13, "root_shell")?,
        su_attempted: num(14, "su_attempted")?,
        num_root: num(15, "num_root")?,
        num_file_creations: num(16, "num_file_creations")?,
        num_shells: num(17, "num_shells")?,
        num_access_files: num(18, "num_access_files")?,
        num_outbound_cmds: num(19, "num_outbound_cmds")?,
        is_host_login: num(20, "is_host_login")?,
        is_guest_login: num(21, "is_guest_login")?,
        count: num(22, "count")?,
        srv_count: num(23, "srv_count")?,
        serror_rate: num(24, "serror_rate")?,
        srv_serror_rate: num(25, "srv_serror_rate")?,
        rerror_rate: num(26, "rerror_rate")?,
        srv_rerror_rate: num(27, "srv_rerror_rate")?,
        same_srv_rate: num(28, "same_srv_rate")?,
        diff_srv_rate: num(29, "diff_srv_rate")?,
        srv_diff_host_rate: num(30, "srv_diff_host_rate")?,
        dst_host_count: num(31, "dst_host_count")?,
        dst_host_srv_count: num(32, "dst_host_srv_count")?,
        dst_host_same_srv_rate: num(33, "dst_host_same_srv_rate")?,
        dst_host_diff_srv_rate: num(34, "dst_host_diff_srv_rate")?,
        dst_host_same_src_port_rate: num(35, "dst_host_same_src_port_rate")?,
        dst_host_srv_diff_host_rate: num(36, "dst_host_srv_diff_host_rate")?,
        dst_host_serror_rate: num(37, "dst_host_serror_rate")?,
        dst_host_srv_serror_rate: num(38, "dst_host_srv_serror_rate")?,
        dst_host_rerror_rate: num(39, "dst_host_rerror_rate")?,
        dst_host_srv_rerror_rate: num(40, "dst_host_srv_rerror_rate")?,
        label: AttackType::parse(fields[41])?,
    })
}

/// Reads a whole KDD CSV stream into a [`Dataset`]. Blank lines are skipped.
///
/// A mutable reference can be passed for `reader` (see `std`'s blanket
/// `Read for &mut R` impl) when the caller wants to keep the reader.
///
/// # Errors
///
/// Any I/O error is surfaced as [`TrafficError::FieldParse`] on the
/// offending line; format errors are reported per
/// [`parse_line`].
pub fn read_dataset<R: BufRead>(reader: R) -> Result<Dataset, TrafficError> {
    let mut records = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line.map_err(|e| TrafficError::FieldParse {
            line: line_no,
            column: "io",
            value: e.to_string(),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        records.push(parse_line(&line, line_no)?);
    }
    Ok(Dataset::from_records(records))
}

/// Writes a dataset as KDD CSV lines.
///
/// # Errors
///
/// Propagates any I/O error from `writer`.
pub fn write_dataset<W: Write>(dataset: &Dataset, mut writer: W) -> std::io::Result<()> {
    for rec in dataset.iter() {
        writeln!(writer, "{}", to_line(rec))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{MixSpec, TrafficGenerator};

    /// A real line from the KDD Cup 99 10% file.
    const REAL_KDD_LINE: &str = "0,tcp,http,SF,215,45076,0,0,0,0,0,1,0,0,0,0,0,0,0,0,0,0,1,1,0.00,0.00,0.00,0.00,1.00,0.00,0.00,0,0,0.00,0.00,0.00,0.00,0.00,0.00,0.00,0.00,normal.";

    #[test]
    fn parses_real_kdd_line() {
        let rec = parse_line(REAL_KDD_LINE, 1).unwrap();
        assert_eq!(rec.protocol, Protocol::Tcp);
        assert_eq!(rec.service, Service::Http);
        assert_eq!(rec.flag, Flag::Sf);
        assert_eq!(rec.src_bytes, 215.0);
        assert_eq!(rec.dst_bytes, 45_076.0);
        assert_eq!(rec.logged_in, 1.0);
        assert_eq!(rec.same_srv_rate, 1.0);
        assert_eq!(rec.label, AttackType::Normal);
        rec.validate().unwrap();
    }

    #[test]
    fn roundtrip_through_csv() {
        let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), 21).unwrap();
        let ds = gen.generate(100);
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let back = read_dataset(buf.as_slice()).unwrap();
        assert_eq!(back.len(), ds.len());
        for (orig, parsed) in ds.iter().zip(back.iter()) {
            assert_eq!(orig.label, parsed.label);
            assert_eq!(orig.protocol, parsed.protocol);
            assert_eq!(orig.service, parsed.service);
            assert_eq!(orig.flag, parsed.flag);
            // Counts are integral, so they survive exactly.
            assert_eq!(orig.src_bytes.round(), parsed.src_bytes);
            assert_eq!(orig.count.round(), parsed.count);
            // Rates are rounded to 2 decimals on write.
            assert!((orig.serror_rate - parsed.serror_rate).abs() <= 0.005 + 1e-12);
        }
    }

    #[test]
    fn rejects_wrong_field_count() {
        let err = parse_line("1,2,3", 7).unwrap_err();
        assert_eq!(
            err,
            TrafficError::FieldCount {
                line: 7,
                expected: 42,
                found: 3
            }
        );
    }

    #[test]
    fn rejects_bad_numeric_field() {
        let bad = REAL_KDD_LINE.replacen("215", "abc", 1);
        let err = parse_line(&bad, 3).unwrap_err();
        assert!(matches!(
            err,
            TrafficError::FieldParse {
                line: 3,
                column: "src_bytes",
                ..
            }
        ));
    }

    #[test]
    fn rejects_bad_protocol_and_label() {
        let bad_proto = REAL_KDD_LINE.replacen("tcp", "gre", 1);
        assert!(matches!(
            parse_line(&bad_proto, 1).unwrap_err(),
            TrafficError::UnknownLabel(_)
        ));
        let bad_label = REAL_KDD_LINE.replace("normal.", "slowloris.");
        assert!(matches!(
            parse_line(&bad_label, 1).unwrap_err(),
            TrafficError::UnknownLabel(_)
        ));
    }

    #[test]
    fn unknown_service_maps_to_other() {
        let odd_service = REAL_KDD_LINE.replacen("http", "tftp_u", 1);
        let rec = parse_line(&odd_service, 1).unwrap();
        assert_eq!(rec.service, Service::Other);
    }

    #[test]
    fn read_dataset_skips_blank_lines() {
        let text = format!("{REAL_KDD_LINE}\n\n{REAL_KDD_LINE}\n");
        let ds = read_dataset(text.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn read_dataset_reports_line_numbers() {
        let text = format!("{REAL_KDD_LINE}\nnot,a,line\n");
        let err = read_dataset(text.as_bytes()).unwrap_err();
        assert_eq!(
            err,
            TrafficError::FieldCount {
                line: 2,
                expected: 42,
                found: 3
            }
        );
    }

    #[test]
    fn to_line_formats_label_with_dot() {
        let rec = ConnectionRecord::default();
        let line = to_line(&rec);
        assert!(line.ends_with("normal."));
        assert_eq!(line.split(',').count(), FIELDS_PER_LINE);
    }
}
