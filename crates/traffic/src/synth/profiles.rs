//! Per-class generative models.
//!
//! Each function draws one [`ConnectionRecord`] whose features carry the
//! *documented* signature of its class — the displacement directions that
//! published analyses of KDD Cup 99 attribute to each attack. A
//! prototype-based clusterer (SOM/GHSOM) sees exactly these geometric
//! structures; reproducing them is what makes the synthetic substitution
//! behaviour-preserving (see `DESIGN.md` §3).
//!
//! Values are drawn with jitter around the class centroids so that clusters
//! have realistic spread and partial overlap (R2L/U2R intentionally overlap
//! normal interactive sessions — that is why those categories are hard for
//! every detector in the literature).

use mathkit::sampler::{self, Categorical};
use rand::Rng;

use crate::label::AttackType;
use crate::record::{ConnectionRecord, Flag, Protocol, Service};

/// Draws one record of the given class.
pub fn sample<R: Rng + ?Sized>(ty: AttackType, rng: &mut R) -> ConnectionRecord {
    let mut rec = match ty {
        AttackType::Normal => normal(rng),
        // DoS
        AttackType::Back => back(rng),
        AttackType::Land => land(rng),
        AttackType::Neptune => neptune(rng),
        AttackType::Pod => pod(rng),
        AttackType::Smurf => smurf(rng),
        AttackType::Teardrop => teardrop(rng),
        AttackType::Apache2 => apache2(rng),
        AttackType::Mailbomb => mailbomb(rng),
        AttackType::Processtable => processtable(rng),
        AttackType::Udpstorm => udpstorm(rng),
        // Probe
        AttackType::Ipsweep => ipsweep(rng),
        AttackType::Nmap => nmap(rng),
        AttackType::Portsweep => portsweep(rng),
        AttackType::Satan => satan(rng),
        AttackType::Mscan => mscan(rng),
        AttackType::Saint => saint(rng),
        // R2L
        AttackType::FtpWrite => ftp_write(rng),
        AttackType::GuessPasswd => guess_passwd(rng),
        AttackType::Imap => imap(rng),
        AttackType::Multihop => multihop(rng),
        AttackType::Phf => phf(rng),
        AttackType::Spy => spy(rng),
        AttackType::Warezclient => warezclient(rng),
        AttackType::Warezmaster => warezmaster(rng),
        AttackType::Httptunnel => httptunnel(rng),
        AttackType::Snmpguess => snmpguess(rng),
        // U2R
        AttackType::BufferOverflow => buffer_overflow(rng),
        AttackType::Loadmodule => loadmodule(rng),
        AttackType::Perl => perl(rng),
        AttackType::Rootkit => rootkit(rng),
        AttackType::Ps => ps(rng),
        AttackType::Xterm => xterm(rng),
    };
    rec.label = ty;
    rec
}

// --------------------------------------------------------------------------
// helpers
// --------------------------------------------------------------------------

/// A rate in `[0, 1]` jittered around `mean`.
fn rate<R: Rng + ?Sized>(rng: &mut R, mean: f64, jitter: f64) -> f64 {
    sampler::truncated_normal(rng, mean, jitter, 0.0, 1.0)
}

/// A non-negative count with gamma-shaped spread around `mean`.
fn count<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    sampler::gamma(rng, 4.0, mean / 4.0).round()
}

/// A byte volume, log-normal around `exp(mu)`.
fn bytes<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    sampler::log_normal(rng, mu, sigma).round().max(0.0)
}

/// Bernoulli 0/1 indicator.
fn flip<R: Rng + ?Sized>(rng: &mut R, p: f64) -> f64 {
    if rng.gen::<f64>() < p {
        1.0
    } else {
        0.0
    }
}

/// `count`/`srv_count` + rate block of a flood against one service: near
/// the 511-connection window cap, homogeneous service, error rate `err`.
fn flood_window<R: Rng + ?Sized>(rec: &mut ConnectionRecord, rng: &mut R, err: f64) {
    rec.count = sampler::truncated_normal(rng, 450.0, 60.0, 100.0, 511.0).round();
    rec.srv_count = (rec.count * rate(rng, 0.97, 0.02)).round();
    rec.serror_rate = rate(rng, err, 0.03);
    rec.srv_serror_rate = rate(rng, err, 0.03);
    rec.same_srv_rate = rate(rng, 1.0, 0.02);
    rec.diff_srv_rate = rate(rng, 0.02, 0.02);
    rec.dst_host_count = 255.0;
    rec.dst_host_srv_count = sampler::truncated_normal(rng, 250.0, 10.0, 1.0, 255.0).round();
    rec.dst_host_same_srv_rate = rate(rng, 1.0, 0.02);
    rec.dst_host_serror_rate = rate(rng, err, 0.03);
    rec.dst_host_srv_serror_rate = rate(rng, err, 0.03);
}

// --------------------------------------------------------------------------
// normal traffic: a mixture of five behavioural sub-profiles
// --------------------------------------------------------------------------

fn normal<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    // web, mail, dns, file transfer, interactive login
    let profile = Categorical::new(&[0.50, 0.20, 0.15, 0.08, 0.07])
        .expect("static weights are valid")
        .sample(rng);
    match profile {
        0 => normal_web(rng),
        1 => normal_mail(rng),
        2 => normal_dns(rng),
        3 => normal_ftp(rng),
        _ => normal_interactive(rng),
    }
}

/// Shared tail of all normal profiles: a quiet, well-behaved 2-second and
/// host window.
fn normal_windows<R: Rng + ?Sized>(rec: &mut ConnectionRecord, rng: &mut R) {
    rec.count = count(rng, 6.0).min(511.0);
    rec.srv_count = (rec.count * rate(rng, 0.8, 0.15)).round();
    rec.serror_rate = rate(rng, 0.01, 0.02);
    rec.srv_serror_rate = rate(rng, 0.01, 0.02);
    rec.rerror_rate = rate(rng, 0.01, 0.02);
    rec.srv_rerror_rate = rate(rng, 0.01, 0.02);
    rec.same_srv_rate = rate(rng, 0.9, 0.1);
    rec.diff_srv_rate = rate(rng, 0.05, 0.05);
    rec.srv_diff_host_rate = rate(rng, 0.05, 0.08);
    rec.dst_host_count = count(rng, 120.0).min(255.0);
    rec.dst_host_srv_count = (rec.dst_host_count * rate(rng, 0.8, 0.2)).round();
    rec.dst_host_same_srv_rate = rate(rng, 0.85, 0.15);
    rec.dst_host_diff_srv_rate = rate(rng, 0.05, 0.05);
    rec.dst_host_same_src_port_rate = rate(rng, 0.1, 0.1);
    rec.dst_host_srv_diff_host_rate = rate(rng, 0.03, 0.04);
    rec.dst_host_serror_rate = rate(rng, 0.01, 0.02);
    rec.dst_host_srv_serror_rate = rate(rng, 0.01, 0.02);
    rec.dst_host_rerror_rate = rate(rng, 0.01, 0.02);
    rec.dst_host_srv_rerror_rate = rate(rng, 0.01, 0.02);
}

fn normal_web<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::Http,
        flag: Flag::Sf,
        duration: sampler::exponential(rng, 0.5).min(60.0),
        src_bytes: bytes(rng, 5.4, 0.6), // ~220 B request
        dst_bytes: bytes(rng, 7.7, 1.2), // ~2 KB response
        logged_in: 1.0,
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec
}

fn normal_mail<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: if rng.gen::<f64>() < 0.7 {
            Service::Smtp
        } else {
            Service::Pop3
        },
        flag: Flag::Sf,
        duration: sampler::exponential(rng, 0.3).min(120.0),
        src_bytes: bytes(rng, 6.9, 0.9),
        dst_bytes: bytes(rng, 5.8, 0.8),
        logged_in: flip(rng, 0.5),
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec
}

fn normal_dns<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Udp,
        service: Service::DomainUdp,
        flag: Flag::Sf,
        duration: 0.0,
        src_bytes: bytes(rng, 3.8, 0.4), // ~45 B query
        dst_bytes: bytes(rng, 4.8, 0.5), // ~120 B answer
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    // DNS fans out to many resolvers.
    rec.srv_diff_host_rate = rate(rng, 0.2, 0.1);
    rec
}

fn normal_ftp<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let data = rng.gen::<f64>() < 0.6;
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: if data { Service::FtpData } else { Service::Ftp },
        flag: Flag::Sf,
        duration: sampler::exponential(rng, 0.1).min(300.0),
        src_bytes: if data {
            bytes(rng, 9.0, 1.8)
        } else {
            bytes(rng, 5.0, 0.7)
        },
        dst_bytes: if data {
            bytes(rng, 4.0, 1.0)
        } else {
            bytes(rng, 5.5, 0.7)
        },
        logged_in: 1.0,
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec
}

fn normal_interactive<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: if rng.gen::<f64>() < 0.5 {
            Service::Telnet
        } else {
            Service::Ssh
        },
        flag: Flag::Sf,
        duration: sampler::log_normal(rng, 4.5, 1.0).min(3600.0),
        src_bytes: bytes(rng, 7.0, 1.0),
        dst_bytes: bytes(rng, 8.0, 1.2),
        logged_in: 1.0,
        hot: if rng.gen::<f64>() < 0.05 { 1.0 } else { 0.0 },
        num_file_creations: if rng.gen::<f64>() < 0.1 { 1.0 } else { 0.0 },
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec
}

// --------------------------------------------------------------------------
// DoS
// --------------------------------------------------------------------------

/// SYN flood: S0 half-open connections, zero payload, saturated window.
fn neptune<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: if rng.gen::<f64>() < 0.8 {
            Service::Private
        } else {
            Service::Http
        },
        flag: if rng.gen::<f64>() < 0.95 {
            Flag::S0
        } else {
            Flag::Rej
        },
        ..Default::default()
    };
    flood_window(&mut rec, rng, 0.99);
    rec
}

/// ICMP echo-reply flood: the fixed 1032-byte smurf payload.
fn smurf<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Icmp,
        service: Service::EcrI,
        flag: Flag::Sf,
        src_bytes: 1032.0 + if rng.gen::<f64>() < 0.1 { 8.0 } else { 0.0 },
        ..Default::default()
    };
    flood_window(&mut rec, rng, 0.0);
    rec
}

/// Apache buffer-overrun URL flood: huge requests against http.
fn back<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::Http,
        flag: Flag::Sf,
        duration: sampler::exponential(rng, 0.5).min(10.0),
        src_bytes: sampler::truncated_normal(rng, 54_000.0, 2_000.0, 40_000.0, 70_000.0).round(),
        dst_bytes: bytes(rng, 9.0, 0.5),
        logged_in: 1.0,
        hot: 2.0,
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec.count = count(rng, 15.0).min(511.0);
    rec
}

/// Same-host-same-port TCP loop.
fn land<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: if rng.gen::<f64>() < 0.5 {
            Service::Telnet
        } else {
            Service::Finger
        },
        flag: Flag::S0,
        land: 1.0,
        serror_rate: 1.0,
        srv_serror_rate: 1.0,
        same_srv_rate: 1.0,
        count: 1.0,
        srv_count: 1.0,
        dst_host_count: count(rng, 10.0).min(255.0),
        dst_host_serror_rate: rate(rng, 0.9, 0.1),
        dst_host_srv_serror_rate: rate(rng, 0.9, 0.1),
        dst_host_same_srv_rate: 1.0,
        ..Default::default()
    };
    rec.dst_host_srv_count = rec.dst_host_count;
    rec
}

/// Oversized fragmented ICMP echo ("ping of death").
fn pod<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Icmp,
        service: Service::EcoI,
        flag: Flag::Sf,
        src_bytes: sampler::truncated_normal(rng, 1480.0, 60.0, 564.0, 1480.0).round(),
        wrong_fragment: 1.0 + flip(rng, 0.3),
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec.count = count(rng, 30.0).min(511.0);
    rec.same_srv_rate = 1.0;
    rec
}

/// Overlapping UDP fragments.
fn teardrop<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Udp,
        service: Service::Private,
        flag: Flag::Sf,
        src_bytes: 28.0,
        wrong_fragment: 3.0,
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec.count = sampler::truncated_normal(rng, 150.0, 50.0, 10.0, 511.0).round();
    rec.srv_count = rec.count;
    rec.same_srv_rate = 1.0;
    rec
}

/// Test-only: Apache2 header flood (many slow requests, one host).
fn apache2<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::Http,
        flag: if rng.gen::<f64>() < 0.7 {
            Flag::Sf
        } else {
            Flag::Rstr
        },
        duration: sampler::exponential(rng, 0.1).min(200.0),
        src_bytes: sampler::truncated_normal(rng, 30_000.0, 8_000.0, 10_000.0, 80_000.0).round(),
        dst_bytes: 0.0,
        ..Default::default()
    };
    flood_window(&mut rec, rng, 0.05);
    rec.count = sampler::truncated_normal(rng, 200.0, 60.0, 50.0, 511.0).round();
    rec.srv_count = rec.count;
    rec
}

/// Test-only: SMTP mail bomb.
fn mailbomb<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::Smtp,
        flag: Flag::Sf,
        duration: sampler::exponential(rng, 1.0).min(20.0),
        src_bytes: sampler::truncated_normal(rng, 2500.0, 400.0, 500.0, 10_000.0).round(),
        dst_bytes: bytes(rng, 5.5, 0.4),
        ..Default::default()
    };
    flood_window(&mut rec, rng, 0.0);
    rec.count = sampler::truncated_normal(rng, 300.0, 80.0, 50.0, 511.0).round();
    rec.srv_count = rec.count;
    rec
}

/// Test-only: telnet process-table exhaustion (long-lived connections).
fn processtable<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::Telnet,
        flag: if rng.gen::<f64>() < 0.6 {
            Flag::S0
        } else {
            Flag::Sf
        },
        duration: sampler::log_normal(rng, 5.0, 0.8).min(3600.0),
        src_bytes: 0.0,
        dst_bytes: 0.0,
        ..Default::default()
    };
    flood_window(&mut rec, rng, 0.6);
    rec
}

/// Test-only: UDP echo/chargen storm.
fn udpstorm<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Udp,
        service: Service::Other,
        flag: Flag::Sf,
        src_bytes: sampler::truncated_normal(rng, 1_000_000.0, 200_000.0, 100_000.0, 5_000_000.0)
            .round(),
        ..Default::default()
    };
    flood_window(&mut rec, rng, 0.0);
    rec
}

// --------------------------------------------------------------------------
// Probe
// --------------------------------------------------------------------------

/// Shared probe window: connections fan out, errors dominate.
fn probe_window<R: Rng + ?Sized>(
    rec: &mut ConnectionRecord,
    rng: &mut R,
    rerror: f64,
    serror: f64,
    many_services: bool,
) {
    rec.count = count(rng, 12.0).min(511.0);
    rec.srv_count = count(rng, 8.0).min(511.0);
    rec.serror_rate = rate(rng, serror, 0.05);
    rec.srv_serror_rate = rate(rng, serror, 0.05);
    rec.rerror_rate = rate(rng, rerror, 0.05);
    rec.srv_rerror_rate = rate(rng, rerror, 0.05);
    if many_services {
        // Port sweep: one host, every service touched once.
        rec.same_srv_rate = rate(rng, 0.05, 0.04);
        rec.diff_srv_rate = rate(rng, 0.9, 0.08);
        rec.dst_host_count = count(rng, 200.0).min(255.0);
        rec.dst_host_srv_count = count(rng, 3.0).min(255.0);
        rec.dst_host_same_srv_rate = rate(rng, 0.02, 0.02);
        rec.dst_host_diff_srv_rate = rate(rng, 0.9, 0.08);
    } else {
        // Host sweep: one service, every host touched once.
        rec.same_srv_rate = rate(rng, 1.0, 0.03);
        rec.diff_srv_rate = rate(rng, 0.02, 0.02);
        rec.srv_diff_host_rate = rate(rng, 0.8, 0.15);
        rec.dst_host_count = count(rng, 6.0).min(255.0);
        rec.dst_host_srv_count = count(rng, 140.0).min(255.0);
        rec.dst_host_same_srv_rate = rate(rng, 0.9, 0.1);
        rec.dst_host_srv_diff_host_rate = rate(rng, 0.7, 0.2);
    }
    rec.dst_host_same_src_port_rate = rate(rng, 0.6, 0.3);
    rec.dst_host_serror_rate = rate(rng, serror, 0.05);
    rec.dst_host_srv_serror_rate = rate(rng, serror, 0.05);
    rec.dst_host_rerror_rate = rate(rng, rerror, 0.05);
    rec.dst_host_srv_rerror_rate = rate(rng, rerror, 0.05);
}

/// ICMP host sweep.
fn ipsweep<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Icmp,
        service: Service::EcoI,
        flag: Flag::Sf,
        src_bytes: if rng.gen::<f64>() < 0.5 { 8.0 } else { 18.0 },
        ..Default::default()
    };
    probe_window(&mut rec, rng, 0.0, 0.0, false);
    rec
}

/// TCP port sweep against one host.
fn portsweep<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::Private,
        flag: match rng.gen_range(0..10) {
            0..=5 => Flag::Rej,
            6..=8 => Flag::Rstr,
            _ => Flag::S0,
        },
        duration: 0.0,
        src_bytes: 0.0,
        ..Default::default()
    };
    probe_window(&mut rec, rng, 0.7, 0.25, true);
    rec
}

/// Stealth scanner: SYN/FIN tricks, mixed protocols.
fn nmap<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let icmp = rng.gen::<f64>() < 0.4;
    let mut rec = ConnectionRecord {
        protocol: if icmp { Protocol::Icmp } else { Protocol::Tcp },
        service: if icmp {
            Service::EcoI
        } else {
            Service::Private
        },
        flag: if icmp {
            Flag::Sf
        } else {
            match rng.gen_range(0..3) {
                0 => Flag::Sh,
                1 => Flag::S0,
                _ => Flag::Rej,
            }
        },
        src_bytes: if icmp { 8.0 } else { 0.0 },
        ..Default::default()
    };
    probe_window(&mut rec, rng, 0.3, 0.3, !icmp);
    rec
}

/// Vulnerability scanner touching many services with some payload.
fn satan<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: match rng.gen_range(0..4) {
            0 => Service::Private,
            1 => Service::Telnet,
            2 => Service::Finger,
            _ => Service::Other,
        },
        flag: if rng.gen::<f64>() < 0.6 {
            Flag::Rej
        } else {
            Flag::Sf
        },
        src_bytes: if rng.gen::<f64>() < 0.5 {
            0.0
        } else {
            bytes(rng, 3.0, 0.8)
        },
        ..Default::default()
    };
    probe_window(&mut rec, rng, 0.8, 0.1, true);
    rec
}

/// Test-only: mscan — aggressive multi-host multi-service scan.
fn mscan<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: if rng.gen::<f64>() < 0.5 {
            Service::Private
        } else {
            Service::NetbiosNs
        },
        flag: if rng.gen::<f64>() < 0.5 {
            Flag::Rej
        } else {
            Flag::S0
        },
        src_bytes: 0.0,
        ..Default::default()
    };
    probe_window(&mut rec, rng, 0.5, 0.5, true);
    rec.count = count(rng, 80.0).min(511.0);
    rec
}

/// Test-only: saint — satan successor, slightly stealthier.
fn saint<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = satan(rng);
    rec.count = count(rng, 5.0).min(511.0);
    rec.rerror_rate = rate(rng, 0.6, 0.1);
    rec
}

// --------------------------------------------------------------------------
// R2L — shaped like normal interactive traffic with credential anomalies
// --------------------------------------------------------------------------

fn guess_passwd<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: match rng.gen_range(0..3) {
            0 => Service::Telnet,
            1 => Service::Pop3,
            _ => Service::Ftp,
        },
        flag: if rng.gen::<f64>() < 0.6 {
            Flag::Sf
        } else {
            Flag::Rsto
        },
        duration: sampler::exponential(rng, 0.5).min(60.0),
        src_bytes: bytes(rng, 4.8, 0.4),
        dst_bytes: bytes(rng, 5.5, 0.5),
        num_failed_logins: 1.0 + count(rng, 2.0).min(4.0),
        hot: flip(rng, 0.3),
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec.count = count(rng, 3.0).min(511.0);
    rec
}

fn ftp_write<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::Ftp,
        flag: Flag::Sf,
        duration: sampler::exponential(rng, 0.05).min(600.0),
        src_bytes: bytes(rng, 5.5, 0.6),
        dst_bytes: bytes(rng, 5.0, 0.6),
        logged_in: 1.0,
        is_guest_login: 1.0,
        hot: 2.0,
        num_file_creations: 1.0 + flip(rng, 0.5),
        num_access_files: 1.0,
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec
}

fn imap<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::Imap4,
        flag: if rng.gen::<f64>() < 0.5 {
            Flag::Rsto
        } else {
            Flag::Sf
        },
        duration: sampler::exponential(rng, 1.0).min(30.0),
        src_bytes: bytes(rng, 6.5, 0.5),
        dst_bytes: bytes(rng, 4.5, 0.8),
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec
}

fn multihop<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::Telnet,
        flag: Flag::Sf,
        duration: sampler::log_normal(rng, 5.5, 0.8).min(7200.0),
        src_bytes: bytes(rng, 7.5, 0.8),
        dst_bytes: bytes(rng, 9.0, 1.0),
        logged_in: 1.0,
        hot: count(rng, 3.0),
        num_root: count(rng, 2.0),
        num_compromised: flip(rng, 0.5),
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec
}

/// phf CGI exploit: a single characteristic HTTP request.
fn phf<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::Http,
        flag: Flag::Sf,
        duration: sampler::exponential(rng, 2.0).min(10.0),
        src_bytes: sampler::truncated_normal(rng, 51.0, 4.0, 30.0, 80.0).round(),
        dst_bytes: sampler::truncated_normal(rng, 8127.0, 300.0, 5000.0, 12_000.0).round(),
        logged_in: 1.0,
        hot: 1.0,
        num_access_files: 1.0,
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec.count = 1.0;
    rec.srv_count = 1.0;
    rec
}

fn spy<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::Telnet,
        flag: Flag::Sf,
        duration: sampler::log_normal(rng, 5.0, 1.0).min(7200.0),
        src_bytes: bytes(rng, 6.0, 0.8),
        dst_bytes: bytes(rng, 7.5, 1.0),
        logged_in: 1.0,
        num_access_files: 1.0 + flip(rng, 0.5),
        hot: flip(rng, 0.5),
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec
}

fn warezclient<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::FtpData,
        flag: Flag::Sf,
        duration: sampler::exponential(rng, 0.02).min(3600.0),
        // Large warez download.
        src_bytes: bytes(rng, 12.0, 1.0),
        dst_bytes: 0.0,
        is_guest_login: 1.0,
        logged_in: 1.0,
        hot: count(rng, 8.0),
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec
}

fn warezmaster<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::Ftp,
        flag: Flag::Sf,
        duration: sampler::exponential(rng, 0.05).min(3600.0),
        // Upload to the compromised server.
        src_bytes: bytes(rng, 7.0, 0.8),
        dst_bytes: bytes(rng, 11.5, 1.0),
        is_guest_login: 1.0,
        logged_in: 1.0,
        hot: 2.0,
        num_file_creations: 1.0,
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec
}

/// Test-only: httptunnel — covert channel over long-lived HTTP.
fn httptunnel<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service: Service::Http,
        flag: Flag::Sf,
        duration: sampler::log_normal(rng, 6.5, 0.8).min(86_400.0),
        src_bytes: bytes(rng, 8.5, 0.8),
        dst_bytes: bytes(rng, 8.5, 0.8),
        logged_in: 1.0,
        hot: flip(rng, 0.3),
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec.dst_host_same_src_port_rate = rate(rng, 0.9, 0.1);
    rec
}

/// Test-only: snmpguess — community-string guessing over UDP.
fn snmpguess<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Udp,
        service: Service::Snmp,
        flag: Flag::Sf,
        duration: 0.0,
        src_bytes: sampler::truncated_normal(rng, 55.0, 8.0, 30.0, 120.0).round(),
        dst_bytes: 0.0,
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec.count = count(rng, 60.0).min(511.0);
    rec.srv_count = rec.count;
    rec.same_srv_rate = 1.0;
    rec.dst_host_same_src_port_rate = rate(rng, 0.95, 0.05);
    rec
}

// --------------------------------------------------------------------------
// U2R — interactive sessions that end in privilege escalation
// --------------------------------------------------------------------------

/// Shared U2R base: a logged-in interactive session.
fn u2r_session<R: Rng + ?Sized>(rng: &mut R, service: Service) -> ConnectionRecord {
    let mut rec = ConnectionRecord {
        protocol: Protocol::Tcp,
        service,
        flag: Flag::Sf,
        duration: sampler::log_normal(rng, 4.8, 1.0).min(7200.0),
        src_bytes: bytes(rng, 7.2, 1.0),
        dst_bytes: bytes(rng, 8.2, 1.2),
        logged_in: 1.0,
        ..Default::default()
    };
    normal_windows(&mut rec, rng);
    rec.count = count(rng, 2.0).min(511.0);
    rec.srv_count = rec.count;
    rec
}

fn buffer_overflow<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let service = if rng.gen::<f64>() < 0.7 {
        Service::Telnet
    } else {
        Service::Ftp
    };
    let mut rec = u2r_session(rng, service);
    rec.hot = count(rng, 2.0) + 1.0;
    rec.root_shell = flip(rng, 0.8);
    rec.num_file_creations = count(rng, 1.5);
    rec.num_compromised = 1.0 + count(rng, 1.0);
    rec.su_attempted = flip(rng, 0.3);
    rec
}

fn loadmodule<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = u2r_session(rng, Service::Telnet);
    rec.root_shell = flip(rng, 0.7);
    rec.num_file_creations = 1.0 + count(rng, 1.0);
    rec.num_root = count(rng, 1.5);
    rec.num_access_files = 1.0;
    rec
}

fn perl<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = u2r_session(rng, Service::Telnet);
    rec.root_shell = 1.0;
    rec.num_root = 2.0 + count(rng, 1.0);
    rec.num_shells = 1.0;
    rec
}

fn rootkit<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let service = if rng.gen::<f64>() < 0.5 {
        Service::Telnet
    } else {
        Service::Ftp
    };
    let mut rec = u2r_session(rng, service);
    rec.num_root = count(rng, 2.0);
    rec.num_file_creations = count(rng, 2.0);
    rec.hot = count(rng, 1.5);
    rec.su_attempted = flip(rng, 0.4);
    rec
}

/// Test-only: ps exploit.
fn ps<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = u2r_session(rng, Service::Telnet);
    rec.root_shell = 1.0;
    rec.num_file_creations = 1.0 + count(rng, 2.0);
    rec.num_shells = 1.0 + flip(rng, 0.5);
    rec
}

/// Test-only: xterm exploit.
fn xterm<R: Rng + ?Sized>(rng: &mut R) -> ConnectionRecord {
    let mut rec = u2r_session(rng, Service::Telnet);
    rec.root_shell = 1.0;
    rec.hot = 1.0 + count(rng, 1.0);
    rec.num_compromised = 1.0;
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn every_type_generates_valid_records() {
        let mut r = rng();
        for ty in AttackType::ALL {
            for _ in 0..50 {
                let rec = sample(ty, &mut r);
                assert_eq!(rec.label, ty);
                rec.validate()
                    .unwrap_or_else(|e| panic!("{ty} produced invalid record: {e}"));
            }
        }
    }

    #[test]
    fn neptune_signature() {
        let mut r = rng();
        for _ in 0..50 {
            let rec = sample(AttackType::Neptune, &mut r);
            assert_eq!(rec.protocol, Protocol::Tcp);
            assert!(rec.flag == Flag::S0 || rec.flag == Flag::Rej);
            assert_eq!(rec.src_bytes, 0.0);
            assert!(rec.serror_rate > 0.8, "serror_rate {}", rec.serror_rate);
            assert!(rec.count >= 100.0, "count {}", rec.count);
        }
    }

    #[test]
    fn smurf_signature() {
        let mut r = rng();
        for _ in 0..50 {
            let rec = sample(AttackType::Smurf, &mut r);
            assert_eq!(rec.protocol, Protocol::Icmp);
            assert_eq!(rec.service, Service::EcrI);
            assert!(rec.src_bytes >= 1032.0);
            assert!(rec.count >= 100.0);
            assert!(rec.serror_rate < 0.2);
        }
    }

    #[test]
    fn portsweep_disperses_services() {
        let mut r = rng();
        let mut diff_sum = 0.0;
        for _ in 0..50 {
            let rec = sample(AttackType::Portsweep, &mut r);
            diff_sum += rec.diff_srv_rate;
            assert!(rec.src_bytes == 0.0);
        }
        assert!(diff_sum / 50.0 > 0.7, "portsweep must disperse services");
    }

    #[test]
    fn ipsweep_fans_across_hosts() {
        let mut r = rng();
        let mut fan = 0.0;
        for _ in 0..50 {
            let rec = sample(AttackType::Ipsweep, &mut r);
            assert_eq!(rec.protocol, Protocol::Icmp);
            fan += rec.srv_diff_host_rate;
        }
        assert!(fan / 50.0 > 0.5, "ipsweep must fan across hosts");
    }

    #[test]
    fn guess_passwd_has_failed_logins() {
        let mut r = rng();
        for _ in 0..50 {
            let rec = sample(AttackType::GuessPasswd, &mut r);
            assert!(rec.num_failed_logins >= 1.0);
            assert_eq!(rec.logged_in, 0.0);
        }
    }

    #[test]
    fn u2r_types_show_escalation_markers() {
        let mut r = rng();
        for ty in [
            AttackType::BufferOverflow,
            AttackType::Perl,
            AttackType::Ps,
            AttackType::Xterm,
        ] {
            let mut any_root = false;
            for _ in 0..30 {
                let rec = sample(ty, &mut r);
                assert_eq!(rec.logged_in, 1.0);
                if rec.root_shell == 1.0 || rec.num_root > 0.0 {
                    any_root = true;
                }
            }
            assert!(any_root, "{ty} never showed root markers");
        }
    }

    #[test]
    fn land_sets_land_bit() {
        let mut r = rng();
        let rec = sample(AttackType::Land, &mut r);
        assert_eq!(rec.land, 1.0);
        assert_eq!(rec.serror_rate, 1.0);
    }

    #[test]
    fn teardrop_and_pod_have_wrong_fragments() {
        let mut r = rng();
        assert!(sample(AttackType::Teardrop, &mut r).wrong_fragment >= 3.0);
        assert!(sample(AttackType::Pod, &mut r).wrong_fragment >= 1.0);
    }

    #[test]
    fn normal_is_mostly_quiet() {
        let mut r = rng();
        let mut serror = 0.0;
        let mut n_logged = 0;
        for _ in 0..200 {
            let rec = sample(AttackType::Normal, &mut r);
            serror += rec.serror_rate;
            if rec.logged_in == 1.0 {
                n_logged += 1;
            }
            assert!(rec.count <= 511.0);
        }
        assert!(serror / 200.0 < 0.05, "normal traffic must have low serror");
        assert!(n_logged > 50, "many normal sessions are logged in");
    }

    #[test]
    fn dos_floods_separate_from_normal_in_count() {
        let mut r = rng();
        let dos_mean: f64 = (0..100)
            .map(|_| sample(AttackType::Neptune, &mut r).count)
            .sum::<f64>()
            / 100.0;
        let normal_mean: f64 = (0..100)
            .map(|_| sample(AttackType::Normal, &mut r).count)
            .sum::<f64>()
            / 100.0;
        assert!(
            dos_mean > 10.0 * normal_mean,
            "flood count {dos_mean} vs normal {normal_mean}"
        );
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let mut a = rng();
        let mut b = rng();
        for ty in AttackType::ALL {
            assert_eq!(sample(ty, &mut a), sample(ty, &mut b));
        }
    }
}
