//! Seeded synthetic traffic generation.
//!
//! [`MixSpec`] describes a class mixture (which attack types, with which
//! weights); [`TrafficGenerator`] draws labelled [`ConnectionRecord`]s from
//! it. The built-in mixes reproduce the well-known class imbalance of the
//! KDD Cup 99 "10%" training file and its "corrected" test file (which
//! introduces attack types absent from training).

pub mod profiles;

use mathkit::sampler::Categorical;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::label::AttackType;
use crate::record::ConnectionRecord;
use crate::TrafficError;

/// A weighted mixture of traffic classes.
///
/// # Example
///
/// ```
/// use traffic::synth::MixSpec;
/// use traffic::AttackType;
///
/// # fn main() -> Result<(), traffic::TrafficError> {
/// let mix = MixSpec::custom(vec![
///     (AttackType::Normal, 0.8),
///     (AttackType::Neptune, 0.2),
/// ])?;
/// assert_eq!(mix.classes().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MixSpec {
    weights: Vec<(AttackType, f64)>,
}

impl MixSpec {
    /// A mixture with user-provided weights (need not sum to 1; they are
    /// normalized internally).
    ///
    /// # Errors
    ///
    /// [`TrafficError::InvalidMix`] when empty, when a weight is negative or
    /// non-finite, when all weights are zero, or when a class repeats.
    pub fn custom(weights: Vec<(AttackType, f64)>) -> Result<Self, TrafficError> {
        if weights.is_empty() {
            return Err(TrafficError::InvalidMix("mix must name at least one class"));
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut total = 0.0;
        for (ty, w) in &weights {
            if !w.is_finite() || *w < 0.0 {
                return Err(TrafficError::InvalidMix(
                    "weights must be finite and non-negative",
                ));
            }
            if !seen.insert(*ty) {
                return Err(TrafficError::InvalidMix("duplicate class in mix"));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(TrafficError::InvalidMix(
                "at least one weight must be positive",
            ));
        }
        Ok(MixSpec { weights })
    }

    /// The KDD Cup 99 "10%" **training** distribution: dominated by `smurf`
    /// and `neptune`, with ~20% normal traffic and rare R2L/U2R records.
    ///
    /// Weights are the actual record counts of the original file, so the
    /// generated class proportions match the dataset the paper trained on.
    pub fn kdd_train() -> Self {
        use AttackType::*;
        MixSpec {
            weights: vec![
                (Smurf, 280_790.0),
                (Neptune, 107_201.0),
                (Normal, 97_278.0),
                (Back, 2_203.0),
                (Satan, 1_589.0),
                (Ipsweep, 1_247.0),
                (Portsweep, 1_040.0),
                (Warezclient, 1_020.0),
                (Teardrop, 979.0),
                (Pod, 264.0),
                (Nmap, 231.0),
                (GuessPasswd, 53.0),
                (BufferOverflow, 30.0),
                (Land, 21.0),
                (Warezmaster, 20.0),
                (Imap, 12.0),
                (Rootkit, 10.0),
                (Loadmodule, 9.0),
                (FtpWrite, 8.0),
                (Multihop, 7.0),
                (Phf, 4.0),
                (Perl, 3.0),
                (Spy, 2.0),
            ],
        }
    }

    /// The KDD Cup 99 "corrected" **test** distribution: a different class
    /// balance than training and, crucially, attack types that never occur
    /// in training (`apache2`, `mailbomb`, `mscan`, `saint`, `httptunnel`,
    /// `snmpguess`, `ps`, `xterm`, …).
    pub fn kdd_test() -> Self {
        use AttackType::*;
        MixSpec {
            weights: vec![
                (Smurf, 164_091.0),
                (Normal, 60_593.0),
                (Neptune, 58_001.0),
                (GuessPasswd, 4_367.0),
                (Mscan, 1_053.0),
                (Warezmaster, 1_602.0),
                (Apache2, 794.0),
                (Satan, 1_633.0),
                (Processtable, 759.0),
                (Saint, 736.0),
                (Mailbomb, 5_000.0),
                (Snmpguess, 2_406.0),
                (Back, 1_098.0),
                (Httptunnel, 158.0),
                (Portsweep, 354.0),
                (Ipsweep, 306.0),
                (Pod, 87.0),
                (Nmap, 84.0),
                (Teardrop, 12.0),
                (BufferOverflow, 22.0),
                (Land, 9.0),
                (Xterm, 13.0),
                (Rootkit, 13.0),
                (Ps, 16.0),
                (Multihop, 18.0),
                (Udpstorm, 2.0),
                (Perl, 2.0),
                (Loadmodule, 2.0),
                (FtpWrite, 3.0),
                (Imap, 1.0),
                (Phf, 2.0),
            ],
        }
    }

    /// Normal traffic only (used to fit anomaly thresholds).
    pub fn normal_only() -> Self {
        MixSpec {
            weights: vec![(AttackType::Normal, 1.0)],
        }
    }

    /// Equal weight on every training-time class — useful for clustering
    /// diagnostics where the extreme KDD imbalance is a nuisance.
    pub fn balanced_training() -> Self {
        MixSpec {
            weights: AttackType::training_types()
                .into_iter()
                .map(|t| (t, 1.0))
                .collect(),
        }
    }

    /// The classes named by this mix.
    pub fn classes(&self) -> Vec<AttackType> {
        self.weights.iter().map(|(t, _)| *t).collect()
    }

    /// The (unnormalized) weight of a class, or 0 if absent.
    pub fn weight(&self, ty: AttackType) -> f64 {
        self.weights
            .iter()
            .find(|(t, _)| *t == ty)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// Normalized probability of a class.
    pub fn probability(&self, ty: AttackType) -> f64 {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        self.weight(ty) / total
    }
}

/// Draws labelled connection records from a [`MixSpec`], deterministically
/// under a seed.
///
/// # Example
///
/// ```
/// use traffic::synth::{MixSpec, TrafficGenerator};
///
/// # fn main() -> Result<(), traffic::TrafficError> {
/// let mut gen = TrafficGenerator::new(MixSpec::normal_only(), 7)?;
/// let ds = gen.generate(100);
/// assert_eq!(ds.len(), 100);
/// assert!(ds.iter().all(|r| !r.is_attack()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TrafficGenerator {
    classes: Vec<AttackType>,
    sampler: Categorical,
    rng: StdRng,
}

impl TrafficGenerator {
    /// Creates a generator for `mix` with the given seed.
    ///
    /// # Errors
    ///
    /// [`TrafficError::InvalidMix`] when the weights cannot form a
    /// categorical distribution (this can only happen through
    /// [`MixSpec::custom`] misuse and is double-checked here).
    pub fn new(mix: MixSpec, seed: u64) -> Result<Self, TrafficError> {
        let weights: Vec<f64> = mix.weights.iter().map(|(_, w)| *w).collect();
        let sampler = Categorical::new(&weights)
            .map_err(|_| TrafficError::InvalidMix("weights do not form a distribution"))?;
        Ok(TrafficGenerator {
            classes: mix.classes(),
            sampler,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Draws a single record from the mixture.
    pub fn sample(&mut self) -> ConnectionRecord {
        let ty = self.classes[self.sampler.sample(&mut self.rng)];
        profiles::sample(ty, &mut self.rng)
    }

    /// Draws a single record of a *specific* class.
    pub fn sample_of(&mut self, ty: AttackType) -> ConnectionRecord {
        profiles::sample(ty, &mut self.rng)
    }

    /// Generates `n` records into a [`Dataset`].
    pub fn generate(&mut self, n: usize) -> Dataset {
        let records = (0..n).map(|_| self.sample()).collect();
        Dataset::from_records(records)
    }

    /// Generates exactly `n` records of class `ty`.
    pub fn generate_of(&mut self, ty: AttackType, n: usize) -> Dataset {
        let records = (0..n).map(|_| self.sample_of(ty)).collect();
        Dataset::from_records(records)
    }
}

/// Convenience: the standard paper-scale experiment data — a training set
/// drawn from the KDD training mix and a test set from the corrected-test
/// mix (which includes unseen attack types).
///
/// # Errors
///
/// Never fails in practice (the built-in mixes are valid); the `Result`
/// keeps the signature honest about the fallible constructor it wraps.
pub fn kdd_train_test(
    n_train: usize,
    n_test: usize,
    seed: u64,
) -> Result<(Dataset, Dataset), TrafficError> {
    let mut train_gen = TrafficGenerator::new(MixSpec::kdd_train(), seed)?;
    // Decorrelate the test stream from the training stream.
    let mut test_gen = TrafficGenerator::new(MixSpec::kdd_test(), seed.wrapping_add(0x9E37_79B9))?;
    Ok((train_gen.generate(n_train), test_gen.generate(n_test)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::AttackCategory;

    #[test]
    fn custom_mix_validation() {
        assert!(MixSpec::custom(vec![]).is_err());
        assert!(MixSpec::custom(vec![(AttackType::Normal, -1.0)]).is_err());
        assert!(MixSpec::custom(vec![(AttackType::Normal, 0.0)]).is_err());
        assert!(
            MixSpec::custom(vec![(AttackType::Normal, 1.0), (AttackType::Normal, 1.0)]).is_err()
        );
        assert!(MixSpec::custom(vec![(AttackType::Normal, f64::NAN)]).is_err());
        assert!(MixSpec::custom(vec![(AttackType::Normal, 2.0)]).is_ok());
    }

    #[test]
    fn kdd_train_mix_has_no_test_only_types() {
        for ty in MixSpec::kdd_train().classes() {
            assert!(!ty.is_test_only(), "{ty} is test-only but in training mix");
        }
    }

    #[test]
    fn kdd_test_mix_contains_unseen_types() {
        let classes = MixSpec::kdd_test().classes();
        assert!(classes.iter().any(|t| t.is_test_only()));
        assert!(classes.contains(&AttackType::Mscan));
        assert!(classes.contains(&AttackType::Apache2));
    }

    #[test]
    fn kdd_train_proportions_match_reference() {
        let mix = MixSpec::kdd_train();
        // smurf is ~56.8% of the 10% file.
        assert!((mix.probability(AttackType::Smurf) - 0.568).abs() < 0.01);
        assert!((mix.probability(AttackType::Normal) - 0.197).abs() < 0.01);
        assert_eq!(mix.weight(AttackType::Apache2), 0.0);
    }

    #[test]
    fn generator_respects_mixture() {
        let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), 11).unwrap();
        let ds = gen.generate(5_000);
        let counts = ds.counts_by_category();
        let dos = counts[&AttackCategory::Dos] as f64 / ds.len() as f64;
        let normal = counts[&AttackCategory::Normal] as f64 / ds.len() as f64;
        assert!((dos - 0.79).abs() < 0.05, "dos fraction {dos}");
        assert!((normal - 0.197).abs() < 0.05, "normal fraction {normal}");
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = TrafficGenerator::new(MixSpec::kdd_train(), 5).unwrap();
        let mut b = TrafficGenerator::new(MixSpec::kdd_train(), 5).unwrap();
        let da = a.generate(200);
        let db = b.generate(200);
        assert_eq!(da.records(), db.records());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TrafficGenerator::new(MixSpec::kdd_train(), 5).unwrap();
        let mut b = TrafficGenerator::new(MixSpec::kdd_train(), 6).unwrap();
        assert_ne!(a.generate(50).records(), b.generate(50).records());
    }

    #[test]
    fn generate_of_yields_requested_class() {
        let mut gen = TrafficGenerator::new(MixSpec::normal_only(), 1).unwrap();
        let ds = gen.generate_of(AttackType::Satan, 25);
        assert_eq!(ds.len(), 25);
        assert!(ds.iter().all(|r| r.label == AttackType::Satan));
    }

    #[test]
    fn all_generated_records_are_valid() {
        let (train, test) = kdd_train_test(2_000, 2_000, 99).unwrap();
        for rec in train.iter().chain(test.iter()) {
            rec.validate().expect("generated record must validate");
        }
    }

    #[test]
    fn balanced_mix_covers_all_training_types() {
        let mix = MixSpec::balanced_training();
        assert_eq!(mix.classes().len(), AttackType::training_types().len());
        let mut gen = TrafficGenerator::new(mix, 3).unwrap();
        let ds = gen.generate(2_000);
        // With 23 classes and 2000 draws, every class should appear.
        let counts = ds.counts_by_type();
        assert!(counts.len() >= 20, "only {} classes appeared", counts.len());
    }
}
