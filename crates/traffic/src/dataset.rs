//! Labelled record containers with splitting and class accounting.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::label::{AttackCategory, AttackType};
use crate::record::ConnectionRecord;
use crate::TrafficError;

/// An in-memory labelled dataset of connection records.
///
/// # Example
///
/// ```
/// use traffic::synth::{MixSpec, TrafficGenerator};
///
/// # fn main() -> Result<(), traffic::TrafficError> {
/// let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), 1)?;
/// let ds = gen.generate(500);
/// let (train, test) = ds.split_at_fraction(0.8, 42)?;
/// assert_eq!(train.len() + test.len(), 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    records: Vec<ConnectionRecord>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a vector of records.
    pub fn from_records(records: Vec<ConnectionRecord>) -> Self {
        Dataset { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrow of the underlying records.
    pub fn records(&self) -> &[ConnectionRecord] {
        &self.records
    }

    /// Iterator over records.
    pub fn iter(&self) -> std::slice::Iter<'_, ConnectionRecord> {
        self.records.iter()
    }

    /// Appends a record.
    pub fn push(&mut self, record: ConnectionRecord) {
        self.records.push(record);
    }

    /// Consumes the dataset, returning its records.
    pub fn into_records(self) -> Vec<ConnectionRecord> {
        self.records
    }

    /// Appends all records of `other`.
    pub fn merge(&mut self, other: Dataset) {
        self.records.extend(other.records);
    }

    /// Record counts per concrete attack type, sorted by type.
    pub fn counts_by_type(&self) -> BTreeMap<AttackType, usize> {
        let mut counts = BTreeMap::new();
        for rec in &self.records {
            *counts.entry(rec.label).or_insert(0) += 1;
        }
        counts
    }

    /// Record counts per coarse category, sorted by category.
    pub fn counts_by_category(&self) -> BTreeMap<AttackCategory, usize> {
        let mut counts = BTreeMap::new();
        for rec in &self.records {
            *counts.entry(rec.category()).or_insert(0) += 1;
        }
        counts
    }

    /// Number of attack (non-normal) records.
    pub fn attack_count(&self) -> usize {
        self.records.iter().filter(|r| r.is_attack()).count()
    }

    /// A new dataset containing only records matching `predicate`.
    pub fn filter<F: Fn(&ConnectionRecord) -> bool>(&self, predicate: F) -> Dataset {
        Dataset {
            records: self
                .records
                .iter()
                .filter(|r| predicate(r))
                .cloned()
                .collect(),
        }
    }

    /// Only the records of the given category.
    pub fn of_category(&self, cat: AttackCategory) -> Dataset {
        self.filter(|r| r.category() == cat)
    }

    /// Shuffles (seeded) and splits into `(first, second)` where `first`
    /// holds `fraction` of the records.
    ///
    /// # Errors
    ///
    /// [`TrafficError::EmptyDataset`] when empty;
    /// [`TrafficError::InvalidMix`] when `fraction` is outside `(0, 1)`.
    pub fn split_at_fraction(
        &self,
        fraction: f64,
        seed: u64,
    ) -> Result<(Dataset, Dataset), TrafficError> {
        if self.is_empty() {
            return Err(TrafficError::EmptyDataset);
        }
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(TrafficError::InvalidMix("split fraction must be in (0, 1)"));
        }
        let mut shuffled = self.records.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
        let cut = ((shuffled.len() as f64) * fraction).round() as usize;
        let cut = cut.clamp(1, shuffled.len() - 1);
        let second = shuffled.split_off(cut);
        Ok((
            Dataset::from_records(shuffled),
            Dataset::from_records(second),
        ))
    }

    /// Stratified split: each concrete attack type is split at `fraction`
    /// independently, so both halves preserve the class mixture (rare
    /// classes with a single record land in the first half).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Dataset::split_at_fraction`].
    pub fn stratified_split(
        &self,
        fraction: f64,
        seed: u64,
    ) -> Result<(Dataset, Dataset), TrafficError> {
        if self.is_empty() {
            return Err(TrafficError::EmptyDataset);
        }
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(TrafficError::InvalidMix("split fraction must be in (0, 1)"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut first = Vec::new();
        let mut second = Vec::new();
        let mut by_type: BTreeMap<AttackType, Vec<ConnectionRecord>> = BTreeMap::new();
        for rec in &self.records {
            by_type.entry(rec.label).or_default().push(rec.clone());
        }
        for (_, mut group) in by_type {
            group.shuffle(&mut rng);
            let cut = ((group.len() as f64) * fraction).round() as usize;
            let cut = cut.clamp(1, group.len());
            let tail = group.split_off(cut.min(group.len()));
            first.extend(group);
            second.extend(tail);
        }
        // Re-shuffle so downstream consumers don't see class-sorted data.
        first.shuffle(&mut rng);
        second.shuffle(&mut rng);
        Ok((Dataset::from_records(first), Dataset::from_records(second)))
    }

    /// Takes a seeded random subsample of at most `n` records.
    pub fn subsample(&self, n: usize, seed: u64) -> Dataset {
        if n >= self.len() {
            return self.clone();
        }
        let mut shuffled = self.records.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
        shuffled.truncate(n);
        Dataset::from_records(shuffled)
    }

    /// The set of distinct labels present.
    pub fn distinct_labels(&self) -> Vec<AttackType> {
        self.counts_by_type().into_keys().collect()
    }
}

impl FromIterator<ConnectionRecord> for Dataset {
    fn from_iter<I: IntoIterator<Item = ConnectionRecord>>(iter: I) -> Self {
        Dataset {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<ConnectionRecord> for Dataset {
    fn extend<I: IntoIterator<Item = ConnectionRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a ConnectionRecord;
    type IntoIter = std::slice::Iter<'a, ConnectionRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for Dataset {
    type Item = ConnectionRecord;
    type IntoIter = std::vec::IntoIter<ConnectionRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{MixSpec, TrafficGenerator};

    fn dataset(n: usize) -> Dataset {
        TrafficGenerator::new(MixSpec::kdd_train(), 77)
            .unwrap()
            .generate(n)
    }

    #[test]
    fn basic_accessors() {
        let ds = dataset(100);
        assert_eq!(ds.len(), 100);
        assert!(!ds.is_empty());
        assert_eq!(ds.records().len(), 100);
        assert_eq!(ds.iter().count(), 100);
        assert!(Dataset::new().is_empty());
    }

    #[test]
    fn counts_partition_dataset() {
        let ds = dataset(500);
        let by_type: usize = ds.counts_by_type().values().sum();
        let by_cat: usize = ds.counts_by_category().values().sum();
        assert_eq!(by_type, 500);
        assert_eq!(by_cat, 500);
        assert_eq!(
            ds.attack_count() + ds.of_category(AttackCategory::Normal).len(),
            500
        );
    }

    #[test]
    fn split_preserves_records() {
        let ds = dataset(200);
        let (a, b) = ds.split_at_fraction(0.75, 1).unwrap();
        assert_eq!(a.len(), 150);
        assert_eq!(b.len(), 50);
        let mut merged = a.clone();
        merged.merge(b);
        assert_eq!(merged.len(), 200);
        // Same multiset of labels.
        assert_eq!(merged.counts_by_type(), ds.counts_by_type());
    }

    #[test]
    fn split_rejects_bad_inputs() {
        assert!(Dataset::new().split_at_fraction(0.5, 0).is_err());
        let ds = dataset(10);
        assert!(ds.split_at_fraction(0.0, 0).is_err());
        assert!(ds.split_at_fraction(1.0, 0).is_err());
        assert!(ds.split_at_fraction(1.5, 0).is_err());
    }

    #[test]
    fn split_is_deterministic() {
        let ds = dataset(100);
        let (a1, _) = ds.split_at_fraction(0.5, 9).unwrap();
        let (a2, _) = ds.split_at_fraction(0.5, 9).unwrap();
        assert_eq!(a1, a2);
        let (a3, _) = ds.split_at_fraction(0.5, 10).unwrap();
        assert_ne!(a1, a3);
    }

    #[test]
    fn stratified_split_preserves_mixture() {
        let ds = dataset(2_000);
        let (a, b) = ds.stratified_split(0.5, 3).unwrap();
        assert_eq!(a.len() + b.len(), 2_000);
        let full = ds.counts_by_category();
        let half = a.counts_by_category();
        for (cat, &n) in &full {
            if n >= 20 {
                let got = *half.get(cat).unwrap_or(&0) as f64;
                let want = n as f64 * 0.5;
                assert!(
                    (got - want).abs() / want < 0.25,
                    "{cat}: expected ~{want}, got {got}"
                );
            }
        }
    }

    #[test]
    fn subsample_bounds() {
        let ds = dataset(100);
        assert_eq!(ds.subsample(10, 0).len(), 10);
        assert_eq!(ds.subsample(1_000, 0).len(), 100);
        // Deterministic.
        assert_eq!(ds.subsample(10, 5), ds.subsample(10, 5));
    }

    #[test]
    fn filter_and_of_category() {
        let ds = dataset(500);
        let dos = ds.of_category(AttackCategory::Dos);
        assert!(dos.iter().all(|r| r.category() == AttackCategory::Dos));
        let floods = ds.filter(|r| r.count > 400.0);
        assert!(floods.iter().all(|r| r.count > 400.0));
    }

    #[test]
    fn collection_traits() {
        let ds = dataset(10);
        let collected: Dataset = ds.iter().cloned().collect();
        assert_eq!(collected, ds);
        let mut ext = Dataset::new();
        ext.extend(ds.clone());
        assert_eq!(ext.len(), 10);
        let v: Vec<_> = ds.clone().into_iter().collect();
        assert_eq!(v.len(), 10);
        assert_eq!(ds.into_records().len(), 10);
    }

    #[test]
    fn distinct_labels_sorted_unique() {
        let ds = dataset(1_000);
        let labels = ds.distinct_labels();
        let mut sorted = labels.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(labels, sorted);
    }

    #[test]
    fn serde_roundtrip() {
        let ds = dataset(20);
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ds);
    }
}
