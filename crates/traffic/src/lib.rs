//! Synthetic KDD-Cup-99-style network traffic substrate.
//!
//! The target paper evaluates a growing hierarchical SOM on a standard
//! intrusion-detection dataset (the KDD Cup 99 family). That data is not
//! available in this offline environment, so this crate implements the
//! closest synthetic equivalent that exercises the same code paths (the
//! substitution is documented in `DESIGN.md` §3):
//!
//! * [`record`] — the 41-feature connection record, its categorical
//!   vocabularies ([`Protocol`], [`Service`], [`Flag`]) and feature-name
//!   metadata.
//! * [`label`] — the attack taxonomy: 30+ concrete [`AttackType`]s grouped
//!   into the five standard [`AttackCategory`]s (normal, DoS, probe, R2L,
//!   U2R), including test-only attack types unseen during training.
//! * [`synth`] — seeded generative models per attack type that reproduce the
//!   documented feature signatures (SYN-flood S0 flags, smurf ICMP
//!   `ecr_i` floods, port-scan service dispersal, …).
//! * [`dataset`] — labelled record containers with stratified splitting and
//!   class accounting.
//! * [`csv`] — reader/writer for the actual KDD CSV column format, so the
//!   real dataset can be dropped in where available.
//! * [`flows`] — a raw flow-event simulator (5-tuples over time), and
//! * [`window`] — the 2-second sliding-window aggregator that derives the
//!   KDD time-based features from raw flows, mirroring how the original
//!   dataset's features were produced from tcpdump traces.
//!
//! # Example
//!
//! ```
//! use traffic::synth::{MixSpec, TrafficGenerator};
//! use traffic::label::AttackCategory;
//!
//! # fn main() -> Result<(), traffic::TrafficError> {
//! let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), 42)?;
//! let dataset = gen.generate(1000);
//! let counts = dataset.counts_by_category();
//! // The KDD training mix is dominated by DoS floods.
//! assert!(counts[&AttackCategory::Dos] > counts[&AttackCategory::Normal]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
pub mod error;
pub mod flows;
pub mod label;
pub mod record;
pub mod synth;
pub mod window;

pub use dataset::Dataset;
pub use error::TrafficError;
pub use label::{AttackCategory, AttackType};
pub use record::{ConnectionRecord, Flag, Protocol, Service};
