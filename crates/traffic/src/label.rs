//! The KDD-99 attack taxonomy.
//!
//! Thirty-two concrete attack types plus `normal`, grouped into the four
//! standard attack categories. Types marked *test-only* below never appear
//! in the training mix — the evaluation uses them to measure detection of
//! genuinely unseen attacks, exactly as the KDD "corrected" test set does.

use serde::{Deserialize, Serialize};

use crate::TrafficError;

/// The coarse five-way classification used in every KDD-family evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackCategory {
    /// Legitimate traffic.
    Normal,
    /// Denial of service (floods, resource exhaustion).
    Dos,
    /// Surveillance / scanning.
    Probe,
    /// Remote-to-local: unauthorized access from a remote machine.
    R2l,
    /// User-to-root: privilege escalation.
    U2r,
}

impl AttackCategory {
    /// All categories in canonical order.
    pub const ALL: [AttackCategory; 5] = [
        AttackCategory::Normal,
        AttackCategory::Dos,
        AttackCategory::Probe,
        AttackCategory::R2l,
        AttackCategory::U2r,
    ];

    /// `true` for every category except [`AttackCategory::Normal`].
    pub fn is_attack(&self) -> bool {
        !matches!(self, AttackCategory::Normal)
    }
}

impl std::fmt::Display for AttackCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            AttackCategory::Normal => "normal",
            AttackCategory::Dos => "dos",
            AttackCategory::Probe => "probe",
            AttackCategory::R2l => "r2l",
            AttackCategory::U2r => "u2r",
        };
        f.write_str(name)
    }
}

macro_rules! attack_types {
    ($( $variant:ident => ($name:literal, $cat:ident, $unseen:literal) ),+ $(,)?) => {
        /// A concrete attack type (or `Normal`), using the KDD-99 label
        /// vocabulary.
        ///
        /// The `unseen` flag marks types that occur only in test data —
        /// they model the novel attacks a deployed detector must catch
        /// without ever having trained on them.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum AttackType {
            $( $variant ),+
        }

        impl AttackType {
            /// Every attack type, in declaration order.
            pub const ALL: [AttackType; attack_types!(@count $($variant)+)] = [
                $( AttackType::$variant ),+
            ];

            /// The KDD label string (e.g. `"neptune"`).
            pub fn name(&self) -> &'static str {
                match self {
                    $( AttackType::$variant => $name ),+
                }
            }

            /// The coarse category this type belongs to.
            pub fn category(&self) -> AttackCategory {
                match self {
                    $( AttackType::$variant => AttackCategory::$cat ),+
                }
            }

            /// `true` when the type never appears in training data.
            pub fn is_test_only(&self) -> bool {
                match self {
                    $( AttackType::$variant => $unseen ),+
                }
            }

            /// Parses a KDD label string (a trailing `.` as found in the raw
            /// KDD files is tolerated).
            ///
            /// # Errors
            ///
            /// [`TrafficError::UnknownLabel`] for unrecognized labels.
            pub fn parse(label: &str) -> Result<Self, TrafficError> {
                let label = label.trim().trim_end_matches('.');
                match label {
                    $( $name => Ok(AttackType::$variant), )+
                    other => Err(TrafficError::UnknownLabel(other.to_string())),
                }
            }
        }
    };
    (@count $($x:ident)+) => { 0usize $( + { let _ = stringify!($x); 1 } )+ };
}

attack_types! {
    Normal         => ("normal",          Normal, false),
    // --- DoS (training) ---
    Back           => ("back",            Dos,    false),
    Land           => ("land",            Dos,    false),
    Neptune        => ("neptune",         Dos,    false),
    Pod            => ("pod",             Dos,    false),
    Smurf          => ("smurf",           Dos,    false),
    Teardrop       => ("teardrop",        Dos,    false),
    // --- DoS (test-only) ---
    Apache2        => ("apache2",         Dos,    true),
    Mailbomb       => ("mailbomb",        Dos,    true),
    Processtable   => ("processtable",    Dos,    true),
    Udpstorm       => ("udpstorm",        Dos,    true),
    // --- Probe (training) ---
    Ipsweep        => ("ipsweep",         Probe,  false),
    Nmap           => ("nmap",            Probe,  false),
    Portsweep      => ("portsweep",       Probe,  false),
    Satan          => ("satan",           Probe,  false),
    // --- Probe (test-only) ---
    Mscan          => ("mscan",           Probe,  true),
    Saint          => ("saint",           Probe,  true),
    // --- R2L (training) ---
    FtpWrite       => ("ftp_write",       R2l,    false),
    GuessPasswd    => ("guess_passwd",    R2l,    false),
    Imap           => ("imap",            R2l,    false),
    Multihop       => ("multihop",        R2l,    false),
    Phf            => ("phf",             R2l,    false),
    Spy            => ("spy",             R2l,    false),
    Warezclient    => ("warezclient",     R2l,    false),
    Warezmaster    => ("warezmaster",     R2l,    false),
    // --- R2L (test-only) ---
    Httptunnel     => ("httptunnel",      R2l,    true),
    Snmpguess      => ("snmpguess",       R2l,    true),
    // --- U2R (training) ---
    BufferOverflow => ("buffer_overflow", U2r,    false),
    Loadmodule     => ("loadmodule",      U2r,    false),
    Perl           => ("perl",            U2r,    false),
    Rootkit        => ("rootkit",         U2r,    false),
    // --- U2R (test-only) ---
    Ps             => ("ps",              U2r,    true),
    Xterm          => ("xterm",           U2r,    true),
}

impl AttackType {
    /// All types in a category.
    pub fn in_category(cat: AttackCategory) -> Vec<AttackType> {
        AttackType::ALL
            .iter()
            .copied()
            .filter(|t| t.category() == cat)
            .collect()
    }

    /// All types that may appear in training data.
    pub fn training_types() -> Vec<AttackType> {
        AttackType::ALL
            .iter()
            .copied()
            .filter(|t| !t.is_test_only())
            .collect()
    }

    /// `true` for everything except [`AttackType::Normal`].
    pub fn is_attack(&self) -> bool {
        !matches!(self, AttackType::Normal)
    }
}

impl std::fmt::Display for AttackType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_type() {
        for t in AttackType::ALL {
            assert_eq!(AttackType::parse(t.name()).unwrap(), t);
        }
    }

    #[test]
    fn parse_tolerates_trailing_dot_and_whitespace() {
        assert_eq!(AttackType::parse("smurf.").unwrap(), AttackType::Smurf);
        assert_eq!(AttackType::parse(" normal.\n").unwrap(), AttackType::Normal);
    }

    #[test]
    fn parse_rejects_unknown() {
        assert_eq!(
            AttackType::parse("slowloris").unwrap_err(),
            TrafficError::UnknownLabel("slowloris".into())
        );
    }

    #[test]
    fn category_assignment_spot_checks() {
        assert_eq!(AttackType::Neptune.category(), AttackCategory::Dos);
        assert_eq!(AttackType::Portsweep.category(), AttackCategory::Probe);
        assert_eq!(AttackType::GuessPasswd.category(), AttackCategory::R2l);
        assert_eq!(AttackType::Rootkit.category(), AttackCategory::U2r);
        assert_eq!(AttackType::Normal.category(), AttackCategory::Normal);
    }

    #[test]
    fn normal_is_not_attack() {
        assert!(!AttackType::Normal.is_attack());
        assert!(!AttackCategory::Normal.is_attack());
        assert!(AttackType::Smurf.is_attack());
        assert!(AttackCategory::U2r.is_attack());
    }

    #[test]
    fn test_only_types_are_marked() {
        assert!(AttackType::Apache2.is_test_only());
        assert!(AttackType::Mscan.is_test_only());
        assert!(!AttackType::Neptune.is_test_only());
        assert!(!AttackType::Normal.is_test_only());
    }

    #[test]
    fn training_types_excludes_test_only() {
        let train = AttackType::training_types();
        assert!(train.contains(&AttackType::Smurf));
        assert!(!train.contains(&AttackType::Saint));
        assert!(train.contains(&AttackType::Normal));
        // 33 total, 10 test-only.
        assert_eq!(AttackType::ALL.len(), 33);
        assert_eq!(train.len(), 23);
    }

    #[test]
    fn in_category_partitions_all_types() {
        let mut total = 0;
        for cat in AttackCategory::ALL {
            let types = AttackType::in_category(cat);
            for t in &types {
                assert_eq!(t.category(), cat);
            }
            total += types.len();
        }
        assert_eq!(total, AttackType::ALL.len());
    }

    #[test]
    fn display_matches_kdd_names() {
        assert_eq!(AttackType::BufferOverflow.to_string(), "buffer_overflow");
        assert_eq!(AttackCategory::R2l.to_string(), "r2l");
    }

    #[test]
    fn every_category_has_both_seen_and_unseen_attacks() {
        for cat in [
            AttackCategory::Dos,
            AttackCategory::Probe,
            AttackCategory::R2l,
            AttackCategory::U2r,
        ] {
            let types = AttackType::in_category(cat);
            assert!(
                types.iter().any(|t| t.is_test_only()),
                "{cat} lacks unseen types"
            );
            assert!(
                types.iter().any(|t| !t.is_test_only()),
                "{cat} lacks training types"
            );
        }
    }
}
