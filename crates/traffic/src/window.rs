//! Sliding-window derivation of the KDD traffic features from raw flows.
//!
//! The original KDD features 23–31 are computed over a **2-second** sliding
//! time window, and features 32–41 over the **last 100 connections** to the
//! same destination host. This module reimplements that derivation so that a
//! raw [`FlowEvent`] trace from the simulator (or, in a real deployment,
//! from NetFlow) can be turned into [`ConnectionRecord`]s and fed to the
//! same detectors as the synthetic per-record generator.
//!
//! Content features (10–22) cannot be derived from flow metadata — they
//! require payload inspection — and are left at zero. The detectors that
//! consume windowed records therefore operate on the volumetric/temporal
//! signature only, which is exactly the live-deployment scenario.

use std::collections::VecDeque;

use crate::flows::FlowEvent;
use crate::record::ConnectionRecord;
use crate::Dataset;

/// Length of the time-based window in seconds (KDD uses 2 s).
pub const TIME_WINDOW_SECS: f64 = 2.0;

/// Length of the host-based window in connections (KDD uses 100).
pub const HOST_WINDOW_CONNS: usize = 100;

/// Streaming aggregator that converts flows into connection records.
///
/// Feed it flows in non-decreasing time order; each call returns the fully
/// derived record for that flow.
///
/// # Example
///
/// ```
/// use traffic::flows::{FlowSimConfig, FlowSimulator};
/// use traffic::window::WindowAggregator;
///
/// let mut sim = FlowSimulator::new(FlowSimConfig::default(), 1);
/// let flows = sim.generate();
/// let mut agg = WindowAggregator::new();
/// let records: Vec<_> = flows.iter().map(|f| agg.push(f)).collect();
/// assert_eq!(records.len(), flows.len());
/// ```
#[derive(Debug, Default)]
pub struct WindowAggregator {
    /// Flows within the last [`TIME_WINDOW_SECS`] seconds.
    time_window: VecDeque<FlowEvent>,
    /// The last [`HOST_WINDOW_CONNS`] flows overall (KDD's host window is
    /// over the most recent connections regardless of destination).
    host_window: VecDeque<FlowEvent>,
}

impl WindowAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests the next flow (must be at a time ≥ all previously pushed
    /// flows) and returns its derived connection record.
    pub fn push(&mut self, flow: &FlowEvent) -> ConnectionRecord {
        // Evict expired flows from the 2-second window.
        while let Some(front) = self.time_window.front() {
            if flow.time - front.time > TIME_WINDOW_SECS {
                self.time_window.pop_front();
            } else {
                break;
            }
        }

        let rec = self.derive(flow);

        self.time_window.push_back(flow.clone());
        self.host_window.push_back(flow.clone());
        if self.host_window.len() > HOST_WINDOW_CONNS {
            self.host_window.pop_front();
        }
        rec
    }

    /// Derives the record for `flow` given the current window contents.
    /// The flow itself counts as one connection in every window, matching
    /// the KDD convention that `count >= 1`.
    fn derive(&self, flow: &FlowEvent) -> ConnectionRecord {
        let mut rec = ConnectionRecord {
            duration: flow.duration,
            protocol: flow.protocol,
            service: flow.service,
            flag: flow.flag,
            src_bytes: flow.src_bytes,
            dst_bytes: flow.dst_bytes,
            land: f64::from(
                flow.src_ip == flow.dst_ip && flow.src_port == flow.dst_port && flow.src_port != 0,
            ),
            label: flow.label,
            ..Default::default()
        };

        // --- 2-second window, same destination host ------------------------
        let same_host: Vec<&FlowEvent> = self
            .time_window
            .iter()
            .filter(|f| f.dst_ip == flow.dst_ip)
            .collect();
        let count = same_host.len() + 1; // include this flow
        rec.count = (count as f64).min(511.0);

        let mut serror = u32::from(flow.is_syn_error());
        let mut rerror = u32::from(flow.is_rej_error());
        let mut same_srv = 1u32; // this flow matches its own service
        for f in &same_host {
            serror += u32::from(f.is_syn_error());
            rerror += u32::from(f.is_rej_error());
            same_srv += u32::from(f.service == flow.service);
        }
        let n = count as f64;
        rec.serror_rate = serror as f64 / n;
        rec.rerror_rate = rerror as f64 / n;
        rec.same_srv_rate = same_srv as f64 / n;
        rec.diff_srv_rate = (count as u32 - same_srv) as f64 / n;

        // --- 2-second window, same service ---------------------------------
        let same_srv_flows: Vec<&FlowEvent> = self
            .time_window
            .iter()
            .filter(|f| f.service == flow.service)
            .collect();
        let srv_count = same_srv_flows.len() + 1;
        rec.srv_count = (srv_count as f64).min(511.0);

        let mut srv_serror = u32::from(flow.is_syn_error());
        let mut srv_rerror = u32::from(flow.is_rej_error());
        let mut srv_diff_host = 0u32;
        for f in &same_srv_flows {
            srv_serror += u32::from(f.is_syn_error());
            srv_rerror += u32::from(f.is_rej_error());
            srv_diff_host += u32::from(f.dst_ip != flow.dst_ip);
        }
        let sn = srv_count as f64;
        rec.srv_serror_rate = srv_serror as f64 / sn;
        rec.srv_rerror_rate = srv_rerror as f64 / sn;
        rec.srv_diff_host_rate = srv_diff_host as f64 / sn;

        // --- last-100-connections window, destination host -----------------
        let host_flows: Vec<&FlowEvent> = self
            .host_window
            .iter()
            .filter(|f| f.dst_ip == flow.dst_ip)
            .collect();
        let hcount = host_flows.len() + 1;
        rec.dst_host_count = (hcount as f64).min(255.0);

        let mut h_same_srv = 1u32;
        let mut h_serror = u32::from(flow.is_syn_error());
        let mut h_rerror = u32::from(flow.is_rej_error());
        let mut h_same_port = 1u32;
        for f in &host_flows {
            h_same_srv += u32::from(f.service == flow.service);
            h_serror += u32::from(f.is_syn_error());
            h_rerror += u32::from(f.is_rej_error());
            h_same_port += u32::from(f.src_port == flow.src_port);
        }
        let hn = hcount as f64;
        rec.dst_host_same_srv_rate = h_same_srv as f64 / hn;
        rec.dst_host_diff_srv_rate = (hcount as u32 - h_same_srv) as f64 / hn;
        rec.dst_host_same_src_port_rate = h_same_port as f64 / hn;
        rec.dst_host_serror_rate = h_serror as f64 / hn;
        rec.dst_host_rerror_rate = h_rerror as f64 / hn;

        // --- last-100-connections window, same service ----------------------
        let host_srv_flows: Vec<&FlowEvent> = self
            .host_window
            .iter()
            .filter(|f| f.service == flow.service)
            .collect();
        let hs_count = host_srv_flows.len() + 1;
        rec.dst_host_srv_count = (hs_count as f64).min(255.0);

        let mut hs_diff_host = 0u32;
        let mut hs_serror = u32::from(flow.is_syn_error());
        let mut hs_rerror = u32::from(flow.is_rej_error());
        for f in &host_srv_flows {
            hs_diff_host += u32::from(f.dst_ip != flow.dst_ip);
            hs_serror += u32::from(f.is_syn_error());
            hs_rerror += u32::from(f.is_rej_error());
        }
        let hsn = hs_count as f64;
        rec.dst_host_srv_diff_host_rate = hs_diff_host as f64 / hsn;
        rec.dst_host_srv_serror_rate = hs_serror as f64 / hsn;
        rec.dst_host_srv_rerror_rate = hs_rerror as f64 / hsn;

        rec
    }
}

/// Batch helper: derives records for an entire time-sorted trace.
pub fn derive_dataset(flows: &[FlowEvent]) -> Dataset {
    let mut agg = WindowAggregator::new();
    flows.iter().map(|f| agg.push(f)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::{AttackEpisode, EpisodeKind, FlowSimConfig, FlowSimulator};
    use crate::label::AttackType;
    use crate::record::{Flag, Protocol, Service};

    fn flow(time: f64, dst_ip: u32, service: Service, flag: Flag) -> FlowEvent {
        FlowEvent {
            time,
            src_ip: 1,
            dst_ip,
            src_port: 1234,
            dst_port: 80,
            protocol: Protocol::Tcp,
            service,
            flag,
            duration: 0.0,
            src_bytes: 100.0,
            dst_bytes: 200.0,
            label: AttackType::Normal,
        }
    }

    #[test]
    fn count_includes_self_and_window() {
        let mut agg = WindowAggregator::new();
        let r1 = agg.push(&flow(0.0, 7, Service::Http, Flag::Sf));
        assert_eq!(r1.count, 1.0);
        assert_eq!(r1.srv_count, 1.0);
        let r2 = agg.push(&flow(1.0, 7, Service::Http, Flag::Sf));
        assert_eq!(r2.count, 2.0);
        let r3 = agg.push(&flow(1.5, 8, Service::Http, Flag::Sf));
        // Different host: count resets, but service window sees all three.
        assert_eq!(r3.count, 1.0);
        assert_eq!(r3.srv_count, 3.0);
    }

    #[test]
    fn window_expires_after_two_seconds() {
        let mut agg = WindowAggregator::new();
        agg.push(&flow(0.0, 7, Service::Http, Flag::Sf));
        agg.push(&flow(0.5, 7, Service::Http, Flag::Sf));
        // 3.0 - 0.5 > 2.0, so both earlier flows are gone.
        let r = agg.push(&flow(3.0, 7, Service::Http, Flag::Sf));
        assert_eq!(r.count, 1.0);
    }

    #[test]
    fn serror_rate_reflects_syn_errors() {
        let mut agg = WindowAggregator::new();
        agg.push(&flow(0.0, 7, Service::Http, Flag::S0));
        agg.push(&flow(0.1, 7, Service::Http, Flag::S0));
        let r = agg.push(&flow(0.2, 7, Service::Http, Flag::S0));
        assert_eq!(r.serror_rate, 1.0);
        assert_eq!(r.srv_serror_rate, 1.0);
        let r2 = agg.push(&flow(0.3, 7, Service::Http, Flag::Sf));
        assert!((r2.serror_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn service_dispersal_shows_in_diff_srv_rate() {
        let mut agg = WindowAggregator::new();
        agg.push(&flow(0.0, 7, Service::Http, Flag::Rej));
        agg.push(&flow(0.1, 7, Service::Ftp, Flag::Rej));
        agg.push(&flow(0.2, 7, Service::Telnet, Flag::Rej));
        let r = agg.push(&flow(0.3, 7, Service::Smtp, Flag::Rej));
        assert_eq!(r.count, 4.0);
        assert!((r.diff_srv_rate - 0.75).abs() < 1e-12);
        assert!((r.rerror_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn host_window_is_bounded() {
        let mut agg = WindowAggregator::new();
        // 150 flows to the same host, spaced 0.001 s apart.
        let mut last = ConnectionRecord::default();
        for i in 0..150 {
            last = agg.push(&flow(i as f64 * 0.001, 7, Service::Http, Flag::Sf));
        }
        // Host window caps at 100 previous + self.
        assert!(last.dst_host_count <= 101.0);
        assert!(last.dst_host_count >= 100.0);
    }

    #[test]
    fn land_detection() {
        let mut agg = WindowAggregator::new();
        let mut f = flow(0.0, 1, Service::Http, Flag::S0);
        f.src_ip = 1;
        f.dst_ip = 1;
        f.src_port = 80;
        f.dst_port = 80;
        let r = agg.push(&f);
        assert_eq!(r.land, 1.0);
    }

    #[test]
    fn derived_records_validate() {
        let mut sim = FlowSimulator::new(
            FlowSimConfig {
                duration_secs: 30.0,
                background_rate: 60.0,
                server_count: 8,
                client_count: 32,
                episodes: vec![AttackEpisode {
                    kind: EpisodeKind::SynFlood {
                        target: 0xC0A8_0001,
                    },
                    start: 10.0,
                    duration: 5.0,
                    rate: 400.0,
                }],
            },
            5,
        );
        let flows = sim.generate();
        let ds = derive_dataset(&flows);
        assert_eq!(ds.len(), flows.len());
        for rec in ds.iter() {
            rec.validate().expect("derived record must be valid");
        }
    }

    #[test]
    fn syn_flood_produces_flood_signature_in_derived_features() {
        let mut sim = FlowSimulator::new(
            FlowSimConfig {
                duration_secs: 40.0,
                background_rate: 30.0,
                server_count: 8,
                client_count: 32,
                episodes: vec![AttackEpisode {
                    kind: EpisodeKind::SynFlood {
                        target: 0xC0A8_0001,
                    },
                    start: 10.0,
                    duration: 20.0,
                    rate: 500.0,
                }],
            },
            6,
        );
        let flows = sim.generate();
        let ds = derive_dataset(&flows);
        // Average derived `count` and serror for attack vs normal records.
        let (mut atk_count, mut atk_serror, mut atk_n) = (0.0, 0.0, 0);
        let (mut nrm_count, mut nrm_n) = (0.0, 0);
        for rec in ds.iter() {
            if rec.label == AttackType::Neptune {
                atk_count += rec.count;
                atk_serror += rec.serror_rate;
                atk_n += 1;
            } else {
                nrm_count += rec.count;
                nrm_n += 1;
            }
        }
        let atk_count = atk_count / atk_n as f64;
        let atk_serror = atk_serror / atk_n as f64;
        let nrm_count = nrm_count / nrm_n as f64;
        // Note: background flows to the flooded server also see elevated
        // counts (the victim is a popular server), so the separation is
        // large but not extreme.
        assert!(
            atk_count > 5.0 * nrm_count,
            "attack count {atk_count} vs normal {nrm_count}"
        );
        assert!(atk_count > 400.0, "flood count should saturate the window");
        assert!(atk_serror > 0.9, "attack serror {atk_serror}");
    }
}
