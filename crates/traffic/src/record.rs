//! The 41-feature connection record and its categorical vocabularies.
//!
//! Field order, names and semantics follow the KDD Cup 99 feature set
//! exactly, so the [`crate::csv`] module can read and write the real
//! dataset's files. Features 1–9 are *basic* (derived from the connection
//! itself), 10–22 are *content* features (from payload inspection), 23–31
//! are *time-based* traffic features over a 2-second window, and 32–41 are
//! *host-based* traffic features over the last 100 connections.

use serde::{Deserialize, Serialize};

use crate::label::AttackType;
use crate::TrafficError;

/// Transport protocol of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Protocol {
    #[default]
    Tcp,
    Udp,
    Icmp,
}

impl Protocol {
    /// All protocols in KDD order.
    pub const ALL: [Protocol; 3] = [Protocol::Tcp, Protocol::Udp, Protocol::Icmp];

    /// KDD string form.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Tcp => "tcp",
            Protocol::Udp => "udp",
            Protocol::Icmp => "icmp",
        }
    }

    /// Parses the KDD string form.
    ///
    /// # Errors
    ///
    /// [`TrafficError::UnknownLabel`] for anything else.
    pub fn parse(s: &str) -> Result<Self, TrafficError> {
        match s.trim() {
            "tcp" => Ok(Protocol::Tcp),
            "udp" => Ok(Protocol::Udp),
            "icmp" => Ok(Protocol::Icmp),
            other => Err(TrafficError::UnknownLabel(other.to_string())),
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

macro_rules! services {
    ($( $variant:ident => $name:literal ),+ $(,)?) => {
        /// Application service of a connection (KDD vocabulary subset).
        ///
        /// The real KDD files contain ~70 service names; the 36 most common
        /// are modelled here and everything else parses to
        /// [`Service::Other`] (a documented, slightly lossy mapping that
        /// does not affect the detectors: rare services are exactly what
        /// `other` encodes).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum Service {
            #[default]
            $( $variant ),+
        }

        impl Service {
            /// All modelled services.
            pub const ALL: [Service; services!(@count $($variant)+)] = [
                $( Service::$variant ),+
            ];

            /// KDD string form.
            pub fn name(&self) -> &'static str {
                match self {
                    $( Service::$variant => $name ),+
                }
            }

            /// Parses a KDD service name; unknown names map to
            /// [`Service::Other`].
            pub fn parse(s: &str) -> Self {
                match s.trim() {
                    $( $name => Service::$variant, )+
                    _ => Service::Other,
                }
            }
        }
    };
    (@count $($x:ident)+) => { 0usize $( + { let _ = stringify!($x); 1 } )+ };
}

services! {
    Http      => "http",
    Smtp      => "smtp",
    Ftp       => "ftp",
    FtpData   => "ftp_data",
    Telnet    => "telnet",
    Ssh       => "ssh",
    DomainUdp => "domain_u",
    Domain    => "domain",
    Pop3      => "pop_3",
    Imap4     => "imap4",
    Finger    => "finger",
    EcoI      => "eco_i",
    EcrI      => "ecr_i",
    Private   => "private",
    Auth      => "auth",
    Irc       => "IRC",
    X11       => "X11",
    Time      => "time",
    Whois     => "whois",
    Nntp      => "nntp",
    Uucp      => "uucp",
    NetbiosNs => "netbios_ns",
    Sunrpc    => "sunrpc",
    Gopher    => "gopher",
    Vmnet     => "vmnet",
    CsnetNs   => "csnet_ns",
    Link      => "link",
    Mtp       => "mtp",
    Login     => "login",
    Shell     => "shell",
    Exec      => "exec",
    Printer   => "printer",
    Courier   => "courier",
    Snmp      => "snmp",
    UrpI      => "urp_i",
    Other     => "other",
}

impl std::fmt::Display for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

macro_rules! flags {
    ($( $variant:ident => $name:literal ),+ $(,)?) => {
        /// TCP connection status flag (full 11-value KDD vocabulary).
        ///
        /// `SF` is a normal completed connection; `S0` is a connection
        /// attempt with no reply (the SYN-flood signature); `REJ` is a
        /// rejected attempt (the port-scan signature).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum Flag {
            #[default]
            $( $variant ),+
        }

        impl Flag {
            /// All flags.
            pub const ALL: [Flag; flags!(@count $($variant)+)] = [
                $( Flag::$variant ),+
            ];

            /// KDD string form.
            pub fn name(&self) -> &'static str {
                match self {
                    $( Flag::$variant => $name ),+
                }
            }

            /// Parses the KDD string form.
            ///
            /// # Errors
            ///
            /// [`TrafficError::UnknownLabel`] for anything else.
            pub fn parse(s: &str) -> Result<Self, TrafficError> {
                match s.trim() {
                    $( $name => Ok(Flag::$variant), )+
                    other => Err(TrafficError::UnknownLabel(other.to_string())),
                }
            }
        }
    };
    (@count $($x:ident)+) => { 0usize $( + { let _ = stringify!($x); 1 } )+ };
}

flags! {
    Sf     => "SF",
    S0     => "S0",
    S1     => "S1",
    S2     => "S2",
    S3     => "S3",
    Rej    => "REJ",
    Rsto   => "RSTO",
    Rstr   => "RSTR",
    RstOS0 => "RSTOS0",
    Oth    => "OTH",
    Sh     => "SH",
}

impl std::fmt::Display for Flag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One labelled network connection, in the exact KDD Cup 99 feature layout.
///
/// This is a passive, C-style data record: all fields are public and the
/// invariants (rates in `[0,1]`, counts non-negative) are enforced by the
/// generators and checked by [`ConnectionRecord::validate`] at trust
/// boundaries (CSV ingest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionRecord {
    // --- basic features (1-9) ---
    /// 1: connection duration in seconds.
    pub duration: f64,
    /// 2: transport protocol.
    pub protocol: Protocol,
    /// 3: application service.
    pub service: Service,
    /// 4: connection status flag.
    pub flag: Flag,
    /// 5: bytes from source to destination.
    pub src_bytes: f64,
    /// 6: bytes from destination to source.
    pub dst_bytes: f64,
    /// 7: 1 if connection is from/to the same host/port (land attack).
    pub land: f64,
    /// 8: number of wrong fragments.
    pub wrong_fragment: f64,
    /// 9: number of urgent packets.
    pub urgent: f64,
    // --- content features (10-22) ---
    /// 10: number of "hot" indicators.
    pub hot: f64,
    /// 11: number of failed login attempts.
    pub num_failed_logins: f64,
    /// 12: 1 if successfully logged in.
    pub logged_in: f64,
    /// 13: number of compromised conditions.
    pub num_compromised: f64,
    /// 14: 1 if root shell was obtained.
    pub root_shell: f64,
    /// 15: 1 if `su root` was attempted.
    pub su_attempted: f64,
    /// 16: number of root accesses.
    pub num_root: f64,
    /// 17: number of file-creation operations.
    pub num_file_creations: f64,
    /// 18: number of shell prompts.
    pub num_shells: f64,
    /// 19: number of operations on access-control files.
    pub num_access_files: f64,
    /// 20: number of outbound commands in an ftp session.
    pub num_outbound_cmds: f64,
    /// 21: 1 if the login belongs to the "hot" list.
    pub is_host_login: f64,
    /// 22: 1 if the login is a guest login.
    pub is_guest_login: f64,
    // --- time-based traffic features, 2-second window (23-31) ---
    /// 23: connections to the same host in the past 2 seconds.
    pub count: f64,
    /// 24: connections to the same service in the past 2 seconds.
    pub srv_count: f64,
    /// 25: fraction of `count` connections with SYN errors.
    pub serror_rate: f64,
    /// 26: fraction of `srv_count` connections with SYN errors.
    pub srv_serror_rate: f64,
    /// 27: fraction of `count` connections with REJ errors.
    pub rerror_rate: f64,
    /// 28: fraction of `srv_count` connections with REJ errors.
    pub srv_rerror_rate: f64,
    /// 29: fraction of `count` connections to the same service.
    pub same_srv_rate: f64,
    /// 30: fraction of `count` connections to different services.
    pub diff_srv_rate: f64,
    /// 31: fraction of `srv_count` connections to different hosts.
    pub srv_diff_host_rate: f64,
    // --- host-based traffic features, last-100-connections window (32-41) ---
    /// 32: connections to the same destination host (of last 100).
    pub dst_host_count: f64,
    /// 33: connections to the same service on the destination host.
    pub dst_host_srv_count: f64,
    /// 34: fraction to the same service.
    pub dst_host_same_srv_rate: f64,
    /// 35: fraction to different services.
    pub dst_host_diff_srv_rate: f64,
    /// 36: fraction from the same source port.
    pub dst_host_same_src_port_rate: f64,
    /// 37: fraction to different hosts on the same service.
    pub dst_host_srv_diff_host_rate: f64,
    /// 38: fraction with SYN errors.
    pub dst_host_serror_rate: f64,
    /// 39: fraction with SYN errors, same service.
    pub dst_host_srv_serror_rate: f64,
    /// 40: fraction with REJ errors.
    pub dst_host_rerror_rate: f64,
    /// 41: fraction with REJ errors, same service.
    pub dst_host_srv_rerror_rate: f64,
    /// Ground-truth label.
    pub label: AttackType,
}

impl Default for ConnectionRecord {
    /// An all-zero, `SF`-flagged, `normal`-labelled record — the neutral
    /// starting point the generators mutate.
    fn default() -> Self {
        ConnectionRecord {
            duration: 0.0,
            protocol: Protocol::Tcp,
            service: Service::Http,
            flag: Flag::Sf,
            src_bytes: 0.0,
            dst_bytes: 0.0,
            land: 0.0,
            wrong_fragment: 0.0,
            urgent: 0.0,
            hot: 0.0,
            num_failed_logins: 0.0,
            logged_in: 0.0,
            num_compromised: 0.0,
            root_shell: 0.0,
            su_attempted: 0.0,
            num_root: 0.0,
            num_file_creations: 0.0,
            num_shells: 0.0,
            num_access_files: 0.0,
            num_outbound_cmds: 0.0,
            is_host_login: 0.0,
            is_guest_login: 0.0,
            count: 0.0,
            srv_count: 0.0,
            serror_rate: 0.0,
            srv_serror_rate: 0.0,
            rerror_rate: 0.0,
            srv_rerror_rate: 0.0,
            same_srv_rate: 0.0,
            diff_srv_rate: 0.0,
            srv_diff_host_rate: 0.0,
            dst_host_count: 0.0,
            dst_host_srv_count: 0.0,
            dst_host_same_srv_rate: 0.0,
            dst_host_diff_srv_rate: 0.0,
            dst_host_same_src_port_rate: 0.0,
            dst_host_srv_diff_host_rate: 0.0,
            dst_host_serror_rate: 0.0,
            dst_host_srv_serror_rate: 0.0,
            dst_host_rerror_rate: 0.0,
            dst_host_srv_rerror_rate: 0.0,
            label: AttackType::Normal,
        }
    }
}

/// Names of the 38 continuous features, in the order produced by
/// [`ConnectionRecord::continuous_features`].
pub const CONTINUOUS_FEATURE_NAMES: [&str; 38] = [
    "duration",
    "src_bytes",
    "dst_bytes",
    "land",
    "wrong_fragment",
    "urgent",
    "hot",
    "num_failed_logins",
    "logged_in",
    "num_compromised",
    "root_shell",
    "su_attempted",
    "num_root",
    "num_file_creations",
    "num_shells",
    "num_access_files",
    "num_outbound_cmds",
    "is_host_login",
    "is_guest_login",
    "count",
    "srv_count",
    "serror_rate",
    "srv_serror_rate",
    "rerror_rate",
    "srv_rerror_rate",
    "same_srv_rate",
    "diff_srv_rate",
    "srv_diff_host_rate",
    "dst_host_count",
    "dst_host_srv_count",
    "dst_host_same_srv_rate",
    "dst_host_diff_srv_rate",
    "dst_host_same_src_port_rate",
    "dst_host_srv_diff_host_rate",
    "dst_host_serror_rate",
    "dst_host_srv_serror_rate",
    "dst_host_rerror_rate",
    "dst_host_srv_rerror_rate",
];

impl ConnectionRecord {
    /// Total number of KDD features (38 continuous + 3 categorical).
    pub const FEATURE_COUNT: usize = 41;

    /// Number of continuous features.
    pub const CONTINUOUS_COUNT: usize = 38;

    /// The 38 continuous features in [`CONTINUOUS_FEATURE_NAMES`] order.
    ///
    /// The three categorical features (protocol, service, flag) are
    /// intentionally excluded — the `featurize` crate one-hot encodes them.
    pub fn continuous_features(&self) -> Vec<f64> {
        let mut out = vec![0.0; Self::CONTINUOUS_COUNT];
        self.write_continuous_features(&mut out);
        out
    }

    /// Writes the 38 continuous features into a caller-owned slice — the
    /// allocation-free form of [`ConnectionRecord::continuous_features`]
    /// used by batched feature transforms that fill one matrix row per
    /// record.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != Self::CONTINUOUS_COUNT`.
    pub fn write_continuous_features(&self, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            Self::CONTINUOUS_COUNT,
            "continuous feature slice has the wrong width"
        );
        let features = [
            self.duration,
            self.src_bytes,
            self.dst_bytes,
            self.land,
            self.wrong_fragment,
            self.urgent,
            self.hot,
            self.num_failed_logins,
            self.logged_in,
            self.num_compromised,
            self.root_shell,
            self.su_attempted,
            self.num_root,
            self.num_file_creations,
            self.num_shells,
            self.num_access_files,
            self.num_outbound_cmds,
            self.is_host_login,
            self.is_guest_login,
            self.count,
            self.srv_count,
            self.serror_rate,
            self.srv_serror_rate,
            self.rerror_rate,
            self.srv_rerror_rate,
            self.same_srv_rate,
            self.diff_srv_rate,
            self.srv_diff_host_rate,
            self.dst_host_count,
            self.dst_host_srv_count,
            self.dst_host_same_srv_rate,
            self.dst_host_diff_srv_rate,
            self.dst_host_same_src_port_rate,
            self.dst_host_srv_diff_host_rate,
            self.dst_host_serror_rate,
            self.dst_host_srv_serror_rate,
            self.dst_host_rerror_rate,
            self.dst_host_srv_rerror_rate,
        ];
        out.copy_from_slice(&features);
    }

    /// Checks the structural invariants: all values finite and
    /// non-negative, every `*_rate` field within `[0, 1]`, binary
    /// indicators in `{0, 1}`.
    ///
    /// Used at trust boundaries (CSV ingest); generator output is checked
    /// in tests.
    ///
    /// # Errors
    ///
    /// [`TrafficError::FieldParse`] naming the first offending field
    /// (reported with `line: 0` since no file context exists here).
    pub fn validate(&self) -> Result<(), TrafficError> {
        let bad = |column: &'static str, value: f64| TrafficError::FieldParse {
            line: 0,
            column,
            value: value.to_string(),
        };
        let features = self.continuous_features();
        for (name, value) in CONTINUOUS_FEATURE_NAMES.iter().zip(&features) {
            if !value.is_finite() || *value < 0.0 {
                return Err(bad(name, *value));
            }
        }
        let rates = [
            ("serror_rate", self.serror_rate),
            ("srv_serror_rate", self.srv_serror_rate),
            ("rerror_rate", self.rerror_rate),
            ("srv_rerror_rate", self.srv_rerror_rate),
            ("same_srv_rate", self.same_srv_rate),
            ("diff_srv_rate", self.diff_srv_rate),
            ("srv_diff_host_rate", self.srv_diff_host_rate),
            ("dst_host_same_srv_rate", self.dst_host_same_srv_rate),
            ("dst_host_diff_srv_rate", self.dst_host_diff_srv_rate),
            (
                "dst_host_same_src_port_rate",
                self.dst_host_same_src_port_rate,
            ),
            (
                "dst_host_srv_diff_host_rate",
                self.dst_host_srv_diff_host_rate,
            ),
            ("dst_host_serror_rate", self.dst_host_serror_rate),
            ("dst_host_srv_serror_rate", self.dst_host_srv_serror_rate),
            ("dst_host_rerror_rate", self.dst_host_rerror_rate),
            ("dst_host_srv_rerror_rate", self.dst_host_srv_rerror_rate),
        ];
        for (name, value) in rates {
            if !(0.0..=1.0).contains(&value) {
                return Err(bad(name, value));
            }
        }
        let binaries = [
            ("land", self.land),
            ("logged_in", self.logged_in),
            ("root_shell", self.root_shell),
            ("is_host_login", self.is_host_login),
            ("is_guest_login", self.is_guest_login),
        ];
        for (name, value) in binaries {
            if value != 0.0 && value != 1.0 {
                return Err(bad(name, value));
            }
        }
        Ok(())
    }

    /// Shorthand for `self.label.category()`.
    pub fn category(&self) -> crate::label::AttackCategory {
        self.label.category()
    }

    /// Shorthand for `self.label.is_attack()`.
    pub fn is_attack(&self) -> bool {
        self.label.is_attack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::AttackCategory;

    #[test]
    fn protocol_roundtrip() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::parse(p.name()).unwrap(), p);
        }
        assert!(Protocol::parse("sctp").is_err());
    }

    #[test]
    fn service_roundtrip_and_fallback() {
        for s in Service::ALL {
            assert_eq!(Service::parse(s.name()), s);
        }
        assert_eq!(Service::parse("tftp_u"), Service::Other);
        assert_eq!(Service::ALL.len(), 36);
    }

    #[test]
    fn flag_roundtrip() {
        for f in Flag::ALL {
            assert_eq!(Flag::parse(f.name()).unwrap(), f);
        }
        assert!(Flag::parse("XX").is_err());
        assert_eq!(Flag::ALL.len(), 11);
    }

    #[test]
    fn default_record_is_valid_normal() {
        let r = ConnectionRecord::default();
        assert!(r.validate().is_ok());
        assert_eq!(r.label, AttackType::Normal);
        assert_eq!(r.category(), AttackCategory::Normal);
        assert!(!r.is_attack());
    }

    #[test]
    fn continuous_features_match_names() {
        let r = ConnectionRecord {
            duration: 1.0,
            src_bytes: 2.0,
            dst_host_srv_rerror_rate: 0.5,
            ..Default::default()
        };
        let f = r.continuous_features();
        assert_eq!(f.len(), ConnectionRecord::CONTINUOUS_COUNT);
        assert_eq!(f.len(), CONTINUOUS_FEATURE_NAMES.len());
        assert_eq!(f[0], 1.0); // duration
        assert_eq!(f[1], 2.0); // src_bytes
        assert_eq!(f[37], 0.5); // dst_host_srv_rerror_rate
    }

    #[test]
    fn validate_rejects_negative_and_nonfinite() {
        let mut r = ConnectionRecord {
            src_bytes: -1.0,
            ..Default::default()
        };
        assert!(r.validate().is_err());
        r.src_bytes = f64::NAN;
        assert!(r.validate().is_err());
        r.src_bytes = f64::INFINITY;
        assert!(r.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_rate() {
        let r = ConnectionRecord {
            serror_rate: 1.5,
            ..Default::default()
        };
        let err = r.validate().unwrap_err();
        assert!(matches!(
            err,
            TrafficError::FieldParse {
                column: "serror_rate",
                ..
            }
        ));
    }

    #[test]
    fn validate_rejects_non_binary_indicator() {
        let r = ConnectionRecord {
            logged_in: 0.5,
            ..Default::default()
        };
        assert!(matches!(
            r.validate().unwrap_err(),
            TrafficError::FieldParse {
                column: "logged_in",
                ..
            }
        ));
    }

    #[test]
    fn write_continuous_features_matches_the_allocating_form() {
        let r = ConnectionRecord {
            duration: 3.0,
            srv_count: 17.0,
            dst_host_srv_rerror_rate: 0.25,
            ..Default::default()
        };
        let mut buf = [f64::NAN; ConnectionRecord::CONTINUOUS_COUNT];
        r.write_continuous_features(&mut buf);
        assert_eq!(buf.to_vec(), r.continuous_features());
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn write_continuous_features_rejects_wrong_width() {
        ConnectionRecord::default().write_continuous_features(&mut [0.0; 3]);
    }

    #[test]
    fn feature_count_constants_are_consistent() {
        assert_eq!(
            ConnectionRecord::FEATURE_COUNT,
            ConnectionRecord::CONTINUOUS_COUNT + 3
        );
    }

    #[test]
    fn serde_roundtrip() {
        let r = ConnectionRecord {
            protocol: Protocol::Icmp,
            service: Service::EcrI,
            label: AttackType::Smurf,
            src_bytes: 1032.0,
            ..Default::default()
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: ConnectionRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
