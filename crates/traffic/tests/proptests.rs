//! Property-based tests for the traffic substrate.

use proptest::prelude::*;
use traffic::csv;
use traffic::synth::{profiles, MixSpec, TrafficGenerator};
use traffic::window::WindowAggregator;
use traffic::{AttackType, Dataset};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every record any profile generates under any seed is structurally
    /// valid (rates in range, counts non-negative, binaries in {0,1}).
    #[test]
    fn all_profiles_generate_valid_records(seed in 0u64..5_000, type_idx in 0usize..33) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ty = AttackType::ALL[type_idx];
        let rec = profiles::sample(ty, &mut rng);
        prop_assert_eq!(rec.label, ty);
        prop_assert!(rec.validate().is_ok(), "{} invalid: {:?}", ty, rec.validate());
    }

    /// Generated records survive the CSV round-trip with identical labels
    /// and categorical fields, and numeric fields within format precision.
    #[test]
    fn csv_roundtrip_is_faithful(seed in 0u64..2_000) {
        let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), seed).unwrap();
        let rec = gen.sample();
        let line = csv::to_line(&rec);
        let parsed = csv::parse_line(&line, 1).unwrap();
        prop_assert_eq!(parsed.label, rec.label);
        prop_assert_eq!(parsed.protocol, rec.protocol);
        prop_assert_eq!(parsed.service, rec.service);
        prop_assert_eq!(parsed.flag, rec.flag);
        prop_assert_eq!(parsed.src_bytes, rec.src_bytes.round());
        prop_assert!((parsed.serror_rate - rec.serror_rate).abs() <= 0.005 + 1e-12);
        prop_assert!((parsed.dst_host_same_srv_rate - rec.dst_host_same_srv_rate).abs() <= 0.005 + 1e-12);
    }

    /// Splits partition the dataset: sizes add up and the label multiset
    /// is preserved.
    #[test]
    fn splits_partition_records(n in 10usize..200, frac in 0.1f64..0.9, seed in 0u64..100) {
        let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), seed).unwrap();
        let ds = gen.generate(n);
        let (a, b) = ds.split_at_fraction(frac, seed).unwrap();
        prop_assert_eq!(a.len() + b.len(), n);
        let mut merged = a.clone();
        merged.merge(b);
        prop_assert_eq!(merged.counts_by_type(), ds.counts_by_type());
    }

    /// Stratified splits also partition and roughly respect the fraction
    /// for populous classes.
    #[test]
    fn stratified_splits_partition(n in 50usize..300, seed in 0u64..100) {
        let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), seed).unwrap();
        let ds = gen.generate(n);
        let (a, b) = ds.stratified_split(0.5, seed).unwrap();
        prop_assert_eq!(a.len() + b.len(), n);
        let mut merged = a.clone();
        merged.merge(b);
        prop_assert_eq!(merged.counts_by_type(), ds.counts_by_type());
    }

    /// The window aggregator produces valid records for any flow ordering
    /// produced by the simulator, and `count`/`srv_count` never exceed the
    /// KDD caps.
    #[test]
    fn window_aggregation_respects_caps(seed in 0u64..50) {
        use traffic::flows::{FlowSimConfig, FlowSimulator};
        let mut sim = FlowSimulator::new(
            FlowSimConfig {
                duration_secs: 10.0,
                background_rate: 100.0,
                server_count: 4, // few servers → busy windows
                client_count: 16,
                episodes: vec![],
            },
            seed,
        );
        let flows = sim.generate();
        let mut agg = WindowAggregator::new();
        for flow in &flows {
            let rec = agg.push(flow);
            prop_assert!(rec.validate().is_ok());
            prop_assert!(rec.count >= 1.0 && rec.count <= 511.0);
            prop_assert!(rec.srv_count >= 1.0 && rec.srv_count <= 511.0);
            prop_assert!(rec.dst_host_count >= 1.0 && rec.dst_host_count <= 255.0);
        }
    }

    /// Generator determinism: same mix + seed ⇒ identical datasets; and a
    /// dataset is never empty when n > 0.
    #[test]
    fn generator_determinism(n in 1usize..64, seed in 0u64..500) {
        let mut a = TrafficGenerator::new(MixSpec::kdd_test(), seed).unwrap();
        let mut b = TrafficGenerator::new(MixSpec::kdd_test(), seed).unwrap();
        let da: Dataset = a.generate(n);
        let db: Dataset = b.generate(n);
        prop_assert_eq!(da.records(), db.records());
        prop_assert_eq!(da.len(), n);
    }

    /// Attack-type parsing accepts every canonical name (with and without
    /// the trailing dot) and rejects corrupted ones.
    #[test]
    fn label_parse_total_on_vocabulary(type_idx in 0usize..33, dot in proptest::bool::ANY) {
        let ty = AttackType::ALL[type_idx];
        let name = if dot { format!("{}.", ty.name()) } else { ty.name().to_string() };
        prop_assert_eq!(AttackType::parse(&name).unwrap(), ty);
        let corrupted = format!("{}zz", ty.name());
        prop_assert!(AttackType::parse(&corrupted).is_err());
    }
}
