//! The growing grid: a SOM that inserts rows/columns where it quantizes
//! worst.
//!
//! This is the breadth half of the GHSOM. Growth proceeds in rounds:
//! train λ epochs → find the *error unit* (largest accumulated quantization
//! error) → find its most dissimilar lattice neighbor in feature space →
//! insert a full row or column of interpolated units between them → repeat,
//! until the map-level stopping criterion (owned by the caller) is met.

use mathkit::{distance, vector, Matrix, Metric};
use som::map::{Som, TrainParams};
use som::topology::GridTopology;

use crate::{GhsomConfig, GhsomError};

/// Where a growth round inserted new units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insertion {
    /// A full row was inserted at this row index.
    Row(usize),
    /// A full column was inserted at this column index.
    Column(usize),
}

/// A SOM under breadth growth.
///
/// Wraps a [`Som`] plus the statistics growth decisions need. The wrapped
/// map is exposed read-only; all mutation goes through the growth API so
/// the grid invariants (rectangularity, interpolated insertions) hold.
#[derive(Debug, Clone)]
pub struct GrowingGrid {
    som: Som,
    /// Per-unit summed quantization error from the latest `update_stats`.
    unit_qe: Vec<f64>,
    /// Per-unit hit counts from the latest `update_stats`.
    unit_hits: Vec<usize>,
}

impl GrowingGrid {
    /// Starts a grid of the configured initial size, with units drawn from
    /// the training data.
    ///
    /// # Errors
    ///
    /// Construction errors from the underlying [`Som`].
    pub fn new(config: &GhsomConfig, data: &Matrix, seed: u64) -> Result<Self, GhsomError> {
        let som = Som::from_data_sample(config.initial_rows, config.initial_cols, data, seed)?;
        let units = som.len();
        Ok(GrowingGrid {
            som,
            unit_qe: vec![0.0; units],
            unit_hits: vec![0; units],
        })
    }

    /// Read access to the wrapped map.
    pub fn som(&self) -> &Som {
        &self.som
    }

    /// Consumes the grid, returning the trained map.
    pub fn into_som(self) -> Som {
        self.som
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.som.len()
    }

    /// `false` always (grids cannot be empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Trains the wrapped map for `epochs` and refreshes the per-unit
    /// quantization statistics.
    ///
    /// # Errors
    ///
    /// Training errors from [`Som::train_online`].
    pub fn train(
        &mut self,
        data: &Matrix,
        config: &GhsomConfig,
        epochs: usize,
        seed: u64,
    ) -> Result<(), GhsomError> {
        let params = TrainParams {
            epochs,
            learning_rate: config.learning_rate,
            radius: None,
            neighborhood: config.neighborhood,
            shuffle_seed: seed,
        };
        match config.training {
            crate::config::TrainingMode::Online => self.som.train_online(data, &params)?,
            crate::config::TrainingMode::Batch => self.som.train_batch(data, &params)?,
        };
        self.update_stats(data)?;
        Ok(())
    }

    /// Recomputes per-unit `qe` and hit counts on `data`.
    ///
    /// # Errors
    ///
    /// Shape errors from [`Som::unit_quantization`].
    pub fn update_stats(&mut self, data: &Matrix) -> Result<(), GhsomError> {
        let (qe, hits) = self.som.unit_quantization(data)?;
        self.unit_qe = qe;
        self.unit_hits = hits;
        Ok(())
    }

    /// Per-unit summed quantization errors from the latest statistics pass.
    pub fn unit_qe(&self) -> &[f64] {
        &self.unit_qe
    }

    /// Per-unit hit counts from the latest statistics pass.
    pub fn unit_hits(&self) -> &[usize] {
        &self.unit_hits
    }

    /// Mean quantization error of the map: the average of the *unit mean
    /// errors* over units that received data — the `MQE_m` of the GHSOM
    /// papers.
    pub fn mean_unit_mqe(&self) -> f64 {
        let mut sum = 0.0;
        let mut live = 0usize;
        for (&qe, &hits) in self.unit_qe.iter().zip(&self.unit_hits) {
            if hits > 0 {
                sum += qe / hits as f64;
                live += 1;
            }
        }
        if live == 0 {
            0.0
        } else {
            sum / live as f64
        }
    }

    /// The error unit: index of the unit with the largest summed
    /// quantization error.
    pub fn error_unit(&self) -> usize {
        vector::argmax(&self.unit_qe).unwrap_or(0)
    }

    /// The lattice neighbor of `unit` whose weight vector is farthest in
    /// feature space — the insertion partner.
    pub fn most_dissimilar_neighbor(&self, unit: usize) -> usize {
        let w = self.som.unit_weight(unit);
        self.som
            .topology()
            .neighbors(unit)
            .into_iter()
            .max_by(|&a, &b| {
                let da = distance::euclidean(w, self.som.unit_weight(a));
                let db = distance::euclidean(w, self.som.unit_weight(b));
                da.partial_cmp(&db).expect("finite weights")
            })
            .expect("every unit has at least one neighbor")
    }

    /// Performs one growth step: inserts a row or column between the error
    /// unit and its most dissimilar neighbor, with new weights interpolated
    /// from the flanking units. Returns where the insertion happened.
    ///
    /// # Errors
    ///
    /// Reconstruction errors from the underlying matrix/topology builders
    /// (cannot occur for well-formed grids).
    pub fn grow_once(&mut self) -> Result<Insertion, GhsomError> {
        let e = self.error_unit();
        let d = self.most_dissimilar_neighbor(e);
        let topo = self.som.topology();
        let (er, ec) = topo.coords(e);
        let (dr, dc) = topo.coords(d);
        let insertion = if er != dr {
            // Vertical neighbors: insert a row between them.
            Insertion::Row(er.max(dr))
        } else {
            // Horizontal neighbors: insert a column between them.
            Insertion::Column(ec.max(dc))
        };
        self.apply_insertion(insertion)?;
        Ok(insertion)
    }

    /// Rebuilds the map with a row/column inserted at the given position.
    fn apply_insertion(&mut self, insertion: Insertion) -> Result<(), GhsomError> {
        let topo = *self.som.topology();
        let (rows, cols) = (topo.rows(), topo.cols());
        let dim = self.som.dim();
        let (new_rows, new_cols) = match insertion {
            Insertion::Row(_) => (rows + 1, cols),
            Insertion::Column(_) => (rows, cols + 1),
        };
        let mut weights = Vec::with_capacity(new_rows * new_cols);
        for r in 0..new_rows {
            for c in 0..new_cols {
                let w: Vec<f64> = match insertion {
                    Insertion::Row(at) => {
                        if r < at {
                            self.som.unit_weight(topo.index(r, c)).to_vec()
                        } else if r == at {
                            // Interpolate between the flanking rows.
                            vector::lerp(
                                self.som.unit_weight(topo.index(at - 1, c)),
                                self.som.unit_weight(topo.index(at, c)),
                                0.5,
                            )
                        } else {
                            self.som.unit_weight(topo.index(r - 1, c)).to_vec()
                        }
                    }
                    Insertion::Column(at) => {
                        if c < at {
                            self.som.unit_weight(topo.index(r, c)).to_vec()
                        } else if c == at {
                            vector::lerp(
                                self.som.unit_weight(topo.index(r, at - 1)),
                                self.som.unit_weight(topo.index(r, at)),
                                0.5,
                            )
                        } else {
                            self.som.unit_weight(topo.index(r, c - 1)).to_vec()
                        }
                    }
                };
                debug_assert_eq!(w.len(), dim);
                weights.extend(w);
            }
        }
        let new_topo = GridTopology::rectangular(new_rows, new_cols)?;
        let weights = Matrix::from_flat(new_rows * new_cols, dim, weights)?;
        self.som = Som::from_parts(new_topo, weights, Metric::Euclidean)?;
        self.unit_qe = vec![0.0; self.som.len()];
        self.unit_hits = vec![0; self.som.len()];
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Elongated data: three clusters along a line, which a 2×2 map cannot
    /// quantize well — growth is forced.
    fn line_clusters() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..120 {
            let c = (i % 3) as f64; // 0, 1, 2
            let j = (i % 20) as f64 * 0.002;
            rows.push(vec![c * 2.0 + j, j]);
        }
        Matrix::from_rows(rows).unwrap()
    }

    fn grid() -> (GrowingGrid, Matrix) {
        let config = GhsomConfig::default();
        let data = line_clusters();
        let mut g = GrowingGrid::new(&config, &data, 7).unwrap();
        g.train(&data, &config, 5, 1).unwrap();
        (g, data)
    }

    #[test]
    fn starts_at_initial_size() {
        let (g, _) = grid();
        assert_eq!(g.len(), 4);
        assert_eq!(g.som().topology().rows(), 2);
        assert_eq!(g.som().topology().cols(), 2);
    }

    #[test]
    fn stats_partition_data() {
        let (g, data) = grid();
        assert_eq!(g.unit_hits().iter().sum::<usize>(), data.rows());
        assert!(g.unit_qe().iter().all(|&q| q >= 0.0));
        assert!(g.mean_unit_mqe() > 0.0);
    }

    #[test]
    fn error_unit_has_max_qe() {
        let (g, _) = grid();
        let e = g.error_unit();
        for (i, &q) in g.unit_qe().iter().enumerate() {
            assert!(q <= g.unit_qe()[e], "unit {i} exceeds error unit");
        }
    }

    #[test]
    fn dissimilar_neighbor_is_a_lattice_neighbor() {
        let (g, _) = grid();
        let e = g.error_unit();
        let d = g.most_dissimilar_neighbor(e);
        assert!(g.som().topology().neighbors(e).contains(&d));
    }

    #[test]
    fn grow_once_adds_a_full_row_or_column() {
        let (mut g, _) = grid();
        let before = (g.som().topology().rows(), g.som().topology().cols());
        let ins = g.grow_once().unwrap();
        let after = (g.som().topology().rows(), g.som().topology().cols());
        match ins {
            Insertion::Row(at) => {
                assert_eq!(after, (before.0 + 1, before.1));
                assert!(at >= 1 && at <= before.0);
            }
            Insertion::Column(at) => {
                assert_eq!(after, (before.0, before.1 + 1));
                assert!(at >= 1 && at <= before.1);
            }
        }
        assert_eq!(g.len(), after.0 * after.1);
    }

    #[test]
    fn inserted_units_are_interpolations() {
        let (mut g, _) = grid();
        // Snapshot pre-growth weights.
        let before = g.som().clone();
        let ins = g.grow_once().unwrap();
        let topo_b = before.topology();
        match ins {
            Insertion::Row(at) => {
                for c in 0..topo_b.cols() {
                    let expect = vector::lerp(
                        before.unit_weight(topo_b.index(at - 1, c)),
                        before.unit_weight(topo_b.index(at, c)),
                        0.5,
                    );
                    let got = g.som().unit_weight(g.som().topology().index(at, c));
                    assert_eq!(got, expect.as_slice());
                }
            }
            Insertion::Column(at) => {
                for r in 0..topo_b.rows() {
                    let expect = vector::lerp(
                        before.unit_weight(topo_b.index(r, at - 1)),
                        before.unit_weight(topo_b.index(r, at)),
                        0.5,
                    );
                    let got = g.som().unit_weight(g.som().topology().index(r, at));
                    assert_eq!(got, expect.as_slice());
                }
            }
        }
    }

    #[test]
    fn old_units_survive_insertion() {
        let (mut g, _) = grid();
        let before = g.som().clone();
        let ins = g.grow_once().unwrap();
        // Every pre-growth weight vector must still exist in the new map.
        for u in 0..before.len() {
            let w = before.unit_weight(u);
            let found = (0..g.len()).any(|v| g.som().unit_weight(v) == w);
            assert!(found, "unit {u} lost after {ins:?}");
        }
    }

    #[test]
    fn growth_reduces_mqe_over_rounds() {
        let config = GhsomConfig::default();
        let data = line_clusters();
        let mut g = GrowingGrid::new(&config, &data, 3).unwrap();
        g.train(&data, &config, 5, 0).unwrap();
        let mqe_start = g.mean_unit_mqe();
        for round in 1..=4 {
            g.grow_once().unwrap();
            g.train(&data, &config, 5, round).unwrap();
        }
        let mqe_end = g.mean_unit_mqe();
        assert!(
            mqe_end < mqe_start,
            "growth did not help: {mqe_start} -> {mqe_end}"
        );
    }

    #[test]
    fn repeated_growth_keeps_grid_rectangular() {
        let config = GhsomConfig::default();
        let data = line_clusters();
        let mut g = GrowingGrid::new(&config, &data, 5).unwrap();
        g.train(&data, &config, 3, 0).unwrap();
        for round in 0..6 {
            g.grow_once().unwrap();
            g.train(&data, &config, 3, round).unwrap();
            let t = g.som().topology();
            assert_eq!(g.len(), t.rows() * t.cols());
            assert_eq!(g.unit_hits().iter().sum::<usize>(), data.rows());
        }
    }
}
