//! Error type for GHSOM training and projection.

use std::fmt;

/// Errors produced by GHSOM operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GhsomError {
    /// A configuration value was out of its valid domain.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Violated constraint.
        reason: &'static str,
    },
    /// Training data was empty.
    EmptyInput,
    /// Sample width differs from the model.
    DimensionMismatch {
        /// Model dimensionality.
        expected: usize,
        /// Sample dimensionality.
        found: usize,
    },
    /// Input contained NaN or infinite values.
    NonFinite,
    /// An underlying SOM operation failed (propagated unchanged).
    Som(som::SomError),
}

impl fmt::Display for GhsomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GhsomError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            GhsomError::EmptyInput => write!(f, "training requires a non-empty data set"),
            GhsomError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "dimension mismatch: model is {expected}-d, sample is {found}-d"
                )
            }
            GhsomError::NonFinite => write!(f, "input contains NaN or infinite values"),
            GhsomError::Som(e) => write!(f, "som error: {e}"),
        }
    }
}

impl std::error::Error for GhsomError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GhsomError::Som(e) => Some(e),
            _ => None,
        }
    }
}

impl From<som::SomError> for GhsomError {
    fn from(e: som::SomError) -> Self {
        match e {
            som::SomError::DimensionMismatch { expected, found } => {
                GhsomError::DimensionMismatch { expected, found }
            }
            som::SomError::EmptyInput => GhsomError::EmptyInput,
            som::SomError::NonFinite => GhsomError::NonFinite,
            other => GhsomError::Som(other),
        }
    }
}

impl From<mathkit::MathError> for GhsomError {
    fn from(e: mathkit::MathError) -> Self {
        match e {
            mathkit::MathError::DimensionMismatch { expected, found } => {
                GhsomError::DimensionMismatch { expected, found }
            }
            mathkit::MathError::EmptyInput => GhsomError::EmptyInput,
            mathkit::MathError::NonFinite => GhsomError::NonFinite,
            mathkit::MathError::InvalidParameter { name, reason } => {
                GhsomError::InvalidConfig { name, reason }
            }
            mathkit::MathError::NoConvergence { .. } => GhsomError::InvalidConfig {
                name: "iterations",
                reason: "underlying numerical routine failed to converge",
            },
            // MathError is #[non_exhaustive]; map future variants to the
            // least-specific bucket rather than silently renaming them.
            _ => GhsomError::InvalidConfig {
                name: "input",
                reason: "underlying numerical routine failed",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GhsomError::InvalidConfig {
                name: "tau1",
                reason: "must lie in (0, 1)"
            }
            .to_string(),
            "invalid configuration `tau1`: must lie in (0, 1)"
        );
        assert_eq!(
            GhsomError::EmptyInput.to_string(),
            "training requires a non-empty data set"
        );
    }

    #[test]
    fn conversions_preserve_meaning() {
        let e: GhsomError = som::SomError::EmptyInput.into();
        assert_eq!(e, GhsomError::EmptyInput);
        let e: GhsomError = mathkit::MathError::NonFinite.into();
        assert_eq!(e, GhsomError::NonFinite);
        let e: GhsomError = som::SomError::InvalidParameter {
            name: "x",
            reason: "y",
        }
        .into();
        assert!(matches!(e, GhsomError::Som(_)));
    }

    #[test]
    fn source_chains_for_som_errors() {
        use std::error::Error;
        let e = GhsomError::Som(som::SomError::EmptyInput);
        assert!(e.source().is_some());
        assert!(GhsomError::EmptyInput.source().is_none());
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<GhsomError>();
    }
}
