//! Growing hierarchical self-organizing map (GHSOM) — the primary
//! contribution of *"Network traffic anomaly detection based on growing
//! hierarchical SOM"* (DSN 2013).
//!
//! A GHSOM addresses the two fixed choices a flat SOM forces on its user —
//! map size and a single level of granularity — by growing in two
//! directions during training (Dittenbach/Merkl/Rauber formulation):
//!
//! * **Breadth (τ₁)** — each map starts 2×2 and inserts whole rows/columns
//!   between the *error unit* (largest accumulated quantization error) and
//!   its most dissimilar lattice neighbor until the map's mean quantization
//!   error falls below `τ₁ ·` (the parent unit's error).
//! * **Depth (τ₂)** — any unit whose mean quantization error still exceeds
//!   `τ₂ · mqe₀` (the error of the layer-0 virtual unit, i.e. of the global
//!   mean) spawns a child map trained on exactly the records mapped to it.
//!
//! Small τ₁ ⇒ wider maps; small τ₂ ⇒ deeper hierarchies. Traffic records
//! project root→leaf through best-matching units; the leaf quantization
//! error and the leaf unit's identity drive the anomaly detectors in the
//! `detect` crate.
//!
//! # Example
//!
//! ```
//! use ghsom_core::{GhsomConfig, GhsomModel};
//! use mathkit::Matrix;
//!
//! # fn main() -> Result<(), ghsom_core::GhsomError> {
//! // Three separated clusters.
//! let mut rows = Vec::new();
//! for i in 0..90 {
//!     let j = (i % 30) as f64 * 0.003;
//!     rows.push(match i / 30 {
//!         0 => vec![j, 0.0],
//!         1 => vec![1.0 + j, 1.0],
//!         _ => vec![j, 2.0 - j],
//!     });
//! }
//! let data = Matrix::from_rows(rows)?;
//! let config = GhsomConfig::default().with_tau1(0.5).with_tau2(0.1).with_seed(9);
//! let model = GhsomModel::train(&config, &data)?;
//! assert!(model.total_units() >= 4);
//! let projection = model.project(data.row(0))?;
//! assert!(projection.leaf_qe() < 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod growing;
pub mod model;
pub mod scorer;
pub mod stats;

pub use config::{GhsomConfig, TrainingMode};
pub use error::GhsomError;
pub use growing::GrowingGrid;
pub use model::{GhsomModel, MapNode, PathStep, Projection};
pub use scorer::Scorer;
pub use stats::{GrowthEvent, GrowthLog, TopologyStats};
