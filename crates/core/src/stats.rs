//! Growth bookkeeping: the event log and topology summaries that the
//! paper-style topology tables (Table 2) and growth figures (Figure 2) are
//! generated from.

use serde::{Deserialize, Serialize};

/// One structural event during GHSOM training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrowthEvent {
    /// A new map finished its breadth growth and joined the hierarchy.
    MapCreated {
        /// Node index of the new map.
        node: usize,
        /// Depth of the map (layer-1 is depth 1).
        depth: usize,
        /// Final grid rows.
        rows: usize,
        /// Final grid columns.
        cols: usize,
        /// Number of training records the map was grown on.
        samples: usize,
    },
    /// A row was inserted during breadth growth.
    RowInserted {
        /// Node index (assigned when the map completes; events carry the
        /// index the map will receive).
        node: usize,
        /// Grid rows after the insertion.
        rows: usize,
        /// Grid columns after the insertion.
        cols: usize,
    },
    /// A column was inserted during breadth growth.
    ColumnInserted {
        /// Node index.
        node: usize,
        /// Grid rows after the insertion.
        rows: usize,
        /// Grid columns after the insertion.
        cols: usize,
    },
    /// A unit expanded into a child map.
    ChildSpawned {
        /// Parent node index.
        parent: usize,
        /// Parent unit index.
        unit: usize,
        /// Child node index.
        child: usize,
    },
}

/// Ordered log of all growth events of a training run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GrowthLog {
    events: Vec<GrowthEvent>,
}

impl GrowthLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: GrowthEvent) {
        self.events.push(event);
    }

    /// All events in order.
    pub fn events(&self) -> &[GrowthEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of row + column insertions.
    pub fn insertion_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    GrowthEvent::RowInserted { .. } | GrowthEvent::ColumnInserted { .. }
                )
            })
            .count()
    }

    /// Number of maps created.
    pub fn map_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, GrowthEvent::MapCreated { .. }))
            .count()
    }

    /// Cumulative total-unit counts after each event — the series behind
    /// the "map growth over training" figure. Insertions during a map's
    /// growth are accounted against that map's eventual size, so the
    /// timeline counts `MapCreated` units plus interim insertions.
    pub fn unit_timeline(&self) -> Vec<usize> {
        let mut timeline = Vec::with_capacity(self.events.len());
        let mut completed_units = 0usize;
        let mut growing: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for e in &self.events {
            match *e {
                GrowthEvent::RowInserted { node, rows, cols }
                | GrowthEvent::ColumnInserted { node, rows, cols } => {
                    growing.insert(node, rows * cols);
                }
                GrowthEvent::MapCreated {
                    node, rows, cols, ..
                } => {
                    growing.remove(&node);
                    completed_units += rows * cols;
                }
                GrowthEvent::ChildSpawned { .. } => {}
            }
            timeline.push(completed_units + growing.values().sum::<usize>());
        }
        timeline
    }
}

/// Per-layer breakdown of a trained hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Depth (layer-1 = 1).
    pub depth: usize,
    /// Number of maps at this depth.
    pub maps: usize,
    /// Total units across those maps.
    pub units: usize,
}

/// Summary of a trained hierarchy's shape — the row a topology table
/// prints per (τ₁, τ₂) configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Total number of maps.
    pub maps: usize,
    /// Total number of units.
    pub total_units: usize,
    /// Deepest layer.
    pub max_depth: usize,
    /// Breakdown per layer, ascending depth.
    pub per_layer: Vec<LayerStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> GrowthLog {
        let mut log = GrowthLog::new();
        log.push(GrowthEvent::RowInserted {
            node: 0,
            rows: 3,
            cols: 2,
        });
        log.push(GrowthEvent::ColumnInserted {
            node: 0,
            rows: 3,
            cols: 3,
        });
        log.push(GrowthEvent::MapCreated {
            node: 0,
            depth: 1,
            rows: 3,
            cols: 3,
            samples: 100,
        });
        log.push(GrowthEvent::ChildSpawned {
            parent: 0,
            unit: 4,
            child: 1,
        });
        log.push(GrowthEvent::MapCreated {
            node: 1,
            depth: 2,
            rows: 2,
            cols: 2,
            samples: 30,
        });
        log
    }

    #[test]
    fn counts() {
        let log = sample_log();
        assert_eq!(log.len(), 5);
        assert!(!log.is_empty());
        assert_eq!(log.insertion_count(), 2);
        assert_eq!(log.map_count(), 2);
        assert_eq!(log.events().len(), 5);
    }

    #[test]
    fn unit_timeline_is_monotone_and_correct() {
        let log = sample_log();
        let tl = log.unit_timeline();
        assert_eq!(tl, vec![6, 9, 9, 9, 13]);
        for pair in tl.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn empty_log() {
        let log = GrowthLog::new();
        assert!(log.is_empty());
        assert_eq!(log.unit_timeline(), Vec::<usize>::new());
        assert_eq!(log.insertion_count(), 0);
        assert_eq!(log.map_count(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let log = sample_log();
        let json = serde_json::to_string(&log).unwrap();
        let back: GrowthLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
        let stats = TopologyStats {
            maps: 2,
            total_units: 13,
            max_depth: 2,
            per_layer: vec![
                LayerStats {
                    depth: 1,
                    maps: 1,
                    units: 9,
                },
                LayerStats {
                    depth: 2,
                    maps: 1,
                    units: 4,
                },
            ],
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: TopologyStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
