//! GHSOM training configuration.

use serde::{Deserialize, Serialize};
use som::{DecaySchedule, NeighborhoodKind};

use crate::GhsomError;

/// Which SOM training rule every map in the hierarchy uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TrainingMode {
    /// Per-sample Kohonen updates with decaying rate/radius (the original
    /// GHSOM formulation; sensitive to presentation order, which the seed
    /// fixes).
    #[default]
    Online,
    /// Batch updates: each epoch replaces every weight by the
    /// neighborhood-weighted mean of the data. Order-independent and
    /// typically smoother, at a small cost in final quantization error on
    /// small maps.
    Batch,
}

impl std::fmt::Display for TrainingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TrainingMode::Online => "online",
            TrainingMode::Batch => "batch",
        })
    }
}

/// All knobs of a GHSOM training run.
///
/// The two parameters that matter scientifically are [`tau1`](Self::tau1)
/// (breadth) and [`tau2`](Self::tau2) (depth); everything else is
/// engineering guard-rails with defaults that match the GHSOM literature.
///
/// The struct is `#[non_exhaustive]` so new knobs can be added without a
/// semver break: start from [`GhsomConfig::default`] and apply the
/// chainable `with_*` setters (fields stay `pub`, so direct assignment
/// through a `mut` binding works too):
///
/// ```
/// use ghsom_core::GhsomConfig;
/// let config = GhsomConfig::default().with_tau1(0.2).with_tau2(0.05).with_seed(7);
/// assert_eq!(config.tau1, 0.2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct GhsomConfig {
    /// Breadth threshold τ₁ ∈ (0, 1): a map stops growing horizontally once
    /// its mean quantization error falls below `τ₁ · mqe(parent unit)`.
    /// Smaller values produce larger maps.
    pub tau1: f64,
    /// Depth threshold τ₂ ∈ (0, 1]: a unit expands into a child map while
    /// its mean quantization error exceeds `τ₂ · mqe₀`. Smaller values
    /// produce deeper hierarchies.
    pub tau2: f64,
    /// Hard depth cap (layer-1 map is depth 1).
    pub max_depth: usize,
    /// Initial grid rows of every new map (the canonical GHSOM uses 2).
    pub initial_rows: usize,
    /// Initial grid columns of every new map.
    pub initial_cols: usize,
    /// Training epochs per growth round (λ in the GHSOM papers).
    pub epochs_per_round: usize,
    /// Fine-tuning epochs after a map stops growing.
    pub final_epochs: usize,
    /// Cap on row/column insertions per map.
    pub max_growth_rounds: usize,
    /// Cap on units per map (stops breadth growth when reached).
    pub max_map_units: usize,
    /// Global cap on units across the whole hierarchy (stops *all* growth
    /// when reached — a guard against pathological τ settings).
    pub max_total_units: usize,
    /// A unit expands vertically only if at least this many training
    /// records map to it (children need data to train on).
    pub min_unit_samples: usize,
    /// Learning-rate schedule for every training run (ignored by
    /// [`TrainingMode::Batch`], which has no learning rate).
    pub learning_rate: DecaySchedule,
    /// Neighborhood kernel for every training run.
    pub neighborhood: NeighborhoodKind,
    /// Online (default) or batch SOM updates.
    pub training: TrainingMode,
    /// Master seed: map initialization and shuffling derive from it, so a
    /// fixed seed yields a bit-identical model.
    pub seed: u64,
}

impl Default for GhsomConfig {
    /// τ₁ = 0.3, τ₂ = 0.03, depth ≤ 4 — the mid-point of the τ grid used
    /// by the reproduction experiments.
    fn default() -> Self {
        GhsomConfig {
            tau1: 0.3,
            tau2: 0.03,
            max_depth: 4,
            initial_rows: 2,
            initial_cols: 2,
            epochs_per_round: 5,
            final_epochs: 5,
            max_growth_rounds: 24,
            max_map_units: 400,
            max_total_units: 5_000,
            min_unit_samples: 8,
            learning_rate: DecaySchedule::Linear {
                start: 0.5,
                end: 0.05,
            },
            neighborhood: NeighborhoodKind::Gaussian,
            training: TrainingMode::Online,
            seed: 42,
        }
    }
}

impl GhsomConfig {
    /// Returns the config with the breadth threshold τ₁ replaced.
    #[must_use]
    pub fn with_tau1(mut self, tau1: f64) -> Self {
        self.tau1 = tau1;
        self
    }

    /// Returns the config with the depth threshold τ₂ replaced.
    #[must_use]
    pub fn with_tau2(mut self, tau2: f64) -> Self {
        self.tau2 = tau2;
        self
    }

    /// Returns the config with the hard depth cap replaced.
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Returns the config with the initial grid shape of new maps
    /// replaced.
    #[must_use]
    pub fn with_initial_grid(mut self, rows: usize, cols: usize) -> Self {
        self.initial_rows = rows;
        self.initial_cols = cols;
        self
    }

    /// Returns the config with both epoch budgets replaced (training
    /// epochs per growth round, fine-tuning epochs after growth stops).
    #[must_use]
    pub fn with_epochs(mut self, per_round: usize, final_epochs: usize) -> Self {
        self.epochs_per_round = per_round;
        self.final_epochs = final_epochs;
        self
    }

    /// Returns the config with the per-map growth-round cap replaced.
    #[must_use]
    pub fn with_max_growth_rounds(mut self, rounds: usize) -> Self {
        self.max_growth_rounds = rounds;
        self
    }

    /// Returns the config with the per-map unit cap replaced.
    #[must_use]
    pub fn with_max_map_units(mut self, units: usize) -> Self {
        self.max_map_units = units;
        self
    }

    /// Returns the config with the global unit cap replaced.
    #[must_use]
    pub fn with_max_total_units(mut self, units: usize) -> Self {
        self.max_total_units = units;
        self
    }

    /// Returns the config with the vertical-expansion sample floor
    /// replaced.
    #[must_use]
    pub fn with_min_unit_samples(mut self, samples: usize) -> Self {
        self.min_unit_samples = samples;
        self
    }

    /// Returns the config with the learning-rate schedule replaced.
    #[must_use]
    pub fn with_learning_rate(mut self, schedule: DecaySchedule) -> Self {
        self.learning_rate = schedule;
        self
    }

    /// Returns the config with the neighborhood kernel replaced.
    #[must_use]
    pub fn with_neighborhood(mut self, kind: NeighborhoodKind) -> Self {
        self.neighborhood = kind;
        self
    }

    /// Returns the config with the SOM training rule replaced.
    #[must_use]
    pub fn with_training(mut self, mode: TrainingMode) -> Self {
        self.training = mode;
        self
    }

    /// Returns the config with the master seed replaced.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// [`GhsomError::InvalidConfig`] naming the first offending field.
    pub fn validate(&self) -> Result<(), GhsomError> {
        if !(self.tau1 > 0.0 && self.tau1 < 1.0 && self.tau1.is_finite()) {
            return Err(GhsomError::InvalidConfig {
                name: "tau1",
                reason: "must lie in (0, 1)",
            });
        }
        if !(self.tau2 > 0.0 && self.tau2 <= 1.0 && self.tau2.is_finite()) {
            return Err(GhsomError::InvalidConfig {
                name: "tau2",
                reason: "must lie in (0, 1]",
            });
        }
        if self.max_depth == 0 {
            return Err(GhsomError::InvalidConfig {
                name: "max_depth",
                reason: "must be at least 1",
            });
        }
        if self.initial_rows < 2 || self.initial_cols < 2 {
            return Err(GhsomError::InvalidConfig {
                name: "initial_rows/initial_cols",
                reason: "the starting grid must be at least 2×2",
            });
        }
        if self.epochs_per_round == 0 {
            return Err(GhsomError::InvalidConfig {
                name: "epochs_per_round",
                reason: "must be at least 1",
            });
        }
        if self.max_map_units < self.initial_rows * self.initial_cols {
            return Err(GhsomError::InvalidConfig {
                name: "max_map_units",
                reason: "must be at least the initial grid size",
            });
        }
        if self.max_total_units < self.max_map_units {
            return Err(GhsomError::InvalidConfig {
                name: "max_total_units",
                reason: "must be at least max_map_units",
            });
        }
        if self.min_unit_samples == 0 {
            return Err(GhsomError::InvalidConfig {
                name: "min_unit_samples",
                reason: "must be at least 1",
            });
        }
        self.learning_rate
            .validate()
            .map_err(|_| GhsomError::InvalidConfig {
                name: "learning_rate",
                reason: "schedule is invalid (see som::DecaySchedule::validate)",
            })?;
        Ok(())
    }

    /// The seed for training round `round` of node `node` — a cheap
    /// splitmix-style derivation so every map trains with an independent
    /// but reproducible stream.
    pub(crate) fn derived_seed(&self, node: usize, round: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(1 + node as u64))
            .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(1 + round as u64));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        GhsomConfig::default().validate().unwrap();
    }

    #[test]
    fn tau_bounds_are_enforced() {
        for tau1 in [0.0, 1.0, -0.5, f64::NAN] {
            let c = GhsomConfig {
                tau1,
                ..Default::default()
            };
            assert!(c.validate().is_err(), "tau1 = {tau1} accepted");
        }
        for tau2 in [0.0, 1.5, -0.1, f64::INFINITY] {
            let c = GhsomConfig {
                tau2,
                ..Default::default()
            };
            assert!(c.validate().is_err(), "tau2 = {tau2} accepted");
        }
        // tau2 = 1.0 is allowed (expansion only for units worse than mqe0).
        let c = GhsomConfig {
            tau2: 1.0,
            ..Default::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn structural_bounds_are_enforced() {
        let cases = [
            GhsomConfig {
                max_depth: 0,
                ..Default::default()
            },
            GhsomConfig {
                initial_rows: 1,
                ..Default::default()
            },
            GhsomConfig {
                initial_cols: 0,
                ..Default::default()
            },
            GhsomConfig {
                epochs_per_round: 0,
                ..Default::default()
            },
            GhsomConfig {
                max_map_units: 3,
                ..Default::default()
            },
            GhsomConfig {
                max_total_units: 10,
                ..Default::default()
            },
            GhsomConfig {
                min_unit_samples: 0,
                ..Default::default()
            },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "accepted: {c:?}");
        }
    }

    #[test]
    fn derived_seeds_differ_across_nodes_and_rounds() {
        let c = GhsomConfig::default();
        let s00 = c.derived_seed(0, 0);
        let s01 = c.derived_seed(0, 1);
        let s10 = c.derived_seed(1, 0);
        assert_ne!(s00, s01);
        assert_ne!(s00, s10);
        assert_ne!(s01, s10);
        // Deterministic.
        assert_eq!(s00, c.derived_seed(0, 0));
    }

    #[test]
    fn serde_roundtrip() {
        let c = GhsomConfig {
            tau1: 0.12,
            tau2: 0.05,
            training: TrainingMode::Batch,
            ..Default::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: GhsomConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn training_mode_default_and_display() {
        assert_eq!(TrainingMode::default(), TrainingMode::Online);
        assert_eq!(TrainingMode::Online.to_string(), "online");
        assert_eq!(TrainingMode::Batch.to_string(), "batch");
    }
}
