//! The trained GHSOM model and its training orchestrator.
//!
//! # Parallel training and scoring
//!
//! Training proceeds in breadth-first *waves*: all maps queued at the
//! current depth are independent of each other, so when the total-unit
//! budget provably cannot bind within the wave (a conservative worst-case
//! growth bound fits in the remaining budget) the wave's maps are trained
//! concurrently through [`mathkit::parallel`]. Otherwise the wave falls
//! back to the exact sequential schedule. Either way the result is
//! bit-identical to fully sequential training: node indices, derived
//! seeds, growth-log order and the growth guards are all preserved.
//!
//! Bulk scoring ([`GhsomModel::project_batch`] / [`GhsomModel::score_matrix`])
//! routes whole sample groups level-by-level through each map's batched
//! BMU engine ([`som::Som::bmu_batch`]) instead of projecting samples one
//! at a time.

use std::collections::{BTreeMap, VecDeque};

use mathkit::{distance, parallel, Matrix};
use serde::{Deserialize, Serialize};
use som::map::Som;

use crate::growing::{GrowingGrid, Insertion};
use crate::stats::{GrowthEvent, GrowthLog, LayerStats, TopologyStats};
use crate::{GhsomConfig, GhsomError};

/// One map in the hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapNode {
    som: Som,
    depth: usize,
    parent: Option<(usize, usize)>,
    /// `children[unit]` is the node index of the unit's child map, if any.
    children: Vec<Option<usize>>,
    /// Training hits per unit.
    unit_hits: Vec<usize>,
    /// Training mean quantization error per unit (0 for dead units).
    unit_mqe: Vec<f64>,
}

impl MapNode {
    /// Builds a node from explicit parts — used by [`GhsomModel::from_parts`]
    /// to assemble hierarchies outside the growth procedure (tests,
    /// benchmarks, model import).
    ///
    /// # Errors
    ///
    /// [`GhsomError::InvalidConfig`] when `children`, `unit_hits` or
    /// `unit_mqe` do not have one entry per SOM unit, or `depth` is zero.
    pub fn new(
        som: Som,
        depth: usize,
        parent: Option<(usize, usize)>,
        children: Vec<Option<usize>>,
        unit_hits: Vec<usize>,
        unit_mqe: Vec<f64>,
    ) -> Result<Self, GhsomError> {
        if depth == 0 {
            return Err(GhsomError::InvalidConfig {
                name: "depth",
                reason: "layer-1 maps have depth 1",
            });
        }
        let units = som.len();
        if children.len() != units || unit_hits.len() != units || unit_mqe.len() != units {
            return Err(GhsomError::InvalidConfig {
                name: "children/unit_hits/unit_mqe",
                reason: "must have one entry per unit",
            });
        }
        Ok(MapNode {
            som,
            depth,
            parent,
            children,
            unit_hits,
            unit_mqe,
        })
    }

    /// The trained map.
    pub fn som(&self) -> &Som {
        &self.som
    }

    /// Depth in the hierarchy (layer-1 = 1).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// `(parent node, parent unit)` link, `None` for the root map.
    pub fn parent(&self) -> Option<(usize, usize)> {
        self.parent
    }

    /// Node index of the child map expanded from `unit`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of bounds.
    pub fn child_of_unit(&self, unit: usize) -> Option<usize> {
        self.children[unit]
    }

    /// Training hits per unit.
    pub fn unit_hits(&self) -> &[usize] {
        &self.unit_hits
    }

    /// Training mean quantization error per unit.
    pub fn unit_mqe(&self) -> &[f64] {
        &self.unit_mqe
    }

    /// Number of units with at least one child.
    pub fn expanded_units(&self) -> usize {
        self.children.iter().filter(|c| c.is_some()).count()
    }
}

/// One hop of a root→leaf projection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathStep {
    /// Node index of the map.
    pub node: usize,
    /// Best-matching unit within that map.
    pub unit: usize,
    /// Distance from the sample to that unit's weight vector.
    pub distance: f64,
}

/// The full root→leaf projection of one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    steps: Vec<PathStep>,
}

impl Projection {
    /// Builds a projection from explicit hops (root first) — the
    /// constructor alternative hierarchy representations (e.g. the compiled
    /// serving arena) use to report paths in the same shape the tree does.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty: a projection always has at least the
    /// root hop.
    pub fn from_steps(steps: Vec<PathStep>) -> Self {
        assert!(!steps.is_empty(), "projections have at least one step");
        Projection { steps }
    }

    /// All hops, root first.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// The leaf hop.
    pub fn leaf(&self) -> PathStep {
        *self
            .steps
            .last()
            .expect("projections have at least one step")
    }

    /// `(node, unit)` identity of the leaf unit — the key the labelled
    /// detector indexes by.
    pub fn leaf_key(&self) -> (usize, usize) {
        let l = self.leaf();
        (l.node, l.unit)
    }

    /// Quantization error at the leaf — the anomaly score of the
    /// QE-threshold detector.
    pub fn leaf_qe(&self) -> f64 {
        self.leaf().distance
    }

    /// Depth of the projection (number of maps traversed).
    pub fn depth(&self) -> usize {
        self.steps.len()
    }
}

/// A trained growing hierarchical SOM.
///
/// See the [crate-level example](crate) for end-to-end usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GhsomModel {
    config: GhsomConfig,
    /// Layer-0 virtual unit: the training-data mean.
    mean: Vec<f64>,
    /// Mean distance of the training data to `mean` (mqe₀).
    mqe0: f64,
    nodes: Vec<MapNode>,
    root: usize,
    growth_log: GrowthLog,
}

impl GhsomModel {
    /// Trains a GHSOM on the rows of `data`.
    ///
    /// Deterministic: the same config (including seed) and data produce a
    /// bit-identical model.
    ///
    /// # Errors
    ///
    /// [`GhsomError::InvalidConfig`] for bad parameters,
    /// [`GhsomError::EmptyInput`]/[`GhsomError::NonFinite`] for bad data,
    /// and propagated SOM errors.
    pub fn train(config: &GhsomConfig, data: &Matrix) -> Result<Self, GhsomError> {
        config.validate()?;
        if data.rows() == 0 {
            return Err(GhsomError::EmptyInput);
        }
        for row in data.iter_rows() {
            if !mathkit::vector::all_finite(row) {
                return Err(GhsomError::NonFinite);
            }
        }

        // Layer 0: the virtual unit.
        let mean = data.col_means();
        let mqe0 = data
            .iter_rows()
            .map(|r| distance::euclidean(r, &mean))
            .sum::<f64>()
            / data.rows() as f64;

        let mut model = GhsomModel {
            config: config.clone(),
            mean,
            mqe0,
            nodes: Vec::new(),
            root: 0,
            growth_log: GrowthLog::new(),
        };

        // Work queue of maps to grow: (parent link, data row indices,
        // parent reference error, depth). Processed in breadth-first
        // *waves* — all queued items share a depth and are mutually
        // independent, which is what makes sibling-parallel training safe.
        let mut queue = VecDeque::new();
        queue.push_back(WorkItem {
            parent: None,
            indices: (0..data.rows()).collect(),
            parent_mqe: mqe0,
            depth: 1,
        });

        let mut total_units = 0usize;
        while !queue.is_empty() {
            let wave: Vec<WorkItem> = queue.drain(..).collect();
            let base = model.nodes.len();
            let budget = config.max_total_units.saturating_sub(total_units);
            // Conservative worst case of the wave's breadth growth. When it
            // fits in the remaining unit budget, the budget guard provably
            // cannot bind for any item regardless of processing order, so
            // sibling maps can train concurrently with a snapshot budget
            // and the result is bit-identical to the sequential schedule.
            let worst: usize = wave
                .iter()
                .map(|item| worst_case_units(config, item.indices.len()))
                .sum();
            let grown: Vec<Result<GrownMap, GhsomError>> =
                if wave.len() > 1 && worst.saturating_add(1) <= budget {
                    let items: Vec<(usize, &WorkItem)> = wave.iter().enumerate().collect();
                    parallel::par_map(&items, |&(i, item)| {
                        grow_map(config, data, item, base + i, budget)
                    })
                } else {
                    let mut out = Vec::with_capacity(wave.len());
                    let mut running = total_units;
                    for (i, item) in wave.iter().enumerate() {
                        let item_budget = config.max_total_units.saturating_sub(running);
                        let g = grow_map(config, data, item, base + i, item_budget);
                        if let Ok(g) = &g {
                            running += g.som.len();
                        }
                        out.push(g);
                    }
                    out
                };

            // Apply the wave in order: node numbering, growth log, parent
            // links and child scheduling all match the sequential schedule.
            for (i, (item, grown)) in wave.into_iter().zip(grown).enumerate() {
                let grown = grown?;
                let node_idx = base + i;
                debug_assert_eq!(node_idx, model.nodes.len());
                total_units += grown.som.len();
                for event in grown.events {
                    model.growth_log.push(event);
                }
                let units = grown.som.len();
                model.nodes.push(MapNode {
                    som: grown.som,
                    depth: item.depth,
                    parent: item.parent,
                    children: vec![None; units],
                    unit_hits: grown.unit_hits.clone(),
                    unit_mqe: grown.unit_mqe.clone(),
                });
                if let Some((pnode, punit)) = item.parent {
                    model.nodes[pnode].children[punit] = Some(node_idx);
                    model.growth_log.push(GrowthEvent::ChildSpawned {
                        parent: pnode,
                        unit: punit,
                        child: node_idx,
                    });
                }

                // --- Vertical expansion -----------------------------------
                if item.depth >= config.max_depth {
                    continue;
                }
                for unit in 0..units {
                    if grown.unit_hits[unit] < config.min_unit_samples {
                        continue;
                    }
                    if grown.unit_mqe[unit] <= config.tau2 * mqe0 {
                        continue;
                    }
                    if total_units >= config.max_total_units {
                        break;
                    }
                    let child_indices: Vec<usize> = grown
                        .assignments
                        .iter()
                        .zip(&item.indices)
                        .filter(|(&a, _)| a == unit)
                        .map(|(_, &orig)| orig)
                        .collect();
                    debug_assert_eq!(child_indices.len(), grown.unit_hits[unit]);
                    queue.push_back(WorkItem {
                        parent: Some((node_idx, unit)),
                        indices: child_indices,
                        parent_mqe: grown.unit_mqe[unit],
                        depth: item.depth + 1,
                    });
                }
            }
        }

        Ok(model)
    }

    /// Assembles a model from explicit parts, bypassing training — for
    /// tests, benchmarks and model import. Node 0 must be the root.
    ///
    /// The growth log of an assembled model is empty.
    ///
    /// # Errors
    ///
    /// [`GhsomError::EmptyInput`] when `nodes` is empty;
    /// [`GhsomError::DimensionMismatch`] when any map's codebook width
    /// differs from `mean`; [`GhsomError::InvalidConfig`] when parent/child
    /// links or depths are inconsistent (root must have depth 1 and no
    /// parent, every child link must point past its parent at depth + 1 and
    /// be mirrored by the child's parent link), or `mqe0` is not finite and
    /// non-negative.
    pub fn from_parts(
        config: GhsomConfig,
        mean: Vec<f64>,
        mqe0: f64,
        nodes: Vec<MapNode>,
    ) -> Result<Self, GhsomError> {
        if nodes.is_empty() {
            return Err(GhsomError::EmptyInput);
        }
        if !(mqe0.is_finite() && mqe0 >= 0.0) {
            return Err(GhsomError::InvalidConfig {
                name: "mqe0",
                reason: "must be finite and non-negative",
            });
        }
        if nodes[0].parent.is_some() || nodes[0].depth != 1 {
            return Err(GhsomError::InvalidConfig {
                name: "nodes",
                reason: "node 0 must be the depth-1 root with no parent",
            });
        }
        for (idx, node) in nodes.iter().enumerate() {
            if node.som.dim() != mean.len() {
                return Err(GhsomError::DimensionMismatch {
                    expected: mean.len(),
                    found: node.som.dim(),
                });
            }
            if idx > 0 && node.parent.is_none() {
                return Err(GhsomError::InvalidConfig {
                    name: "nodes",
                    reason: "only node 0 may lack a parent",
                });
            }
            if let Some((pnode, punit)) = node.parent {
                let valid = pnode < idx
                    && punit < nodes[pnode].children.len()
                    && nodes[pnode].children[punit] == Some(idx)
                    && node.depth == nodes[pnode].depth + 1;
                if !valid {
                    return Err(GhsomError::InvalidConfig {
                        name: "nodes",
                        reason: "parent link must be mirrored by the parent at depth + 1",
                    });
                }
            }
            for (unit, &child) in node.children.iter().enumerate() {
                let Some(child) = child else { continue };
                let valid =
                    child > idx && child < nodes.len() && nodes[child].parent == Some((idx, unit));
                if !valid {
                    return Err(GhsomError::InvalidConfig {
                        name: "nodes",
                        reason: "child links must point forward to nodes that link back",
                    });
                }
            }
        }
        Ok(GhsomModel {
            config,
            mean,
            mqe0,
            nodes,
            root: 0,
            growth_log: GrowthLog::new(),
        })
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &GhsomConfig {
        &self.config
    }

    /// The layer-0 virtual unit (training-data mean).
    pub fn layer0_mean(&self) -> &[f64] {
        &self.mean
    }

    /// The layer-0 mean quantization error mqe₀ — the global error scale
    /// that τ₂ is relative to.
    pub fn mqe0(&self) -> f64 {
        self.mqe0
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// All maps, in creation (breadth-first) order; index 0 is the root.
    pub fn nodes(&self) -> &[MapNode] {
        &self.nodes
    }

    /// The root map node.
    pub fn root(&self) -> &MapNode {
        &self.nodes[self.root]
    }

    /// Number of maps in the hierarchy.
    pub fn map_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total units across all maps.
    pub fn total_units(&self) -> usize {
        self.nodes.iter().map(|n| n.som.len()).sum()
    }

    /// Depth of the deepest map.
    pub fn max_depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// The growth event log.
    pub fn growth_log(&self) -> &GrowthLog {
        &self.growth_log
    }

    /// Shape summary for topology tables.
    pub fn topology_stats(&self) -> TopologyStats {
        let max_depth = self.max_depth();
        let mut per_layer = Vec::new();
        for depth in 1..=max_depth {
            let maps = self.nodes.iter().filter(|n| n.depth == depth).count();
            let units: usize = self
                .nodes
                .iter()
                .filter(|n| n.depth == depth)
                .map(|n| n.som.len())
                .sum();
            per_layer.push(LayerStats { depth, maps, units });
        }
        TopologyStats {
            maps: self.map_count(),
            total_units: self.total_units(),
            max_depth,
            per_layer,
        }
    }

    /// Projects a sample root→leaf, descending through child maps along the
    /// best-matching units.
    ///
    /// # Errors
    ///
    /// [`GhsomError::DimensionMismatch`] on a sample of the wrong width.
    pub fn project(&self, x: &[f64]) -> Result<Projection, GhsomError> {
        if x.len() != self.dim() {
            return Err(GhsomError::DimensionMismatch {
                expected: self.dim(),
                found: x.len(),
            });
        }
        let mut steps = Vec::new();
        let mut node_idx = self.root;
        loop {
            let node = &self.nodes[node_idx];
            let bmu = node.som.bmu(x)?;
            steps.push(PathStep {
                node: node_idx,
                unit: bmu.unit,
                distance: bmu.distance,
            });
            match node.children[bmu.unit] {
                Some(child) => node_idx = child,
                None => break,
            }
        }
        Ok(Projection { steps })
    }

    /// Projects every row of a matrix root→leaf — the bulk scoring path.
    ///
    /// Routes whole sample groups level-by-level: all samples sharing a map
    /// go through one batched BMU search ([`som::Som::bmu_batch`], parallel
    /// under the `rayon` feature), then split among that map's children.
    /// Produces exactly the projections [`GhsomModel::project`] would.
    ///
    /// # Errors
    ///
    /// [`GhsomError::DimensionMismatch`] on samples of the wrong width.
    pub fn project_batch(&self, data: &Matrix) -> Result<Vec<Projection>, GhsomError> {
        if data.rows() == 0 {
            return Ok(Vec::new());
        }
        if data.cols() != self.dim() {
            return Err(GhsomError::DimensionMismatch {
                expected: self.dim(),
                found: data.cols(),
            });
        }
        let n = data.rows();
        let mut projections: Vec<Projection> = vec![Projection { steps: Vec::new() }; n];
        // Frontier of (node, samples routed to it), root first. BTreeMap
        // grouping keeps traversal order deterministic.
        let mut frontier: Vec<(usize, Vec<usize>)> = vec![(self.root, (0..n).collect())];
        while !frontier.is_empty() {
            let mut next: Vec<(usize, Vec<usize>)> = Vec::new();
            for (node_idx, samples) in frontier {
                let node = &self.nodes[node_idx];
                let subset = submatrix(data, &samples)?;
                let matches = node.som.bmu_batch(&subset)?;
                let mut children: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
                for (&sample, m) in samples.iter().zip(&matches) {
                    projections[sample].steps.push(PathStep {
                        node: node_idx,
                        unit: m.unit,
                        distance: m.distance,
                    });
                    if let Some(child) = node.children[m.unit] {
                        children.entry(child).or_default().push(sample);
                    }
                }
                next.extend(children);
            }
            frontier = next;
        }
        Ok(projections)
    }

    /// Projects every row of a matrix, returning the leaf QE scores — the
    /// bulk scoring path detectors use. Built on
    /// [`GhsomModel::project_batch`].
    ///
    /// # Errors
    ///
    /// Per-sample errors from [`GhsomModel::project`].
    pub fn score_matrix(&self, data: &Matrix) -> Result<Vec<f64>, GhsomError> {
        Ok(self
            .project_batch(data)?
            .into_iter()
            .map(|p| p.leaf_qe())
            .collect())
    }
}

/// One queued map-growing job.
struct WorkItem {
    parent: Option<(usize, usize)>,
    indices: Vec<usize>,
    parent_mqe: f64,
    depth: usize,
}

/// Everything one breadth-growth run produces, ready to be spliced into
/// the model in wave order.
struct GrownMap {
    som: Som,
    unit_hits: Vec<usize>,
    unit_mqe: Vec<f64>,
    /// BMU of every subset row on the final map (drives child scheduling).
    assignments: Vec<usize>,
    /// Insertion events followed by the `MapCreated` event.
    events: Vec<GrowthEvent>,
}

/// Conservative upper bound on how many units a map grown from `samples`
/// records can reach, counting the one insertion that may land after the
/// stopping guards last held.
fn worst_case_units(config: &GhsomConfig, samples: usize) -> usize {
    let r = config.max_growth_rounds;
    let initial = config.initial_rows * config.initial_cols;
    let side_bound = (config.initial_rows + r).max(config.initial_cols + r);
    let area_bound = (config.initial_rows + r) * (config.initial_cols + r);
    let cap_bound = config
        .max_map_units
        .min(samples.max(initial))
        .saturating_add(side_bound);
    initial.max(area_bound.min(cap_bound))
}

/// Grows and trains one map: the per-item body of [`GhsomModel::train`],
/// pure in everything except `config`-derived seeds so sibling maps can
/// run concurrently.
///
/// `unit_budget` replaces the sequential `total_units + grid.len() <
/// max_total_units` guard with `grid.len() < unit_budget`; callers pass
/// either the live remaining budget (sequential) or a wave snapshot that
/// the guard provably cannot reach (parallel).
fn grow_map(
    config: &GhsomConfig,
    data: &Matrix,
    item: &WorkItem,
    node_idx: usize,
    unit_budget: usize,
) -> Result<GrownMap, GhsomError> {
    let subset = submatrix(data, &item.indices)?;
    let mut events = Vec::new();

    // --- Breadth growth --------------------------------------------------
    let mut grid = GrowingGrid::new(config, &subset, config.derived_seed(node_idx, 0))?;
    grid.train(
        &subset,
        config,
        config.epochs_per_round,
        config.derived_seed(node_idx, 1),
    )?;
    let mut rounds = 0usize;
    // The `grid.len() < sample count` guard prevents the classic GHSOM
    // over-growth pathology: a map cannot usefully hold more units than it
    // has training records.
    while grid.mean_unit_mqe() > config.tau1 * item.parent_mqe
        && rounds < config.max_growth_rounds
        && grid.len() < config.max_map_units
        && grid.len() < item.indices.len()
        && grid.len() < unit_budget
    {
        let insertion = grid.grow_once()?;
        let t = grid.som().topology();
        events.push(match insertion {
            Insertion::Row(_) => GrowthEvent::RowInserted {
                node: node_idx,
                rows: t.rows(),
                cols: t.cols(),
            },
            Insertion::Column(_) => GrowthEvent::ColumnInserted {
                node: node_idx,
                rows: t.rows(),
                cols: t.cols(),
            },
        });
        rounds += 1;
        grid.train(
            &subset,
            config,
            config.epochs_per_round,
            config.derived_seed(node_idx, 1 + rounds),
        )?;
    }
    if config.final_epochs > 0 {
        grid.train(
            &subset,
            config,
            config.final_epochs,
            config.derived_seed(node_idx, usize::MAX / 2),
        )?;
    }

    // --- Freeze ----------------------------------------------------------
    let unit_hits = grid.unit_hits().to_vec();
    let unit_mqe: Vec<f64> = grid
        .unit_qe()
        .iter()
        .zip(&unit_hits)
        .map(|(&qe, &h)| if h > 0 { qe / h as f64 } else { 0.0 })
        .collect();
    let assignments = grid.som().assign(&subset)?;
    let som = grid.into_som();
    let t = som.topology();
    events.push(GrowthEvent::MapCreated {
        node: node_idx,
        depth: item.depth,
        rows: t.rows(),
        cols: t.cols(),
        samples: item.indices.len(),
    });
    Ok(GrownMap {
        som,
        unit_hits,
        unit_mqe,
        assignments,
        events,
    })
}

/// Copies the selected rows into a fresh matrix.
fn submatrix(data: &Matrix, indices: &[usize]) -> Result<Matrix, GhsomError> {
    let rows: Vec<Vec<f64>> = indices.iter().map(|&i| data.row(i).to_vec()).collect();
    Ok(Matrix::from_rows(rows)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Hierarchically clustered data: two macro-clusters, each containing
    /// three micro-clusters — the structure GHSOM exists to discover.
    fn hierarchical_data() -> Matrix {
        let mut rng = StdRng::seed_from_u64(2024);
        let macro_centers = [[0.0, 0.0], [10.0, 10.0]];
        let micro_offsets = [[0.0, 0.0], [1.5, 0.0], [0.0, 1.5]];
        let mut rows = Vec::new();
        for _ in 0..600 {
            let mc = macro_centers[rng.gen_range(0..2)];
            let off = micro_offsets[rng.gen_range(0..3)];
            rows.push(vec![
                mc[0] + off[0] + rng.gen::<f64>() * 0.2,
                mc[1] + off[1] + rng.gen::<f64>() * 0.2,
            ]);
        }
        Matrix::from_rows(rows).unwrap()
    }

    fn default_model() -> GhsomModel {
        let config = GhsomConfig {
            tau1: 0.5,
            tau2: 0.05,
            seed: 7,
            ..Default::default()
        };
        GhsomModel::train(&config, &hierarchical_data()).unwrap()
    }

    #[test]
    fn training_produces_a_hierarchy() {
        let model = default_model();
        assert!(model.map_count() >= 2, "only {} maps", model.map_count());
        assert!(model.max_depth() >= 2, "depth {}", model.max_depth());
        assert!(model.total_units() >= 8);
        assert!(model.mqe0() > 0.0);
    }

    #[test]
    fn projection_reaches_leaves_with_small_qe() {
        let model = default_model();
        let data = hierarchical_data();
        for x in data.iter_rows().take(100) {
            let p = model.project(x).unwrap();
            assert!(p.depth() >= 1);
            assert!(p.leaf_qe() <= p.steps()[0].distance * 1.5 + 1e-9);
            // Leaf QE should be small relative to the global scale.
            assert!(p.leaf_qe() < model.mqe0());
            // Path is consistent: each step's node exists and links match.
            for w in p.steps().windows(2) {
                let parent = &model.nodes()[w[0].node];
                assert_eq!(parent.child_of_unit(w[0].unit), Some(w[1].node));
            }
        }
    }

    #[test]
    fn children_partition_parent_data() {
        let model = default_model();
        for (idx, node) in model.nodes().iter().enumerate() {
            if let Some((pnode, punit)) = node.parent() {
                let parent = &model.nodes()[pnode];
                assert_eq!(parent.child_of_unit(punit), Some(idx));
                assert!(parent.unit_hits()[punit] >= model.config().min_unit_samples);
            }
        }
    }

    #[test]
    fn hits_sum_to_samples_at_root() {
        let model = default_model();
        let total: usize = model.root().unit_hits().iter().sum();
        assert_eq!(total, 600);
    }

    #[test]
    fn training_is_deterministic() {
        let config = GhsomConfig {
            tau1: 0.4,
            tau2: 0.08,
            seed: 3,
            ..Default::default()
        };
        let data = hierarchical_data();
        let a = GhsomModel::train(&config, &data).unwrap();
        let b = GhsomModel::train(&config, &data).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn smaller_tau1_grows_wider_maps() {
        let data = hierarchical_data();
        let wide = GhsomModel::train(
            &GhsomConfig {
                tau1: 0.1,
                tau2: 0.9,
                max_depth: 1,
                ..Default::default()
            },
            &data,
        )
        .unwrap();
        let narrow = GhsomModel::train(
            &GhsomConfig {
                tau1: 0.8,
                tau2: 0.9,
                max_depth: 1,
                ..Default::default()
            },
            &data,
        )
        .unwrap();
        assert!(
            wide.total_units() > narrow.total_units(),
            "tau1=0.1 gave {} units, tau1=0.8 gave {}",
            wide.total_units(),
            narrow.total_units()
        );
    }

    #[test]
    fn smaller_tau2_grows_deeper() {
        let data = hierarchical_data();
        let deep = GhsomModel::train(
            &GhsomConfig {
                tau1: 0.5,
                tau2: 0.02,
                ..Default::default()
            },
            &data,
        )
        .unwrap();
        let shallow = GhsomModel::train(
            &GhsomConfig {
                tau1: 0.5,
                tau2: 1.0,
                ..Default::default()
            },
            &data,
        )
        .unwrap();
        assert!(deep.max_depth() > shallow.max_depth() || deep.map_count() > shallow.map_count());
        assert_eq!(shallow.max_depth(), 1, "tau2=1.0 should never expand");
    }

    #[test]
    fn max_depth_is_respected() {
        let data = hierarchical_data();
        let model = GhsomModel::train(
            &GhsomConfig {
                tau1: 0.6,
                tau2: 0.001,
                max_depth: 2,
                ..Default::default()
            },
            &data,
        )
        .unwrap();
        assert!(model.max_depth() <= 2);
    }

    #[test]
    fn maps_do_not_grossly_exceed_their_sample_counts() {
        let data = hierarchical_data();
        let model = GhsomModel::train(
            &GhsomConfig {
                tau1: 0.05, // aggressive breadth growth
                tau2: 0.02,
                ..Default::default()
            },
            &data,
        )
        .unwrap();
        for (idx, node) in model.nodes().iter().enumerate() {
            let samples: usize = node.unit_hits().iter().sum();
            // One insertion may land after the guard fires, so allow the
            // last row/column of slack beyond the sample count.
            let max_side = node
                .som()
                .topology()
                .rows()
                .max(node.som().topology().cols());
            assert!(
                node.som().len() <= samples.max(4) + max_side,
                "map {idx} has {} units for {samples} samples",
                node.som().len()
            );
        }
    }

    #[test]
    fn unit_budget_is_respected() {
        let data = hierarchical_data();
        let model = GhsomModel::train(
            &GhsomConfig {
                tau1: 0.05,
                tau2: 0.01,
                max_map_units: 16,
                max_total_units: 64,
                ..Default::default()
            },
            &data,
        )
        .unwrap();
        assert!(
            model.total_units() <= 64 + 16,
            "total {}",
            model.total_units()
        );
        for node in model.nodes() {
            assert!(node.som().len() <= 16 + 4, "map too big");
        }
    }

    #[test]
    fn topology_stats_are_consistent() {
        let model = default_model();
        let stats = model.topology_stats();
        assert_eq!(stats.maps, model.map_count());
        assert_eq!(stats.total_units, model.total_units());
        assert_eq!(stats.max_depth, model.max_depth());
        let layer_units: usize = stats.per_layer.iter().map(|l| l.units).sum();
        assert_eq!(layer_units, model.total_units());
        let layer_maps: usize = stats.per_layer.iter().map(|l| l.maps).sum();
        assert_eq!(layer_maps, model.map_count());
    }

    #[test]
    fn growth_log_matches_model() {
        let model = default_model();
        assert_eq!(model.growth_log().map_count(), model.map_count());
        let timeline = model.growth_log().unit_timeline();
        assert_eq!(*timeline.last().unwrap(), model.total_units());
    }

    #[test]
    fn score_matrix_matches_individual_projections() {
        let model = default_model();
        let data = hierarchical_data();
        let scores = model.score_matrix(&data).unwrap();
        assert_eq!(scores.len(), data.rows());
        for (x, &s) in data.iter_rows().zip(&scores).take(20) {
            assert_eq!(model.project(x).unwrap().leaf_qe(), s);
        }
    }

    #[test]
    fn outliers_score_higher_than_training_data() {
        let model = default_model();
        let data = hierarchical_data();
        let train_scores = model.score_matrix(&data).unwrap();
        let train_mean = train_scores.iter().sum::<f64>() / train_scores.len() as f64;
        let outlier_score = model.project(&[50.0, -50.0]).unwrap().leaf_qe();
        assert!(
            outlier_score > 10.0 * train_mean,
            "outlier {outlier_score} vs train mean {train_mean}"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let config = GhsomConfig::default();
        let data = hierarchical_data();
        assert!(matches!(
            GhsomModel::train(
                &GhsomConfig {
                    tau1: 2.0,
                    ..config.clone()
                },
                &data
            )
            .unwrap_err(),
            GhsomError::InvalidConfig { .. }
        ));
        let model = GhsomModel::train(&config, &data).unwrap();
        assert!(matches!(
            model.project(&[1.0]).unwrap_err(),
            GhsomError::DimensionMismatch { .. }
        ));
        let bad = Matrix::from_flat(1, 2, vec![f64::NAN, 0.0]).unwrap();
        assert_eq!(
            GhsomModel::train(&config, &bad).unwrap_err(),
            GhsomError::NonFinite
        );
    }

    #[test]
    fn constant_data_degenerates_gracefully() {
        let data = Matrix::from_rows(vec![vec![3.0, 3.0]; 50]).unwrap();
        let model = GhsomModel::train(&GhsomConfig::default(), &data).unwrap();
        // mqe0 = 0 → breadth criterion met immediately, no vertical growth.
        assert_eq!(model.mqe0(), 0.0);
        assert_eq!(model.map_count(), 1);
        assert_eq!(model.max_depth(), 1);
        let p = model.project(&[3.0, 3.0]).unwrap();
        assert_eq!(p.leaf_qe(), 0.0);
    }

    #[test]
    fn batch_training_mode_works_and_is_deterministic() {
        let data = hierarchical_data();
        let config = GhsomConfig {
            tau1: 0.5,
            tau2: 0.05,
            training: crate::config::TrainingMode::Batch,
            seed: 7,
            ..Default::default()
        };
        let a = GhsomModel::train(&config, &data).unwrap();
        let b = GhsomModel::train(&config, &data).unwrap();
        assert_eq!(a, b);
        assert!(a.map_count() >= 1);
        // Batch-trained hierarchies quantize the data comparably: leaf QE
        // stays well under the global scale.
        let scores = a.score_matrix(&data).unwrap();
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!(
            mean < a.mqe0(),
            "batch mean leaf QE {mean} vs mqe0 {}",
            a.mqe0()
        );
    }

    #[test]
    fn serde_roundtrip() {
        let model = default_model();
        let json = serde_json::to_string(&model).unwrap();
        let back: GhsomModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, model);
        // The deserialized model scores identically.
        let x = [0.5, 0.5];
        assert_eq!(
            model.project(&x).unwrap().leaf_qe(),
            back.project(&x).unwrap().leaf_qe()
        );
    }
}
