//! The [`Scorer`] abstraction over GHSOM representations.
//!
//! A trained hierarchy exists in two shapes in this workspace: the
//! training-time node tree ([`GhsomModel`]) and the serving-time flattened
//! arena (`ghsom_serve::CompiledGhsom`). Both answer exactly the same
//! inference questions — project a sample root→leaf, score whole matrices,
//! expose unit prototypes — so the detection layer is written against this
//! trait and accepts either representation. Implementations must agree
//! *bit-for-bit* on projections: a detector fitted on the tree (leaf keys,
//! thresholds) serves unchanged on the compiled plane.

use std::borrow::Cow;

use mathkit::{Matrix, MatrixView};

use crate::model::{GhsomModel, Projection};
use crate::GhsomError;

/// Read-only inference over a trained GHSOM, independent of how the
/// hierarchy is stored.
///
/// Node indices are the breadth-first creation order of training (root is
/// node 0) and are stable across representations: `(node, unit)` leaf keys
/// computed on one implementation are valid on any other compiled from the
/// same model.
pub trait Scorer {
    /// Input dimensionality.
    fn dim(&self) -> usize;

    /// Number of maps in the hierarchy.
    fn map_count(&self) -> usize;

    /// Number of units in map `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    fn map_units(&self, node: usize) -> usize;

    /// Node index of the child map expanded from `(node, unit)`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `unit` is out of bounds.
    fn child_of(&self, node: usize, unit: usize) -> Option<usize>;

    /// Weight vector of `(node, unit)` — borrowed where the representation
    /// stores row-major weights, gathered otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `unit` is out of bounds.
    fn unit_prototype(&self, node: usize, unit: usize) -> Cow<'_, [f64]>;

    /// All of map `node`'s weight vectors, row-major in original unit
    /// order (`map_units(node) × dim`) — the bulk form consumers scanning
    /// a whole map (e.g. nearest-labelled-unit fallbacks) should prefer
    /// over per-unit [`Scorer::unit_prototype`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    fn map_weights(&self, node: usize) -> Cow<'_, [f64]> {
        let dim = self.dim();
        let mut out = Vec::with_capacity(self.map_units(node) * dim);
        for unit in 0..self.map_units(node) {
            out.extend_from_slice(&self.unit_prototype(node, unit));
        }
        Cow::Owned(out)
    }

    /// Projects one sample root→leaf.
    ///
    /// # Errors
    ///
    /// [`GhsomError::DimensionMismatch`] on a sample of the wrong width.
    fn project(&self, x: &[f64]) -> Result<Projection, GhsomError>;

    /// Projects every row of a matrix root→leaf (the bulk path).
    ///
    /// # Errors
    ///
    /// [`GhsomError::DimensionMismatch`] on samples of the wrong width.
    fn project_batch(&self, data: &Matrix) -> Result<Vec<Projection>, GhsomError>;

    /// [`Scorer::project_batch`] over a **borrowed** matrix view — the
    /// zero-copy entry point of the fused serving path (a reused feature
    /// buffer handed straight to the hierarchy walk). An empty view
    /// yields an empty vector.
    ///
    /// The default copies the view into an owned [`Matrix`];
    /// representations whose walk can run on a borrowed flat buffer (the
    /// compiled serving arena) override it to skip the copy. Overrides
    /// must produce bit-identical projections.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scorer::project_batch`].
    fn project_batch_view(&self, data: MatrixView<'_>) -> Result<Vec<Projection>, GhsomError> {
        if data.rows() == 0 {
            return Ok(Vec::new());
        }
        self.project_batch(&data.to_matrix()?)
    }

    /// Leaf quantization error of every row — the detectors' bulk scoring
    /// path. The default materializes [`Scorer::project_batch`];
    /// implementations with a cheaper leaf-only walk override it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scorer::project_batch`].
    fn score_matrix(&self, data: &Matrix) -> Result<Vec<f64>, GhsomError> {
        Ok(self
            .project_batch(data)?
            .into_iter()
            .map(|p| p.leaf_qe())
            .collect())
    }

    /// [`Scorer::score_matrix`] over a borrowed matrix view (see
    /// [`Scorer::project_batch_view`] for the zero-copy contract).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scorer::score_matrix`].
    fn score_matrix_view(&self, data: MatrixView<'_>) -> Result<Vec<f64>, GhsomError> {
        Ok(self
            .project_batch_view(data)?
            .into_iter()
            .map(|p| p.leaf_qe())
            .collect())
    }
}

impl Scorer for GhsomModel {
    fn dim(&self) -> usize {
        GhsomModel::dim(self)
    }

    fn map_count(&self) -> usize {
        GhsomModel::map_count(self)
    }

    fn map_units(&self, node: usize) -> usize {
        self.nodes()[node].som().len()
    }

    fn child_of(&self, node: usize, unit: usize) -> Option<usize> {
        self.nodes()[node].child_of_unit(unit)
    }

    fn unit_prototype(&self, node: usize, unit: usize) -> Cow<'_, [f64]> {
        Cow::Borrowed(self.nodes()[node].som().unit_weight(unit))
    }

    fn map_weights(&self, node: usize) -> Cow<'_, [f64]> {
        Cow::Borrowed(self.nodes()[node].som().weights().as_slice())
    }

    fn project(&self, x: &[f64]) -> Result<Projection, GhsomError> {
        GhsomModel::project(self, x)
    }

    fn project_batch(&self, data: &Matrix) -> Result<Vec<Projection>, GhsomError> {
        GhsomModel::project_batch(self, data)
    }

    fn score_matrix(&self, data: &Matrix) -> Result<Vec<f64>, GhsomError> {
        GhsomModel::score_matrix(self, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GhsomConfig;

    fn model() -> GhsomModel {
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                let c = (i % 3) as f64 * 4.0;
                vec![c + (i % 7) as f64 * 0.01, c + (i % 5) as f64 * 0.01]
            })
            .collect();
        let data = Matrix::from_rows(rows).unwrap();
        GhsomModel::train(
            &GhsomConfig {
                tau1: 0.4,
                tau2: 0.1,
                seed: 11,
                ..Default::default()
            },
            &data,
        )
        .unwrap()
    }

    /// The trait impl must answer exactly like the inherent methods.
    #[test]
    fn trait_matches_inherent_methods() {
        let m = model();
        let scorer: &dyn Scorer = &m;
        assert_eq!(scorer.dim(), 2);
        assert_eq!(scorer.map_count(), m.map_count());
        for (i, node) in m.nodes().iter().enumerate() {
            assert_eq!(scorer.map_units(i), node.som().len());
            for u in 0..node.som().len() {
                assert_eq!(scorer.child_of(i, u), node.child_of_unit(u));
                assert_eq!(
                    scorer.unit_prototype(i, u).as_ref(),
                    node.som().unit_weight(u)
                );
            }
        }
        let x = [0.05, 0.02];
        assert_eq!(scorer.project(&x).unwrap(), m.project(&x).unwrap());
    }

    #[test]
    fn default_view_projection_matches_the_owned_path() {
        let m = model();
        let data = Matrix::from_rows(vec![vec![0.0, 0.0], vec![4.0, 4.0], vec![8.0, 8.0]]).unwrap();
        let scorer: &dyn Scorer = &m;
        let owned = scorer.project_batch(&data).unwrap();
        let viewed = scorer.project_batch_view(data.view()).unwrap();
        assert_eq!(owned, viewed);
        let empty = MatrixView::new(0, 2, &[]).unwrap();
        assert!(scorer.project_batch_view(empty).unwrap().is_empty());
    }

    #[test]
    fn default_score_matrix_matches_projections() {
        let m = model();
        let data = Matrix::from_rows(vec![vec![0.0, 0.0], vec![4.0, 4.0], vec![8.0, 8.0]]).unwrap();
        let scorer: &dyn Scorer = &m;
        let scores = scorer.score_matrix(&data).unwrap();
        for (x, &s) in data.iter_rows().zip(&scores) {
            assert_eq!(m.project(x).unwrap().leaf_qe(), s);
        }
    }
}
