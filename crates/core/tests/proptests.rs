//! Property-based tests of the GHSOM invariants.

use ghsom_core::{GhsomConfig, GhsomModel};
use mathkit::Matrix;
use proptest::prelude::*;

fn clustered_matrix(n: usize, clusters: usize, seed: u64) -> Matrix {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let centers: Vec<(f64, f64)> = (0..clusters)
        .map(|i| (3.0 * i as f64, 2.0 * ((i % 2) as f64)))
        .collect();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let (cx, cy) = centers[rng.gen_range(0..clusters)];
            vec![cx + rng.gen::<f64>() * 0.3, cy + rng.gen::<f64>() * 0.3]
        })
        .collect();
    Matrix::from_rows(rows).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural invariants hold for any τ setting: parent/child links
    /// are consistent, depths increase along edges, root hits cover all
    /// samples, and budgets are respected.
    #[test]
    fn hierarchy_structure_is_consistent(
        tau1 in 0.1f64..0.9,
        tau2 in 0.01f64..0.5,
        seed in 0u64..50
    ) {
        let data = clustered_matrix(150, 3, seed);
        let config = GhsomConfig::default()
.with_tau1(tau1)
.with_tau2(tau2)
.with_epochs(2, 1)
.with_max_growth_rounds(8)
.with_seed(seed);
        let model = GhsomModel::train(&config, &data).unwrap();
        prop_assert!(model.map_count() >= 1);
        prop_assert!(model.max_depth() <= config.max_depth);
        // Node 0 is the root and has no parent.
        prop_assert!(model.nodes()[0].parent().is_none());
        let root_hits: usize = model.root().unit_hits().iter().sum();
        prop_assert_eq!(root_hits, 150);
        for (idx, node) in model.nodes().iter().enumerate() {
            if let Some((pnode, punit)) = node.parent() {
                prop_assert!(pnode < idx, "parents precede children");
                let parent = &model.nodes()[pnode];
                prop_assert_eq!(parent.child_of_unit(punit), Some(idx));
                prop_assert_eq!(node.depth(), parent.depth() + 1);
                // Child data = parent-unit membership.
                let child_hits: usize = node.unit_hits().iter().sum();
                prop_assert_eq!(child_hits, parent.unit_hits()[punit]);
                // Vertical expansion only happens above the sample gate.
                prop_assert!(child_hits >= config.min_unit_samples);
            }
        }
    }

    /// Projection is total and consistent: every training row reaches a
    /// leaf whose node/unit both exist, following real child links.
    #[test]
    fn projection_paths_are_valid(seed in 0u64..50) {
        let data = clustered_matrix(120, 3, seed);
        let config = GhsomConfig::default()
.with_tau1(0.4)
.with_tau2(0.1)
.with_epochs(2, 1)
.with_seed(seed);
        let model = GhsomModel::train(&config, &data).unwrap();
        for x in data.iter_rows() {
            let p = model.project(x).unwrap();
            let steps = p.steps();
            prop_assert!(!steps.is_empty());
            prop_assert_eq!(steps[0].node, 0);
            for w in steps.windows(2) {
                let parent = &model.nodes()[w[0].node];
                prop_assert_eq!(parent.child_of_unit(w[0].unit), Some(w[1].node));
            }
            let leaf = p.leaf();
            prop_assert!(leaf.node < model.map_count());
            prop_assert!(leaf.unit < model.nodes()[leaf.node].som().len());
            prop_assert!(leaf.distance.is_finite() && leaf.distance >= 0.0);
        }
    }

    /// τ monotonicity (coarse): at fixed τ₂, decreasing τ₁ never *shrinks*
    /// the root map.
    #[test]
    fn tau1_monotonicity_on_root_map(seed in 0u64..20) {
        let data = clustered_matrix(150, 4, seed);
        let units_at = |tau1: f64| {
            let config = GhsomConfig::default()
.with_tau1(tau1)
.with_tau2(1.0)
.with_max_depth(1)
.with_epochs(2, 1)
.with_seed(seed);
            GhsomModel::train(&config, &data).unwrap().total_units()
        };
        let coarse = units_at(0.8);
        let fine = units_at(0.15);
        prop_assert!(fine >= coarse, "tau1 0.15 gave {fine} < tau1 0.8 {coarse}");
    }

    /// Determinism: identical config + data ⇒ bit-identical model, for any
    /// τ draw.
    #[test]
    fn training_is_deterministic(tau1 in 0.2f64..0.8, tau2 in 0.02f64..0.5, seed in 0u64..25) {
        let data = clustered_matrix(80, 2, seed);
        let config = GhsomConfig::default()
.with_tau1(tau1)
.with_tau2(tau2)
.with_epochs(2, 1)
.with_max_growth_rounds(6)
.with_seed(seed);
        let a = GhsomModel::train(&config, &data).unwrap();
        let b = GhsomModel::train(&config, &data).unwrap();
        prop_assert_eq!(a, b);
    }

    /// The growth log always reconciles with the final model.
    #[test]
    fn growth_log_reconciles(seed in 0u64..40) {
        let data = clustered_matrix(100, 3, seed);
        let config = GhsomConfig::default()
.with_tau1(0.3)
.with_tau2(0.08)
.with_epochs(2, 1)
.with_seed(seed);
        let model = GhsomModel::train(&config, &data).unwrap();
        prop_assert_eq!(model.growth_log().map_count(), model.map_count());
        let timeline = model.growth_log().unit_timeline();
        prop_assert_eq!(*timeline.last().unwrap(), model.total_units());
        // Timeline is non-decreasing.
        for w in timeline.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}
