//! Error type of the daemon plane: frame codec, connection handling and
//! client-side protocol failures.

use std::fmt;

use detect::DetectError;
use ghsom_serve::ServeError;

/// Typed reject codes a server sends in a `Reject` response frame.
///
/// Codes are part of the wire protocol (normative table in
/// `docs/PROTOCOL.md`): clients dispatch on the code, the detail string
/// is for operators. The numeric values are frozen — new codes append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectCode {
    /// The tenant's bounded ingest queue is full: the client outran the
    /// scorer and the batch was load-shed instead of buffered. Back off
    /// and resend.
    Overloaded,
    /// No engine is deployed under the requested tenant name.
    UnknownTenant,
    /// The frame or batch payload failed structural validation. The
    /// server closes the connection after sending this: a malformed
    /// frame loses byte-stream framing, so the stream cannot continue.
    Malformed,
    /// The frame declared a payload longer than the server accepts.
    /// Connection closes (the oversized payload is never read).
    TooLarge,
    /// The frame carried an unknown protocol version or frame type.
    /// Connection closes.
    Unsupported,
    /// Scoring failed server-side after admission (engine error, tenant
    /// retired mid-flight). The batch produced no verdicts.
    Internal,
}

impl RejectCode {
    /// The frozen wire byte of this code.
    pub fn to_wire(self) -> u8 {
        match self {
            RejectCode::Overloaded => 1,
            RejectCode::UnknownTenant => 2,
            RejectCode::Malformed => 3,
            RejectCode::TooLarge => 4,
            RejectCode::Unsupported => 5,
            RejectCode::Internal => 6,
        }
    }

    /// Decodes a wire byte.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Malformed`] for unknown code bytes.
    pub fn from_wire(byte: u8) -> Result<Self, DaemonError> {
        match byte {
            1 => Ok(RejectCode::Overloaded),
            2 => Ok(RejectCode::UnknownTenant),
            3 => Ok(RejectCode::Malformed),
            4 => Ok(RejectCode::TooLarge),
            5 => Ok(RejectCode::Unsupported),
            6 => Ok(RejectCode::Internal),
            _ => Err(DaemonError::Malformed("unknown reject code byte")),
        }
    }

    /// Stable snake_case name, used as the metrics label.
    pub fn name(self) -> &'static str {
        match self {
            RejectCode::Overloaded => "overloaded",
            RejectCode::UnknownTenant => "unknown_tenant",
            RejectCode::Malformed => "malformed",
            RejectCode::TooLarge => "too_large",
            RejectCode::Unsupported => "unsupported",
            RejectCode::Internal => "internal",
        }
    }
}

impl fmt::Display for RejectCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors produced by the daemon's frame codec, connection plane and
/// client.
///
/// Hostile bytes never panic: every malformed input maps to one of the
/// typed variants below, and on the server side a protocol error closes
/// exactly the offending connection — never the process, never a
/// serving engine. The enum is `#[non_exhaustive]`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DaemonError {
    /// Socket or filesystem I/O failed.
    Io(String),
    /// The frame does not start with the `GHSD` magic.
    BadMagic,
    /// The frame was written by an unknown protocol version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u8,
        /// Newest version this build speaks.
        supported: u8,
    },
    /// The header names a frame type this build does not know.
    UnknownFrameType(u8),
    /// The header's reserved bytes were not zero.
    ReservedNonZero,
    /// The frame declares a payload longer than the configured cap —
    /// rejected before any payload byte is read, so a hostile declared
    /// length can never force an allocation.
    FrameTooLarge {
        /// Declared payload length.
        declared: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The payload ended before a declared structure was complete.
    Truncated {
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The peer disconnected mid-frame (clean EOF *between* frames is
    /// not an error).
    Disconnected,
    /// The peer started a frame but did not finish it within the frame
    /// deadline — the slow-loris defence. The connection is closed.
    TimedOut,
    /// The payload parses but violates a structural invariant.
    Malformed(&'static str),
    /// Client side: the server answered with a `Reject` frame.
    Rejected {
        /// Echoed request id (`0` when the request never parsed).
        req_id: u64,
        /// Typed reject code.
        code: RejectCode,
        /// Operator-facing detail string.
        detail: String,
    },
    /// Client side: the server sent a frame type that does not answer
    /// the outstanding request.
    UnexpectedFrame {
        /// What the protocol state machine expected.
        expected: &'static str,
        /// Frame type byte actually received.
        found: u8,
    },
    /// The serving plane failed (spool, registry or engine error).
    Serve(ServeError),
    /// A verdict failed to encode or decode.
    Verdict(DetectError),
    /// The daemon is shutting down and no longer accepts work.
    ShuttingDown,
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Io(msg) => write!(f, "daemon I/O error: {msg}"),
            DaemonError::BadMagic => write!(f, "not a GHSD frame (bad magic)"),
            DaemonError::UnsupportedVersion { found, supported } => write!(
                f,
                "protocol version {found} is not supported (this build speaks <= {supported})"
            ),
            DaemonError::UnknownFrameType(t) => write!(f, "unknown frame type {t:#04x}"),
            DaemonError::ReservedNonZero => {
                write!(f, "reserved header bytes must be zero")
            }
            DaemonError::FrameTooLarge { declared, max } => write!(
                f,
                "frame declares a {declared}-byte payload, above the {max}-byte cap"
            ),
            DaemonError::Truncated { needed, got } => {
                write!(f, "frame payload truncated: need {needed} bytes, got {got}")
            }
            DaemonError::Disconnected => write!(f, "peer disconnected mid-frame"),
            DaemonError::TimedOut => {
                write!(f, "frame not completed within the frame deadline")
            }
            DaemonError::Malformed(reason) => write!(f, "malformed frame: {reason}"),
            DaemonError::Rejected {
                req_id,
                code,
                detail,
            } => {
                write!(f, "request {req_id} rejected ({code}): {detail}")
            }
            DaemonError::UnexpectedFrame { expected, found } => {
                write!(f, "expected {expected}, got frame type {found:#04x}")
            }
            DaemonError::Serve(e) => write!(f, "serving plane error: {e}"),
            DaemonError::Verdict(e) => write!(f, "verdict codec error: {e}"),
            DaemonError::ShuttingDown => write!(f, "daemon is shutting down"),
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Serve(e) => Some(e),
            DaemonError::Verdict(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e.to_string())
    }
}

impl From<ServeError> for DaemonError {
    fn from(e: ServeError) -> Self {
        DaemonError::Serve(e)
    }
}

impl From<DetectError> for DaemonError {
    fn from(e: DetectError) -> Self {
        DaemonError::Verdict(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<DaemonError>();
    }

    #[test]
    fn reject_codes_roundtrip() {
        for code in [
            RejectCode::Overloaded,
            RejectCode::UnknownTenant,
            RejectCode::Malformed,
            RejectCode::TooLarge,
            RejectCode::Unsupported,
            RejectCode::Internal,
        ] {
            assert_eq!(RejectCode::from_wire(code.to_wire()).unwrap(), code);
        }
        assert!(RejectCode::from_wire(0).is_err());
        assert!(RejectCode::from_wire(200).is_err());
    }

    #[test]
    fn display_messages_are_actionable() {
        assert!(DaemonError::BadMagic.to_string().contains("magic"));
        assert!(DaemonError::FrameTooLarge {
            declared: 99,
            max: 10
        }
        .to_string()
        .contains("99"));
        assert!(DaemonError::Rejected {
            req_id: 7,
            code: RejectCode::Overloaded,
            detail: "queue full".into()
        }
        .to_string()
        .contains("overloaded"));
    }
}
