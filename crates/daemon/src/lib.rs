//! # ghsom-daemon — the TCP serving front-end
//!
//! Everything below the network was already in place: [`Engine`]s score
//! whole batches, the [`EngineRegistry`] names them per tenant, and the
//! [`SpoolWatcher`] hot-reloads them from a bundle spool. This crate puts
//! a wire on top — a real daemon a feeder can connect to:
//!
//! * **GHSD protocol** ([`protocol`]) — length-prefixed binary frames
//!   (magic + version + type + payload length), batch-framed
//!   [`traffic::ConnectionRecord`]s in, per-record verdicts out, with a
//!   client-chosen `req_id` echoed on every response so pipelined
//!   requests match up even when typed rejects interleave. The normative
//!   grammar lives in `docs/PROTOCOL.md`.
//! * **Admission control** ([`server`]) — every tenant gets a *bounded*
//!   ingest lane; a full lane answers `Reject(Overloaded)` instead of
//!   buffering, so a flooding client is load-shed while memory stays
//!   bounded end to end (the per-connection reply channel is bounded
//!   too, extending backpressure all the way to a slow reader).
//! * **Hot reload** — the spool watcher from PR 5 runs inside the
//!   daemon: dropping a new bundle into the spool swaps the tenant's
//!   engine mid-stream with a warm adaptive baseline; a corrupt bundle
//!   is rejected without evicting the serving engine, and both outcomes
//!   land in the metrics within one poll interval.
//! * **Observability** ([`metrics`]) — per-tenant atomic counters
//!   (records, batches, flag rate, overload rejects, queue high-water,
//!   p50/p99 batch latency) plus watcher events, rendered as plaintext
//!   on a separate metrics listener.
//! * **Fleet plane** ([`fleet`]) — [`FleetClient`] fans score batches
//!   out across N daemons in contiguous chunks (ordered, bit-identical
//!   concat — the `ShardedEngine` rule one level up), routes observe
//!   batches whole to one node without retry, and reduces fleet-wide
//!   baselines from each daemon's GHSF endpoint (`ghsom_comms`; started
//!   via [`DaemonConfig::with_fleet_addr`]). Normative wire grammar in
//!   `docs/FLEET.md`, operator procedures in `docs/OPERATIONS.md`.
//! * **Hostile-input containment** — every malformed frame maps to a
//!   typed [`DaemonError`], closes exactly the offending connection, and
//!   never panics the process or touches an engine; slow-loris writers
//!   are cut off by a frame deadline. The protocol torture suite
//!   (`tests/protocol_torture.rs`) and the workspace soak test drive
//!   these paths.
//!
//! ```no_run
//! use ghsom_daemon::{Daemon, DaemonConfig, DaemonClient};
//!
//! # fn main() -> Result<(), ghsom_daemon::DaemonError> {
//! let daemon = Daemon::start(DaemonConfig::new("/var/spool/ghsom"))?;
//! let mut client = DaemonClient::connect(daemon.ingest_addr())?;
//! client.ping()?;
//! let records = vec![traffic::ConnectionRecord::default()];
//! let verdicts = client.score("edge", &records)?;
//! assert_eq!(verdicts.len(), records.len());
//! daemon.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! [`Engine`]: ghsom_serve::Engine
//! [`EngineRegistry`]: ghsom_serve::EngineRegistry
//! [`SpoolWatcher`]: ghsom_serve::SpoolWatcher

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod fleet;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::DaemonClient;
pub use error::{DaemonError, RejectCode};
pub use fleet::{FleetClient, FleetEndpoint, FleetError};
pub use metrics::{DaemonMetrics, LatencyHistogram, TenantMetrics};
pub use protocol::{BatchMode, BatchRequest, FrameHeader, FrameType, Request, Response};
pub use server::{Daemon, DaemonConfig};
