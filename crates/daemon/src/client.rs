//! A small synchronous client for the GHSD protocol — used by the
//! integration tests, the soak harness and the benches, and usable as a
//! library building block for real feeders.
//!
//! [`DaemonClient::score`] and [`DaemonClient::observe`] are the simple
//! lock-step calls (send one batch, wait for its response). The
//! `send_*_batch` / [`DaemonClient::recv_response`] split exposes
//! pipelining: fire many batches without waiting, then drain responses
//! and match them back by the echoed `req_id` — which is also how a
//! flooding client observes `Overloaded` rejects interleaved with
//! verdicts for its admitted batches.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use detect::hybrid::HybridVerdict;
use detect::online::StreamVerdict;
use traffic::ConnectionRecord;

use crate::error::DaemonError;
use crate::protocol::{
    self, BatchMode, BatchRequest, FrameHeader, Request, Response, VerdictPayload,
    DEFAULT_MAX_FRAME_LEN, HEADER_LEN,
};

/// A blocking connection to a running daemon's ingest listener.
#[derive(Debug)]
pub struct DaemonClient {
    stream: TcpStream,
    next_req_id: u64,
    max_frame_len: usize,
}

impl DaemonClient {
    /// Connects to a daemon's ingest address.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] when the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, DaemonError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(DaemonClient {
            stream,
            next_req_id: 1,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        })
    }

    /// Bounds how long [`DaemonClient::recv_response`] waits for bytes
    /// (`None` waits forever, the default).
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] when the socket rejects the option.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), DaemonError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Round-trips a ping.
    ///
    /// # Errors
    ///
    /// Any protocol or I/O error; [`DaemonError::UnexpectedFrame`] when
    /// the daemon answers with something other than a pong.
    pub fn ping(&mut self) -> Result<(), DaemonError> {
        let frame = protocol::encode_request(&Request::Ping)?;
        self.stream.write_all(&frame)?;
        match self.recv_response()? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other, "pong")),
        }
    }

    /// Scores one batch and waits for its verdicts (lock-step).
    ///
    /// # Errors
    ///
    /// [`DaemonError::Rejected`] carrying the server's typed reject
    /// code, or any protocol/I/O error.
    pub fn score(
        &mut self,
        tenant: &str,
        records: &[ConnectionRecord],
    ) -> Result<Vec<HybridVerdict>, DaemonError> {
        let req_id = self.send_score_batch(tenant, records)?;
        match self.recv_matching(req_id)? {
            VerdictPayload::Hybrid(v) => Ok(v),
            VerdictPayload::Stream(_) => Err(DaemonError::UnexpectedFrame {
                expected: "hybrid verdicts",
                found: protocol::FrameType::Verdicts.to_wire(),
            }),
        }
    }

    /// Scores **and observes** one batch (folds it into the tenant's
    /// adaptive baseline) and waits for its verdicts (lock-step).
    ///
    /// # Errors
    ///
    /// [`DaemonError::Rejected`] carrying the server's typed reject
    /// code, or any protocol/I/O error.
    pub fn observe(
        &mut self,
        tenant: &str,
        records: &[ConnectionRecord],
    ) -> Result<Vec<StreamVerdict>, DaemonError> {
        let req_id = self.send_observe_batch(tenant, records)?;
        match self.recv_matching(req_id)? {
            VerdictPayload::Stream(v) => Ok(v),
            VerdictPayload::Hybrid(_) => Err(DaemonError::UnexpectedFrame {
                expected: "stream verdicts",
                found: protocol::FrameType::Verdicts.to_wire(),
            }),
        }
    }

    /// Sends a score batch without waiting; returns its `req_id` for
    /// matching against [`DaemonClient::recv_response`] (pipelining).
    ///
    /// # Errors
    ///
    /// Encoding or I/O errors.
    pub fn send_score_batch(
        &mut self,
        tenant: &str,
        records: &[ConnectionRecord],
    ) -> Result<u64, DaemonError> {
        self.send_batch(tenant, records, BatchMode::Score)
    }

    /// Sends an observe batch without waiting; returns its `req_id`.
    ///
    /// # Errors
    ///
    /// Encoding or I/O errors.
    pub fn send_observe_batch(
        &mut self,
        tenant: &str,
        records: &[ConnectionRecord],
    ) -> Result<u64, DaemonError> {
        self.send_batch(tenant, records, BatchMode::Observe)
    }

    fn send_batch(
        &mut self,
        tenant: &str,
        records: &[ConnectionRecord],
        mode: BatchMode,
    ) -> Result<u64, DaemonError> {
        let req_id = self.next_req_id;
        self.next_req_id = self.next_req_id.wrapping_add(1).max(1);
        let frame = protocol::encode_request(&Request::Batch(BatchRequest {
            req_id,
            mode,
            tenant: tenant.to_string(),
            records: records.to_vec(),
        }))?;
        self.stream.write_all(&frame)?;
        Ok(req_id)
    }

    /// Reads the next response frame off the connection, whatever it
    /// answers.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Disconnected`] when the daemon closed the
    /// connection; any header/payload decode error for hostile bytes;
    /// [`DaemonError::UnexpectedFrame`] when a *request* frame type
    /// arrives on what should be a response stream.
    pub fn recv_response(&mut self) -> Result<Response, DaemonError> {
        let mut header_bytes = [0u8; HEADER_LEN];
        recv_exact(&mut self.stream, &mut header_bytes)?;
        let header = FrameHeader::decode(&header_bytes, self.max_frame_len)?;
        if header.frame_type.is_request() {
            return Err(DaemonError::UnexpectedFrame {
                expected: "a response frame",
                found: header.frame_type.to_wire(),
            });
        }
        let mut payload = vec![0u8; header.payload_len];
        recv_exact(&mut self.stream, &mut payload)?;
        protocol::decode_response(header.frame_type, &payload)
    }

    /// Receives the next response and insists it answers `req_id` with
    /// verdicts; a matching reject becomes [`DaemonError::Rejected`].
    fn recv_matching(&mut self, req_id: u64) -> Result<VerdictPayload, DaemonError> {
        match self.recv_response()? {
            Response::Verdicts {
                req_id: answered,
                verdicts,
            } if answered == req_id => Ok(verdicts),
            Response::Reject(reject) => Err(DaemonError::Rejected {
                req_id: reject.req_id,
                code: reject.code,
                detail: reject.detail,
            }),
            other => Err(unexpected(&other, "verdicts for the outstanding request")),
        }
    }
}

fn unexpected(response: &Response, expected: &'static str) -> DaemonError {
    let found = match response {
        Response::Verdicts { .. } => protocol::FrameType::Verdicts,
        Response::Reject(_) => protocol::FrameType::Reject,
        Response::Pong => protocol::FrameType::Pong,
    };
    DaemonError::UnexpectedFrame {
        expected,
        found: found.to_wire(),
    }
}

/// Fills `buf` completely or explains why it could not.
///
/// Hand-rolled rather than `read_exact` so a clean peer close maps to
/// [`DaemonError::Disconnected`] without inspecting `io::ErrorKind` —
/// this helper shares the serving plane's name-reachability budget
/// through `DaemonClient::score`/`observe`, so its body is held to the
/// hot path's rules.
fn recv_exact(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), DaemonError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let slot = buf.get_mut(filled..).unwrap_or_default();
        match stream.read(slot) {
            Ok(0) => return Err(DaemonError::Disconnected),
            Ok(n) => filled += n,
            Err(e) => return Err(DaemonError::from(e)),
        }
    }
    Ok(())
}
