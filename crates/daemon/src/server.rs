//! The daemon itself: TCP ingest, per-tenant admission control, scoring
//! workers, a spool watcher and the metrics listener, all std-thread.
//!
//! ```text
//!           ┌────────────┐   bounded lane    ┌──────────────┐
//!  client ──┤ reader thr ├──── try_send ────▶│ tenant worker│── registry
//!           │  (decode)  │     Full? ⇒       │ score/observe│   lookup per
//!           └─────┬──────┘   Reject(Overl.)  └──────┬───────┘   batch
//!                 │ rejects                         │ verdicts
//!                 ▼                                 ▼
//!           ┌───────────────── bounded reply channel ──────────┐
//!           │                writer thr (write_all)            │
//!           └───────────────────────────────────────────────────┘
//! ```
//!
//! Backpressure is end-to-end and memory is bounded at every hop: the
//! per-tenant lane is a `sync_channel` of at most
//! [`DaemonConfig::queue_capacity`] batches (`try_send`, so a full lane
//! sheds load as a typed `Overloaded` reject instead of buffering), and
//! the per-connection reply channel is equally bounded — a client that
//! stops reading wedges its own writer thread, fills its reply channel,
//! blocks the worker's reply send, fills the lane, and from then on is
//! load-shed. Nothing grows without bound.
//!
//! Hostile input is contained per connection: a malformed frame gets a
//! best-effort typed reject and closes *that* connection — never the
//! process, never an engine. A peer that starts a frame and stalls
//! (slow-loris) is cut off by the frame timeout ([`DaemonConfig::with_frame_timeout`]).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ghsom_serve::{EngineRegistry, SpoolEvent, SpoolWatcher};
use parking_lot::{Mutex, RwLock};
use traffic::ConnectionRecord;

use crate::error::{DaemonError, RejectCode};
use crate::metrics::DaemonMetrics;
use crate::protocol::{
    self, BatchMode, FrameHeader, Reject, Request, Response, VerdictPayload, HEADER_LEN,
};

/// Granularity of every stop-flag check: reads, writes and accepts wake
/// at least this often to notice shutdown.
const TICK: Duration = Duration::from_millis(50);

/// How long a writer thread waits for a wedged client to drain one
/// response before giving up on the connection.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Configuration of a [`Daemon`]. Start from [`DaemonConfig::new`] and
/// chain `with_*` setters; the defaults serve a local spool on ephemeral
/// loopback ports.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    spool: PathBuf,
    ingest_addr: String,
    metrics_addr: String,
    fleet_addr: Option<String>,
    queue_capacity: usize,
    max_frame_len: usize,
    shards: usize,
    poll_interval: Duration,
    frame_timeout: Duration,
}

impl DaemonConfig {
    /// A config serving bundles from `spool` with default knobs:
    /// ephemeral loopback listeners, 64-batch lanes, an 8 MiB frame cap,
    /// unsharded scoring, 250 ms spool polls and a 10 s frame deadline.
    pub fn new<P: Into<PathBuf>>(spool: P) -> Self {
        DaemonConfig {
            spool: spool.into(),
            ingest_addr: "127.0.0.1:0".to_string(),
            metrics_addr: "127.0.0.1:0".to_string(),
            fleet_addr: None,
            queue_capacity: 64,
            max_frame_len: protocol::DEFAULT_MAX_FRAME_LEN,
            shards: 1,
            poll_interval: Duration::from_millis(250),
            frame_timeout: Duration::from_secs(10),
        }
    }

    /// Replaces the ingest listener address (e.g. `0.0.0.0:7700`).
    #[must_use]
    pub fn with_ingest_addr(mut self, addr: &str) -> Self {
        self.ingest_addr = addr.to_string();
        self
    }

    /// Replaces the metrics listener address.
    #[must_use]
    pub fn with_metrics_addr(mut self, addr: &str) -> Self {
        self.metrics_addr = addr.to_string();
        self
    }

    /// Enables the GHSF fleet endpoint on `addr` (e.g. `0.0.0.0:7071`):
    /// a `fleet-ctl` publisher can then replicate bundles straight into
    /// this daemon's spool and query its tenants' streaming baselines.
    /// Off by default — a daemon that isn't part of a fleet exposes no
    /// replication surface.
    #[must_use]
    pub fn with_fleet_addr(mut self, addr: &str) -> Self {
        self.fleet_addr = Some(addr.to_string());
        self
    }

    /// Replaces the per-tenant lane capacity in batches (clamped to at
    /// least 1). A full lane rejects with `Overloaded`.
    #[must_use]
    pub fn with_queue_capacity(mut self, batches: usize) -> Self {
        self.queue_capacity = batches.max(1);
        self
    }

    /// Replaces the cap on a frame's declared payload length.
    #[must_use]
    pub fn with_max_frame_len(mut self, bytes: usize) -> Self {
        self.max_frame_len = bytes;
        self
    }

    /// Replaces the scoring shard count (clamped to at least 1). Values
    /// above 1 split each batch across that many threads.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Replaces the spool poll interval.
    #[must_use]
    pub fn with_poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// Replaces the slow-loris deadline: a frame whose first byte has
    /// arrived must complete within this window.
    #[must_use]
    pub fn with_frame_timeout(mut self, timeout: Duration) -> Self {
        self.frame_timeout = timeout;
        self
    }

    /// The spool directory served.
    pub fn spool(&self) -> &Path {
        &self.spool
    }

    /// The per-tenant lane capacity in batches.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }
}

/// One admitted batch in flight from a reader thread to a tenant worker.
struct Job {
    req_id: u64,
    mode: BatchMode,
    records: Vec<ConnectionRecord>,
    /// The originating connection's bounded reply channel; the worker's
    /// blocking send here is what extends backpressure to the client.
    reply: SyncSender<Vec<u8>>,
}

/// State shared by every thread of one daemon.
struct Shared {
    registry: Arc<EngineRegistry>,
    metrics: Arc<DaemonMetrics>,
    stop: Arc<AtomicBool>,
    lanes: RwLock<HashMap<String, SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    queue_capacity: usize,
    max_frame_len: usize,
    shards: usize,
    frame_timeout: Duration,
}

/// A running serving daemon: ingest listener, metrics listener, spool
/// watcher, and per-tenant scoring workers. Stop it with
/// [`Daemon::shutdown`] (or drop it — drop also stops and joins).
pub struct Daemon {
    shared: Arc<Shared>,
    ingest_addr: SocketAddr,
    metrics_addr: SocketAddr,
    fleet_node: Option<ghsom_comms::FleetNode>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("ingest_addr", &self.ingest_addr)
            .field("metrics_addr", &self.metrics_addr)
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Binds both listeners, runs one synchronous spool scan (so tenants
    /// already in the spool are serving before the first connection is
    /// accepted), and spawns the accept, metrics and watcher threads.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] when a listener cannot bind. A missing or
    /// unreadable spool directory is *not* a startup error: the watcher
    /// reports it as a scan failure every poll and recovers the moment
    /// the directory appears.
    pub fn start(config: DaemonConfig) -> Result<Self, DaemonError> {
        let registry = Arc::new(EngineRegistry::new());
        let metrics = Arc::new(DaemonMetrics::new());
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            registry: Arc::clone(&registry),
            metrics: Arc::clone(&metrics),
            stop: Arc::clone(&stop),
            lanes: RwLock::new(HashMap::new()),
            workers: Mutex::new(Vec::new()),
            queue_capacity: config.queue_capacity,
            max_frame_len: config.max_frame_len,
            shards: config.shards,
            frame_timeout: config.frame_timeout,
        });

        let mut watcher = SpoolWatcher::new(Arc::clone(&registry), &config.spool)
            .with_interval(config.poll_interval);
        match watcher.poll_once() {
            Ok(events) => {
                for event in events {
                    apply_spool_event(&shared, &event);
                }
            }
            Err(error) => {
                shared
                    .metrics
                    .record_spool_event(&SpoolEvent::ScanFailed { error });
            }
        }

        let ingest = TcpListener::bind(&config.ingest_addr)?;
        let metrics_listener = TcpListener::bind(&config.metrics_addr)?;
        let ingest_addr = ingest.local_addr()?;
        let metrics_addr = metrics_listener.local_addr()?;

        // Optional GHSF fleet endpoint: replicated bundles land in the
        // same spool the watcher polls, so a fleet deploy is exactly a
        // local hot-reload whose file arrived over TCP. State queries
        // export the live adaptive baseline for fleet-wide reduction.
        let fleet_node = match &config.fleet_addr {
            None => None,
            Some(addr) => {
                use std::net::ToSocketAddrs;
                let addr = addr
                    .to_socket_addrs()
                    .map_err(|e| DaemonError::Io(e.to_string()))?
                    .next()
                    .ok_or_else(|| {
                        DaemonError::Io(format!("fleet address '{addr}' resolves to nothing"))
                    })?;
                let state_registry = Arc::clone(&registry);
                let event_metrics = Arc::clone(&metrics);
                let node = ghsom_comms::FleetNode::start(
                    ghsom_comms::FleetNodeConfig::new(addr, &config.spool)
                        .with_max_frame_len(config.max_frame_len)
                        .with_frame_timeout(config.frame_timeout),
                    Arc::new(move |tenant: &str| {
                        state_registry
                            .get(tenant)
                            .ok()
                            .map(|engine| engine.stream_state().to_wire().to_vec())
                    }),
                    Arc::new(move |event: &ghsom_comms::NodeEvent| {
                        event_metrics.record_fleet_event(event);
                    }),
                )
                .map_err(|e| DaemonError::Io(e.to_string()))?;
                Some(node)
            }
        };

        let mut threads = Vec::with_capacity(3);

        let watcher_shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            let stop = Arc::clone(&watcher_shared.stop);
            watcher.run(&stop, |event| {
                apply_spool_event(&watcher_shared, &event);
            });
        }));

        let accept_shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            accept_loop(&accept_shared, &ingest);
        }));

        let metrics_shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            metrics_loop(&metrics_shared, &metrics_listener);
        }));

        Ok(Daemon {
            shared,
            ingest_addr,
            metrics_addr,
            fleet_node,
            threads,
        })
    }

    /// Address the ingest listener actually bound (resolves `:0`).
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// Address the metrics listener actually bound.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_addr
    }

    /// Address the GHSF fleet endpoint actually bound, when
    /// [`DaemonConfig::with_fleet_addr`] enabled one.
    pub fn fleet_addr(&self) -> Option<SocketAddr> {
        self.fleet_node.as_ref().map(|n| n.local_addr())
    }

    /// The registry the spool watcher keeps live.
    pub fn registry(&self) -> &Arc<EngineRegistry> {
        &self.shared.registry
    }

    /// The daemon's metrics root (the same counters the metrics listener
    /// renders).
    pub fn metrics(&self) -> &Arc<DaemonMetrics> {
        &self.shared.metrics
    }

    /// Signals every thread to stop and joins them all: the accept loop
    /// (which joins its connections), the metrics loop, the watcher, and
    /// every tenant worker (which first drain their lanes).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // The fleet endpoint stops first: no new bundles land while the
        // serving threads wind down.
        if let Some(mut node) = self.fleet_node.take() {
            node.stop_and_join();
        }
        // Dropping the lane senders lets each worker drain and exit.
        self.shared.lanes.write().clear();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        let workers: Vec<JoinHandle<()>> = self.shared.workers.lock().drain(..).collect();
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Folds one watcher event into metrics and, on retirement, drops the
/// tenant's lane so its worker drains and exits.
fn apply_spool_event(shared: &Shared, event: &SpoolEvent) {
    if let SpoolEvent::Retired { tenant, .. } = event {
        shared.lanes.write().remove(tenant.as_str());
    }
    shared.metrics.record_spool_event(event);
}

// ---------------------------------------------------------------------------
// accept + metrics loops
// ---------------------------------------------------------------------------

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(shared);
                connections.push(std::thread::spawn(move || {
                    handle_connection(&conn_shared, stream);
                }));
                connections.retain(|h| !h.is_finished());
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

fn metrics_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let body = shared.metrics.render();
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                let _ = stream.write_all(body.as_bytes());
                let _ = stream.shutdown(Shutdown::Both);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

// ---------------------------------------------------------------------------
// per-connection reader + writer
// ---------------------------------------------------------------------------

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    shared.metrics.connection_opened();
    serve_connection(shared, stream);
    shared.metrics.connection_closed();
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(TICK)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel::<Vec<u8>>(shared.queue_capacity);
    let writer_stop = Arc::clone(&shared.stop);
    let writer = std::thread::spawn(move || {
        writer_loop(write_half, &reply_rx, &writer_stop);
    });

    if let Err(error) = read_loop(shared, &stream, &reply_tx) {
        // Protocol violation: best-effort typed reject, then close. The
        // byte stream has lost framing, so the connection cannot go on.
        shared.metrics.record_malformed();
        let code = reject_code_for(&error);
        if let Ok(frame) = protocol::encode_response(&Response::Reject(Reject {
            req_id: 0,
            code,
            detail: error.to_string(),
        })) {
            let _ = reply_tx.try_send(frame);
        }
    }
    drop(reply_tx);
    // The writer exits once every queued response (including ones still
    // owed by in-flight jobs holding reply senders) has been delivered
    // or the peer stops accepting them, then shuts the socket down.
    let _ = writer.join();
}

/// Maps a reader-side protocol error to the reject code sent before the
/// connection closes.
fn reject_code_for(error: &DaemonError) -> RejectCode {
    match error {
        DaemonError::FrameTooLarge { .. } => RejectCode::TooLarge,
        DaemonError::UnsupportedVersion { .. } | DaemonError::UnknownFrameType(_) => {
            RejectCode::Unsupported
        }
        _ => RejectCode::Malformed,
    }
}

fn writer_loop(mut stream: TcpStream, replies: &Receiver<Vec<u8>>, stop: &AtomicBool) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    loop {
        match replies.recv_timeout(TICK) {
            Ok(frame) => {
                if stream.write_all(&frame).is_err() {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Unblocks the reader (its next read errors) and tells the peer the
    // conversation is over.
    let _ = stream.shutdown(Shutdown::Both);
}

/// What one frame-sized read produced.
enum ReadStatus {
    /// The buffer is full.
    Complete,
    /// Zero bytes were read before a clean EOF (only possible at a frame
    /// boundary) or the daemon is stopping.
    Closed,
}

/// Fills `buf` from the socket, waking every [`TICK`] to check the stop
/// flag and the frame deadline. `deadline` is armed at the first byte
/// (by the header read) and shared with the payload read, so a whole
/// frame must land within one frame-timeout window
/// ([`DaemonConfig::with_frame_timeout`]).
fn read_full(
    stream: &TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    frame_timeout: Duration,
    deadline: &mut Option<Instant>,
) -> Result<ReadStatus, DaemonError> {
    let mut filled = 0usize;
    let mut reader = stream;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && deadline.is_none() {
                    Ok(ReadStatus::Closed)
                } else {
                    Err(DaemonError::Disconnected)
                };
            }
            Ok(n) => {
                if deadline.is_none() {
                    *deadline = Some(Instant::now() + frame_timeout);
                }
                filled += n;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Relaxed) {
                    return Ok(ReadStatus::Closed);
                }
                if let Some(d) = deadline {
                    if Instant::now() >= *d {
                        return Err(DaemonError::TimedOut);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(DaemonError::from(e)),
        }
    }
    Ok(ReadStatus::Complete)
}

/// Reads and dispatches frames until clean EOF, stop, or a protocol
/// error (returned for the caller to turn into a closing reject).
fn read_loop(
    shared: &Arc<Shared>,
    stream: &TcpStream,
    reply: &SyncSender<Vec<u8>>,
) -> Result<(), DaemonError> {
    let mut payload = Vec::new();
    loop {
        let mut deadline: Option<Instant> = None;
        let mut header_bytes = [0u8; HEADER_LEN];
        match read_full(
            stream,
            &mut header_bytes,
            &shared.stop,
            shared.frame_timeout,
            &mut deadline,
        )? {
            ReadStatus::Closed => return Ok(()),
            ReadStatus::Complete => {}
        }
        let header = FrameHeader::decode(&header_bytes, shared.max_frame_len)?;
        payload.clear();
        payload.resize(header.payload_len, 0);
        match read_full(
            stream,
            &mut payload,
            &shared.stop,
            shared.frame_timeout,
            &mut deadline,
        )? {
            ReadStatus::Closed => return Ok(()),
            ReadStatus::Complete => {}
        }
        shared.metrics.frame_received();
        match protocol::decode_request(header.frame_type, &payload)? {
            Request::Ping => {
                let frame = protocol::encode_response(&Response::Pong)?;
                let _ = reply.send(frame);
            }
            Request::Batch(batch) => admit_batch(shared, batch, reply),
        }
    }
}

/// Admission control: route an already-decoded batch onto its tenant's
/// bounded lane, or answer with a typed reject. Rejects here keep the
/// connection open — the stream is still framed correctly.
fn admit_batch(shared: &Arc<Shared>, batch: protocol::BatchRequest, reply: &SyncSender<Vec<u8>>) {
    let record_count = batch.records.len();
    if !shared.registry.contains(&batch.tenant) {
        shared.metrics.record_unknown_tenant();
        send_reject(
            reply,
            batch.req_id,
            RejectCode::UnknownTenant,
            format!("no engine deployed for tenant '{}'", batch.tenant),
        );
        return;
    }
    let tenant_metrics = shared.metrics.tenant(&batch.tenant);
    let lane = lane_for(shared, &batch.tenant);
    let job = Job {
        req_id: batch.req_id,
        mode: batch.mode,
        records: batch.records,
        reply: reply.clone(),
    };
    match lane.try_send(job) {
        Ok(()) => tenant_metrics.queue_entered(),
        Err(TrySendError::Full(job)) => {
            tenant_metrics.record_overload(record_count as u64);
            send_reject(
                reply,
                job.req_id,
                RejectCode::Overloaded,
                format!(
                    "tenant '{}' ingest queue is full ({} batches)",
                    batch.tenant, shared.queue_capacity
                ),
            );
        }
        Err(TrySendError::Disconnected(job)) => {
            // The worker exited between lookup and send (tenant retired
            // mid-flight). Drop the lane entry and reject; the client
            // can retry and will get UnknownTenant or a fresh lane. (If
            // a fresh lane raced in, removing it only makes its worker
            // drain and exit early — the next batch recreates it.)
            shared.lanes.write().remove(&batch.tenant);
            tenant_metrics.record_internal_reject();
            send_reject(
                reply,
                job.req_id,
                RejectCode::Internal,
                format!("tenant '{}' worker is gone", batch.tenant),
            );
        }
    }
}

fn send_reject(reply: &SyncSender<Vec<u8>>, req_id: u64, code: RejectCode, detail: String) {
    if let Ok(frame) = protocol::encode_response(&Response::Reject(Reject {
        req_id,
        code,
        detail,
    })) {
        let _ = reply.send(frame);
    }
}

/// The tenant's lane sender, creating the lane and its worker thread on
/// first use.
fn lane_for(shared: &Arc<Shared>, tenant: &str) -> SyncSender<Job> {
    if let Some(tx) = shared.lanes.read().get(tenant) {
        return tx.clone();
    }
    let mut lanes = shared.lanes.write();
    if let Some(tx) = lanes.get(tenant) {
        return tx.clone();
    }
    let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(shared.queue_capacity);
    let worker_shared = Arc::clone(shared);
    let worker_tenant = tenant.to_string();
    let handle = std::thread::spawn(move || {
        worker_loop(&worker_shared, &worker_tenant, &rx);
    });
    shared.workers.lock().push(handle);
    lanes.insert(tenant.to_string(), tx.clone());
    tx
}

// ---------------------------------------------------------------------------
// tenant workers
// ---------------------------------------------------------------------------

/// Drains one tenant's lane until every sender is gone (tenant retired
/// or daemon shutdown), scoring whole batches against the registry's
/// current engine so every batch sees post-swap engines immediately.
fn worker_loop(shared: &Arc<Shared>, tenant: &str, lane: &Receiver<Job>) {
    let tenant_metrics = shared.metrics.tenant(tenant);
    while let Ok(job) = lane.recv() {
        tenant_metrics.queue_left();
        let started = Instant::now();
        let outcome = score_batch(shared, tenant, job.mode, &job.records);
        let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        match outcome {
            Ok(verdicts) => {
                let flagged = match &verdicts {
                    VerdictPayload::Hybrid(v) => v.iter().filter(|v| v.anomalous).count(),
                    VerdictPayload::Stream(v) => v.iter().filter(|v| v.anomalous).count(),
                };
                tenant_metrics.record_batch(job.records.len() as u64, flagged as u64, elapsed_us);
                match protocol::encode_response(&Response::Verdicts {
                    req_id: job.req_id,
                    verdicts,
                }) {
                    Ok(frame) => {
                        // Blocking send: this is the backpressure edge.
                        // Errors only when the connection is gone.
                        let _ = job.reply.send(frame);
                    }
                    Err(_) => {
                        tenant_metrics.record_internal_reject();
                        send_reject(
                            &job.reply,
                            job.req_id,
                            RejectCode::Internal,
                            "verdict batch failed to encode".to_string(),
                        );
                    }
                }
            }
            Err(error) => {
                tenant_metrics.record_internal_reject();
                send_reject(
                    &job.reply,
                    job.req_id,
                    RejectCode::Internal,
                    error.to_string(),
                );
            }
        }
    }
}

fn score_batch(
    shared: &Shared,
    tenant: &str,
    mode: BatchMode,
    records: &[ConnectionRecord],
) -> Result<VerdictPayload, ghsom_serve::ServeError> {
    if shared.shards > 1 {
        let sharded = shared.registry.sharded(tenant, shared.shards)?;
        match mode {
            BatchMode::Score => Ok(VerdictPayload::Hybrid(sharded.score_records(records)?)),
            BatchMode::Observe => Ok(VerdictPayload::Stream(sharded.observe_records(records)?)),
        }
    } else {
        match mode {
            BatchMode::Score => Ok(VerdictPayload::Hybrid(
                shared.registry.score_records(tenant, records)?,
            )),
            BatchMode::Observe => Ok(VerdictPayload::Stream(
                shared.registry.observe_records(tenant, records)?,
            )),
        }
    }
}
