//! The fleet router: fan one GHSD record stream out across N daemon
//! endpoints and reduce their answers back into one.
//!
//! [`FleetClient`] mirrors `ghsom-serve`'s `ShardedEngine` one level
//! up: where the sharded engine splits a batch into contiguous chunks
//! across *threads* and concatenates verdicts in order, the fleet
//! client splits it into contiguous chunks across *daemons* and
//! concatenates in order. Because scoring is deterministic per record,
//! the routed verdicts are bit-identical to a single engine scoring the
//! whole batch — regardless of how many nodes served it.
//!
//! Failure semantics are typed and bounded:
//!
//! - **Score** batches are idempotent (they touch no baseline), so a
//!   chunk whose node fails is retried on the other healthy nodes —
//!   each chunk tries each node at most once per call. Chunks no node
//!   could serve come back as [`FleetError::Partial`] naming the exact
//!   record ranges, never as a silent gap and never as a hang (every
//!   socket wears a read timeout).
//! - **Observe** batches mutate the target node's adaptive baseline,
//!   so they are routed whole to one node (round-robin) and **never**
//!   retried — a retry after an ambiguous failure could double-count
//!   records into a baseline. The typed error tells the caller exactly
//!   which node took the failure.
//! - A node that fails at the transport level is marked down and not
//!   retried until a backoff window passes ([`FleetClient::with_backoff`]);
//!   protocol-level rejects (e.g. `UnknownTenant` mid-rolling-deploy)
//!   fail over without tarring the node as down.
//!
//! Fleet-wide baselines reduce through `StreamState::merge_all` over
//! the per-node states fetched from each daemon's GHSF endpoint — the
//! collector-side reduction documented in `detect::online`.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use detect::hybrid::HybridVerdict;
use detect::online::{StreamState, StreamVerdict};
use detect::DetectError;
use ghsom_comms::{CommsError, Replicator};
use traffic::ConnectionRecord;

use crate::client::DaemonClient;
use crate::error::{DaemonError, RejectCode};

/// Smallest record chunk worth routing to a distinct node — mirrors
/// `ShardedEngine`'s per-thread floor, one level up.
pub const FLEET_MIN_CHUNK: usize = 64;

/// Default per-node socket read timeout: the "never a hang" bound.
pub const DEFAULT_NODE_TIMEOUT: Duration = Duration::from_secs(10);

/// Default down-node backoff: how long a transport-failed node sits out
/// before the router offers it work again.
pub const DEFAULT_BACKOFF: Duration = Duration::from_secs(1);

/// One daemon in the fleet: its GHSD ingest address and, optionally,
/// its GHSF fleet endpoint (needed only for baseline state queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetEndpoint {
    /// GHSD ingest listener (`Daemon::ingest_addr`).
    pub ingest: SocketAddr,
    /// GHSF fleet endpoint (`Daemon::fleet_addr`), when the node runs
    /// one.
    pub fleet: Option<SocketAddr>,
}

impl FleetEndpoint {
    /// An endpoint with no GHSF side (scoring fan-out only).
    pub fn ingest_only(ingest: SocketAddr) -> Self {
        FleetEndpoint {
            ingest,
            fleet: None,
        }
    }
}

/// Errors produced by the fleet router.
///
/// The enum is `#[non_exhaustive]`. `Partial` is the graceful
/// degradation path: it names exactly which contiguous record ranges
/// went unserved so a caller can re-drive just those.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// The client was built with an empty node list.
    NoNodes,
    /// Every node was down or refused the batch.
    AllNodesDown {
        /// Tenant the batch addressed.
        tenant: String,
    },
    /// Some chunks were served, some were not: the typed partial
    /// failure. Served chunks' verdicts were discarded — re-drive the
    /// whole batch or just the missing ranges.
    Partial {
        /// Total records in the batch.
        total: usize,
        /// Unserved record ranges, as `(start, end)` half-open indices
        /// into the submitted batch, ascending and non-overlapping.
        missing: Vec<(usize, usize)>,
        /// The last per-node error seen while trying the missing
        /// ranges, for the operator.
        detail: String,
    },
    /// A single-node operation (observe) failed on the node it was
    /// routed to. The batch was **not** retried elsewhere: observation
    /// mutates the baseline, and a retry after an ambiguous failure
    /// could double-count.
    Node {
        /// The node that failed.
        node: SocketAddr,
        /// The underlying daemon-plane error.
        source: DaemonError,
    },
    /// A GHSF state query failed on one node.
    State {
        /// The node that failed.
        node: SocketAddr,
        /// The underlying comms-plane error.
        source: CommsError,
    },
    /// A state query needs nodes with GHSF endpoints, and none were
    /// configured.
    NoFleetEndpoints,
    /// A node returned state bytes that do not decode as a
    /// `StreamState`.
    BadState {
        /// The node that sent them.
        node: SocketAddr,
        /// Why they were refused.
        reason: &'static str,
    },
    /// The per-node baselines failed to merge (inconsistent or
    /// non-finite state — see `StreamState::merge`).
    Merge(DetectError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoNodes => write!(f, "fleet client has no nodes"),
            FleetError::AllNodesDown { tenant } => {
                write!(f, "no fleet node could serve tenant '{tenant}'")
            }
            FleetError::Partial {
                total,
                missing,
                detail,
            } => {
                let lost: usize = missing.iter().map(|(s, e)| e - s).sum();
                write!(
                    f,
                    "partial fleet result: {lost} of {total} records unserved (ranges {missing:?}); last error: {detail}"
                )
            }
            FleetError::Node { node, source } => {
                write!(f, "fleet node {node} failed: {source}")
            }
            FleetError::State { node, source } => {
                write!(f, "state query to {node} failed: {source}")
            }
            FleetError::NoFleetEndpoints => {
                write!(f, "no node has a GHSF fleet endpoint configured")
            }
            FleetError::BadState { node, reason } => {
                write!(f, "node {node} sent an invalid baseline state: {reason}")
            }
            FleetError::Merge(e) => write!(f, "fleet baseline merge failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Node { source, .. } => Some(source),
            FleetError::State { source, .. } => Some(source),
            FleetError::Merge(e) => Some(e),
            _ => None,
        }
    }
}

/// One node's routing state.
struct Slot {
    endpoint: FleetEndpoint,
    conn: Option<DaemonClient>,
    down_until: Option<Instant>,
}

/// A router over N daemon endpoints: contiguous-chunk score fan-out
/// with ordered concatenation, round-robin observe routing, per-node
/// health/backoff, and fleet-wide baseline reduction.
pub struct FleetClient {
    slots: Vec<Slot>,
    backoff: Duration,
    node_timeout: Duration,
    failover: bool,
    rr: usize,
}

impl FleetClient {
    /// A client over the given endpoints. Connections are opened
    /// lazily, so building the client never blocks on a dead node.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoNodes`] when `endpoints` is empty.
    pub fn new(endpoints: Vec<FleetEndpoint>) -> Result<Self, FleetError> {
        if endpoints.is_empty() {
            return Err(FleetError::NoNodes);
        }
        Ok(FleetClient {
            slots: endpoints
                .into_iter()
                .map(|endpoint| Slot {
                    endpoint,
                    conn: None,
                    down_until: None,
                })
                .collect(),
            backoff: DEFAULT_BACKOFF,
            node_timeout: DEFAULT_NODE_TIMEOUT,
            failover: true,
            rr: 0,
        })
    }

    /// A client over ingest addresses only (no GHSF endpoints; state
    /// queries will return [`FleetError::NoFleetEndpoints`]).
    ///
    /// # Errors
    ///
    /// [`FleetError::NoNodes`] when `addrs` is empty.
    pub fn over_ingest(addrs: Vec<SocketAddr>) -> Result<Self, FleetError> {
        Self::new(addrs.into_iter().map(FleetEndpoint::ingest_only).collect())
    }

    /// Overrides the down-node backoff window. `Duration::ZERO` makes
    /// failed nodes immediately eligible again (deterministic tests).
    #[must_use]
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Overrides the per-node read timeout.
    #[must_use]
    pub fn with_node_timeout(mut self, timeout: Duration) -> Self {
        self.node_timeout = timeout;
        self
    }

    /// Enables/disables score-chunk failover. With failover off a
    /// chunk is tried only on its primary node — useful for observing
    /// deterministic partial failures.
    #[must_use]
    pub fn with_failover(mut self, failover: bool) -> Self {
        self.failover = failover;
        self
    }

    /// How many nodes are currently eligible (not inside a backoff
    /// window).
    pub fn healthy_nodes(&self) -> usize {
        let now = Instant::now();
        self.slots.iter().filter(|s| slot_healthy(s, now)).count()
    }

    /// Scores a batch across the fleet: contiguous chunks over the
    /// healthy nodes, verdicts concatenated in record order —
    /// bit-identical to one engine scoring the whole batch.
    ///
    /// # Errors
    ///
    /// [`FleetError::AllNodesDown`] when nothing was served;
    /// [`FleetError::Partial`] naming the unserved ranges when only
    /// some chunks found a node.
    pub fn score(
        &mut self,
        tenant: &str,
        records: &[ConnectionRecord],
    ) -> Result<Vec<HybridVerdict>, FleetError> {
        if records.is_empty() {
            return Ok(Vec::new());
        }
        let healthy = self.healthy_indices();
        if healthy.is_empty() {
            return Err(FleetError::AllNodesDown {
                tenant: tenant.to_string(),
            });
        }
        let chunk = chunk_len(records.len(), healthy.len());
        let ranges: Vec<(usize, usize)> = (0..records.len())
            .step_by(chunk)
            .map(|start| (start, (start + chunk).min(records.len())))
            .collect();

        let mut verdicts: Vec<Option<Vec<HybridVerdict>>> = vec![None; ranges.len()];
        let mut missing: Vec<(usize, usize)> = Vec::new();
        let mut last_error = String::new();
        for (k, &(start, end)) in ranges.iter().enumerate() {
            let slice = records.get(start..end).unwrap_or_default();
            // Primary node k % healthy, then (with failover) the rest —
            // each node tried at most once per chunk.
            let mut served = false;
            let candidates = healthy.len();
            let tried = if self.failover { candidates } else { 1 };
            for attempt in 0..tried {
                let Some(&slot_idx) = healthy.get((k + attempt) % candidates) else {
                    continue;
                };
                match self.score_on(slot_idx, tenant, slice) {
                    Ok(v) => {
                        if let Some(cell) = verdicts.get_mut(k) {
                            *cell = Some(v);
                        }
                        served = true;
                        break;
                    }
                    Err(e) => {
                        last_error = e.to_string();
                        if transport_failure(&e) {
                            self.mark_down(slot_idx);
                        }
                    }
                }
            }
            if !served {
                missing.push((start, end));
            }
        }

        if missing.is_empty() {
            let mut out = Vec::with_capacity(records.len());
            for v in verdicts.into_iter().flatten() {
                out.extend(v);
            }
            return Ok(out);
        }
        let lost: usize = missing.iter().map(|(s, e)| e - s).sum();
        if lost == records.len() {
            return Err(FleetError::AllNodesDown {
                tenant: tenant.to_string(),
            });
        }
        Err(FleetError::Partial {
            total: records.len(),
            missing,
            detail: last_error,
        })
    }

    /// Observes a batch on **one** node (round-robin over the healthy
    /// set). Never retried: observation mutates that node's adaptive
    /// baseline, and a retry after an ambiguous failure could
    /// double-count records.
    ///
    /// # Errors
    ///
    /// [`FleetError::AllNodesDown`] when no node is eligible;
    /// [`FleetError::Node`] naming the node that took (and failed) the
    /// batch.
    pub fn observe(
        &mut self,
        tenant: &str,
        records: &[ConnectionRecord],
    ) -> Result<Vec<StreamVerdict>, FleetError> {
        let healthy = self.healthy_indices();
        if healthy.is_empty() {
            return Err(FleetError::AllNodesDown {
                tenant: tenant.to_string(),
            });
        }
        let pick = self.rr % healthy.len();
        self.rr = self.rr.wrapping_add(1);
        let Some(&slot_idx) = healthy.get(pick) else {
            return Err(FleetError::AllNodesDown {
                tenant: tenant.to_string(),
            });
        };
        let node = self
            .slots
            .get(slot_idx)
            .map(|s| s.endpoint.ingest)
            .unwrap_or(([0, 0, 0, 0], 0).into());
        match self.observe_on(slot_idx, tenant, records) {
            Ok(v) => Ok(v),
            Err(source) => {
                if transport_failure(&source) {
                    self.mark_down(slot_idx);
                }
                Err(FleetError::Node { node, source })
            }
        }
    }

    /// Fetches every node's exported baseline for `tenant` over GHSF
    /// and reduces them with `StreamState::merge_all` (node order =
    /// endpoint order; nodes without the tenant contribute nothing).
    ///
    /// # Errors
    ///
    /// [`FleetError::NoFleetEndpoints`] when no node has a GHSF
    /// address; [`FleetError::State`]/[`FleetError::BadState`] for a
    /// failing or lying node; [`FleetError::Merge`] when the states
    /// don't reduce.
    pub fn fleet_state(&mut self, tenant: &str) -> Result<StreamState, FleetError> {
        let mut states: Vec<StreamState> = Vec::new();
        let mut queried = 0usize;
        for slot in &self.slots {
            let Some(fleet_addr) = slot.endpoint.fleet else {
                continue;
            };
            queried += 1;
            let mut rep = Replicator::connect_with_timeout(fleet_addr, self.node_timeout).map_err(
                |source| FleetError::State {
                    node: fleet_addr,
                    source,
                },
            )?;
            let reply = rep
                .query_state(tenant)
                .map_err(|source| FleetError::State {
                    node: fleet_addr,
                    source,
                })?;
            if let Some(bytes) = reply {
                let Ok(wire): Result<[u8; StreamState::WIRE_LEN], _> = bytes.as_slice().try_into()
                else {
                    return Err(FleetError::BadState {
                        node: fleet_addr,
                        reason: "state payload is not 40 bytes",
                    });
                };
                let state = StreamState::from_wire(&wire).map_err(|_| FleetError::BadState {
                    node: fleet_addr,
                    reason: "state bytes failed validation",
                })?;
                states.push(state);
            }
        }
        if queried == 0 {
            return Err(FleetError::NoFleetEndpoints);
        }
        StreamState::merge_all(&states).map_err(FleetError::Merge)
    }

    fn healthy_indices(&self) -> Vec<usize> {
        let now = Instant::now();
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| slot_healthy(s, now))
            .map(|(i, _)| i)
            .collect()
    }

    fn mark_down(&mut self, idx: usize) {
        if let Some(slot) = self.slots.get_mut(idx) {
            slot.conn = None;
            slot.down_until = Some(Instant::now() + self.backoff);
        }
    }

    fn score_on(
        &mut self,
        idx: usize,
        tenant: &str,
        records: &[ConnectionRecord],
    ) -> Result<Vec<HybridVerdict>, DaemonError> {
        self.with_conn(idx, |conn| conn.score(tenant, records))
    }

    fn observe_on(
        &mut self,
        idx: usize,
        tenant: &str,
        records: &[ConnectionRecord],
    ) -> Result<Vec<StreamVerdict>, DaemonError> {
        self.with_conn(idx, |conn| conn.observe(tenant, records))
    }

    /// Runs `op` on the slot's connection, opening it (with the node
    /// read timeout) if needed. A transport-level failure drops the
    /// cached connection so the next attempt reconnects.
    fn with_conn<T>(
        &mut self,
        idx: usize,
        op: impl FnOnce(&mut DaemonClient) -> Result<T, DaemonError>,
    ) -> Result<T, DaemonError> {
        let timeout = self.node_timeout;
        let Some(slot) = self.slots.get_mut(idx) else {
            return Err(DaemonError::ShuttingDown);
        };
        if slot.conn.is_none() {
            let mut conn = DaemonClient::connect(slot.endpoint.ingest)?;
            conn.set_read_timeout(Some(timeout))?;
            slot.conn = Some(conn);
        }
        let Some(conn) = slot.conn.as_mut() else {
            return Err(DaemonError::ShuttingDown);
        };
        let result = op(conn);
        if let Err(e) = &result {
            if transport_failure(e) {
                slot.conn = None;
            }
        }
        result
    }
}

/// Whether an error means the node itself (or the pipe to it) is
/// unhealthy, as opposed to a well-formed protocol answer. Only
/// transport failures tar a node as down; a typed reject (unknown
/// tenant mid-deploy, momentary overload) fails over without backoff.
fn transport_failure(e: &DaemonError) -> bool {
    !matches!(e, DaemonError::Rejected { code, .. }
        if matches!(code, RejectCode::Overloaded | RejectCode::UnknownTenant))
}

fn slot_healthy(slot: &Slot, now: Instant) -> bool {
    slot.down_until.is_none_or(|until| now >= until)
}

/// Contiguous chunk width for `n` records over `nodes` healthy nodes —
/// the `ShardedEngine` rule one level up: no chunk smaller than
/// [`FLEET_MIN_CHUNK`], width = ceil(n / workers).
fn chunk_len(n: usize, nodes: usize) -> usize {
    let workers = nodes.min(n / FLEET_MIN_CHUNK).max(1);
    n.div_ceil(workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_mirrors_the_sharded_engine_rule() {
        // Below the per-node floor everything stays on one node.
        assert_eq!(chunk_len(63, 3), 63);
        assert_eq!(chunk_len(127, 3), 127);
        // At 3×64 the batch splits three ways.
        assert_eq!(chunk_len(192, 3), 64);
        assert_eq!(chunk_len(1000, 4), 250);
        // More nodes than useful chunks: width respects the floor.
        assert_eq!(chunk_len(130, 16), 65);
        assert_eq!(chunk_len(1, 8), 1);
    }

    #[test]
    fn empty_fleet_is_a_typed_error() {
        assert!(matches!(
            FleetClient::over_ingest(Vec::new()),
            Err(FleetError::NoNodes)
        ));
    }

    #[test]
    fn partial_error_reports_exact_ranges() {
        let e = FleetError::Partial {
            total: 300,
            missing: vec![(100, 200)],
            detail: "connection refused".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("100 of 300"));
        assert!(text.contains("(100, 200)"));
        assert!(text.contains("connection refused"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<FleetError>();
    }

    #[test]
    fn rejects_fail_over_without_tarring_the_node() {
        assert!(!transport_failure(&DaemonError::Rejected {
            req_id: 1,
            code: RejectCode::UnknownTenant,
            detail: String::new()
        }));
        assert!(!transport_failure(&DaemonError::Rejected {
            req_id: 1,
            code: RejectCode::Overloaded,
            detail: String::new()
        }));
        assert!(transport_failure(&DaemonError::Disconnected));
        assert!(transport_failure(&DaemonError::Rejected {
            req_id: 1,
            code: RejectCode::Internal,
            detail: String::new()
        }));
    }
}
