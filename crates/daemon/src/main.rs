//! `ghsom-daemon` — serve GHSOM engines from a bundle spool over TCP.
//!
//! ```text
//! ghsom-daemon --spool /var/spool/ghsom [--listen 127.0.0.1:7700]
//!              [--metrics 127.0.0.1:7701] [--fleet 127.0.0.1:7702]
//!              [--queue-capacity 64] [--shards 1] [--poll-ms 250]
//!              [--frame-timeout-secs 10] [--max-seconds 0]
//! ```
//!
//! The process runs until killed (or for `--max-seconds`, useful under a
//! supervisor or in CI). Drop `<tenant>.bundle` files into the spool to
//! deploy/swap tenants live; scrape the metrics address for plaintext
//! counters. With `--fleet` the daemon additionally listens for GHSF
//! bundle replication from `fleet-ctl`, writing verified bundles into
//! the same spool. See `docs/PROTOCOL.md` and `docs/FLEET.md` for the
//! wire formats, `docs/OPERATIONS.md` for deployment procedures.

#![deny(unsafe_code)]

use std::time::Duration;

use ghsom_daemon::{Daemon, DaemonConfig};

const USAGE: &str = "usage: ghsom-daemon --spool <dir> [--listen <addr>] [--metrics <addr>] \
[--fleet <addr>] [--queue-capacity <batches>] [--shards <n>] [--poll-ms <ms>] \
[--frame-timeout-secs <s>] [--max-seconds <s>]";

fn main() {
    if let Err(message) = run() {
        eprintln!("ghsom-daemon: {message}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spool: Option<String> = None;
    let mut listen = "127.0.0.1:7700".to_string();
    let mut metrics = "127.0.0.1:7701".to_string();
    let mut fleet: Option<String> = None;
    let mut queue_capacity = 64usize;
    let mut shards = 1usize;
    let mut poll_ms = 250u64;
    let mut frame_timeout_secs = 10u64;
    let mut max_seconds = 0u64;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            "--spool" => spool = Some(required(&mut it, flag)?),
            "--listen" => listen = required(&mut it, flag)?,
            "--metrics" => metrics = required(&mut it, flag)?,
            "--fleet" => fleet = Some(required(&mut it, flag)?),
            "--queue-capacity" => queue_capacity = parsed(&mut it, flag)?,
            "--shards" => shards = parsed(&mut it, flag)?,
            "--poll-ms" => poll_ms = parsed(&mut it, flag)?,
            "--frame-timeout-secs" => frame_timeout_secs = parsed(&mut it, flag)?,
            "--max-seconds" => max_seconds = parsed(&mut it, flag)?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let spool = spool.ok_or_else(|| "--spool is required".to_string())?;

    let mut config = DaemonConfig::new(&spool)
        .with_ingest_addr(&listen)
        .with_metrics_addr(&metrics)
        .with_queue_capacity(queue_capacity)
        .with_shards(shards)
        .with_poll_interval(Duration::from_millis(poll_ms))
        .with_frame_timeout(Duration::from_secs(frame_timeout_secs));
    if let Some(addr) = &fleet {
        config = config.with_fleet_addr(addr);
    }
    let daemon = Daemon::start(config).map_err(|e| e.to_string())?;
    println!("ghsom-daemon serving spool {spool}");
    println!("  ingest  {}", daemon.ingest_addr());
    println!("  metrics {}", daemon.metrics_addr());
    if let Some(addr) = daemon.fleet_addr() {
        println!("  fleet   {addr}");
    }

    if max_seconds == 0 {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_secs(max_seconds));
    daemon.shutdown();
    Ok(())
}

fn required(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parsed<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    let raw = required(it, flag)?;
    raw.parse()
        .map_err(|_| format!("{flag} value '{raw}' is not valid"))
}
