//! The GHSD wire protocol: length-prefixed binary frames over TCP.
//!
//! The normative specification lives in `docs/PROTOCOL.md`; this module is
//! its reference implementation. The short version:
//!
//! ```text
//! frame   := header payload
//! header  := magic(4) version(1) frame_type(1) reserved(2) payload_len(4)   -- 12 bytes, LE
//! magic   := "GHSD"
//! ```
//!
//! Requests are [`FrameType::Batch`] (a tenant-addressed batch of
//! [`ConnectionRecord`]s to score or observe) and [`FrameType::Ping`].
//! Responses are [`FrameType::Verdicts`], [`FrameType::Reject`] and
//! [`FrameType::Pong`]. Every batch carries a client-chosen `req_id` that
//! the server echoes in its response, so a client may pipeline requests
//! and still match responses when typed rejects interleave with verdicts.
//!
//! Decoding is total: any byte sequence either decodes or produces a typed
//! [`DaemonError`] — never a panic, and a hostile declared length is
//! rejected from the 12-byte header alone, before any payload allocation.

use detect::hybrid::HybridVerdict;
use detect::online::StreamVerdict;
use traffic::{AttackType, ConnectionRecord, Flag, Protocol, Service};

use crate::error::{DaemonError, RejectCode};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"GHSD";

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Wire length of one encoded [`ConnectionRecord`]: four categorical code
/// bytes followed by the 38 continuous features as little-endian `f64`s.
pub const RECORD_WIRE_LEN: usize = 4 + ConnectionRecord::CONTINUOUS_COUNT * 8;

/// Default cap on a frame's declared payload length (8 MiB, ~27k records).
pub const DEFAULT_MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Longest tenant name the protocol carries.
pub const MAX_TENANT_LEN: usize = 255;

/// Longest reject detail string the server will send.
pub const MAX_REJECT_DETAIL_LEN: usize = 512;

/// Discriminates the five frame kinds. Request types have the high bit
/// clear, response types have it set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameType {
    /// Client → server: a batch of records for one tenant.
    Batch,
    /// Client → server: liveness probe.
    Ping,
    /// Server → client: one verdict per record of an admitted batch.
    Verdicts,
    /// Server → client: typed refusal of a request.
    Reject,
    /// Server → client: answer to [`FrameType::Ping`].
    Pong,
}

impl FrameType {
    /// The frozen wire byte of this frame type.
    pub fn to_wire(self) -> u8 {
        match self {
            FrameType::Batch => 0x01,
            FrameType::Ping => 0x02,
            FrameType::Verdicts => 0x81,
            FrameType::Reject => 0x82,
            FrameType::Pong => 0x83,
        }
    }

    /// Decodes a wire byte.
    ///
    /// # Errors
    ///
    /// [`DaemonError::UnknownFrameType`] for any other byte.
    pub fn from_wire(byte: u8) -> Result<Self, DaemonError> {
        match byte {
            0x01 => Ok(FrameType::Batch),
            0x02 => Ok(FrameType::Ping),
            0x81 => Ok(FrameType::Verdicts),
            0x82 => Ok(FrameType::Reject),
            0x83 => Ok(FrameType::Pong),
            other => Err(DaemonError::UnknownFrameType(other)),
        }
    }

    /// `true` for frame types a client sends.
    pub fn is_request(self) -> bool {
        matches!(self, FrameType::Batch | FrameType::Ping)
    }
}

/// What the server should do with a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BatchMode {
    /// Hybrid scoring only; the adaptive baseline is not updated. The
    /// response carries [`HybridVerdict`]s.
    Score,
    /// Score *and* fold the batch into the tenant's streaming baseline.
    /// The response carries [`StreamVerdict`]s.
    Observe,
}

impl BatchMode {
    /// The frozen wire byte of this mode.
    pub fn to_wire(self) -> u8 {
        match self {
            BatchMode::Score => 0,
            BatchMode::Observe => 1,
        }
    }

    /// Decodes a wire byte.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Malformed`] for any other byte.
    pub fn from_wire(byte: u8) -> Result<Self, DaemonError> {
        match byte {
            0 => Ok(BatchMode::Score),
            1 => Ok(BatchMode::Observe),
            _ => Err(DaemonError::Malformed("unknown batch mode byte")),
        }
    }
}

/// A validated frame header: the frame type plus how many payload bytes
/// follow the 12 header bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Kind of frame the payload encodes.
    pub frame_type: FrameType,
    /// Payload length in bytes (already checked against the caller's cap).
    pub payload_len: usize,
}

impl FrameHeader {
    /// Encodes the 12 header bytes.
    pub fn encode(frame_type: FrameType, payload_len: u32) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[..4].copy_from_slice(&MAGIC);
        out[4] = VERSION;
        out[5] = frame_type.to_wire();
        // bytes 6..8 stay zero (reserved)
        out[8..].copy_from_slice(&payload_len.to_le_bytes());
        out
    }

    /// Validates 12 header bytes against `max_frame_len`.
    ///
    /// The declared payload length is checked *here*, before the caller
    /// reads (or allocates for) a single payload byte.
    ///
    /// # Errors
    ///
    /// [`DaemonError::BadMagic`], [`DaemonError::UnsupportedVersion`],
    /// [`DaemonError::UnknownFrameType`], [`DaemonError::ReservedNonZero`]
    /// or [`DaemonError::FrameTooLarge`].
    pub fn decode(bytes: &[u8; HEADER_LEN], max_frame_len: usize) -> Result<Self, DaemonError> {
        if bytes[..4] != MAGIC {
            return Err(DaemonError::BadMagic);
        }
        if bytes[4] != VERSION {
            return Err(DaemonError::UnsupportedVersion {
                found: bytes[4],
                supported: VERSION,
            });
        }
        let frame_type = FrameType::from_wire(bytes[5])?;
        if bytes[6] != 0 || bytes[7] != 0 {
            return Err(DaemonError::ReservedNonZero);
        }
        let declared = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        if declared > max_frame_len {
            return Err(DaemonError::FrameTooLarge {
                declared,
                max: max_frame_len,
            });
        }
        Ok(FrameHeader {
            frame_type,
            payload_len: declared,
        })
    }
}

/// A batch of records addressed to one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// Client-chosen id, echoed verbatim in the response.
    pub req_id: u64,
    /// Score-only or score-and-observe.
    pub mode: BatchMode,
    /// Registry tenant the batch is for (1–255 UTF-8 bytes).
    pub tenant: String,
    /// The records to score, in order; verdicts come back in the same
    /// order.
    pub records: Vec<ConnectionRecord>,
}

/// A decoded client → server frame.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Request {
    /// A batch of records for one tenant.
    Batch(BatchRequest),
    /// Liveness probe.
    Ping,
}

/// The per-record verdicts of an admitted batch; the variant matches the
/// request's [`BatchMode`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VerdictPayload {
    /// Verdicts of a [`BatchMode::Score`] batch.
    Hybrid(Vec<HybridVerdict>),
    /// Verdicts of a [`BatchMode::Observe`] batch.
    Stream(Vec<StreamVerdict>),
}

impl VerdictPayload {
    /// Number of verdicts carried.
    pub fn len(&self) -> usize {
        match self {
            VerdictPayload::Hybrid(v) => v.len(),
            VerdictPayload::Stream(v) => v.len(),
        }
    }

    /// `true` when no verdicts are carried.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A typed refusal. `req_id` is `0` when the request never parsed far
/// enough to recover one.
#[derive(Debug, Clone, PartialEq)]
pub struct Reject {
    /// Echoed request id (`0` if unrecoverable).
    pub req_id: u64,
    /// Why the request was refused.
    pub code: RejectCode,
    /// Operator-facing detail, truncated to [`MAX_REJECT_DETAIL_LEN`].
    pub detail: String,
}

/// A decoded server → client frame.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// Verdicts for an admitted batch, echoing its `req_id`.
    Verdicts {
        /// Echoed request id.
        req_id: u64,
        /// One verdict per record, in request order.
        verdicts: VerdictPayload,
    },
    /// Typed refusal of a request.
    Reject(Reject),
    /// Answer to a ping.
    Pong,
}

// ---------------------------------------------------------------------------
// payload cursor
// ---------------------------------------------------------------------------

/// Bounds-checked reader over a payload slice: every read either yields
/// bytes or a typed [`DaemonError::Truncated`].
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DaemonError> {
        let end = self.pos.checked_add(n).ok_or(DaemonError::Truncated {
            needed: n,
            got: self.remaining(),
        })?;
        match self.buf.get(self.pos..end) {
            Some(slice) => {
                self.pos = end;
                Ok(slice)
            }
            None => Err(DaemonError::Truncated {
                needed: n,
                got: self.remaining(),
            }),
        }
    }

    fn u8(&mut self) -> Result<u8, DaemonError> {
        let b = self.take(1)?;
        Ok(b.first().copied().unwrap_or(0))
    }

    fn u16(&mut self) -> Result<u16, DaemonError> {
        let b = self.take(2)?;
        let mut a = [0u8; 2];
        a.copy_from_slice(b);
        Ok(u16::from_le_bytes(a))
    }

    fn u32(&mut self) -> Result<u32, DaemonError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, DaemonError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, DaemonError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(f64::from_le_bytes(a))
    }

    /// Fails unless every payload byte was consumed — trailing garbage is
    /// as malformed as missing bytes.
    fn finish(self) -> Result<(), DaemonError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DaemonError::Malformed("trailing bytes after payload"))
        }
    }
}

// ---------------------------------------------------------------------------
// record codec
// ---------------------------------------------------------------------------

fn categorical_code<T: PartialEq + Copy>(all: &[T], value: T) -> u8 {
    // The vocabularies are total enums, so `value` is always present and
    // the fallback is unreachable; it exists to keep encoding panic-free.
    all.iter().position(|v| *v == value).unwrap_or(0) as u8
}

fn categorical_decode<T: Copy>(all: &[T], code: u8, what: &'static str) -> Result<T, DaemonError> {
    match all.get(code as usize) {
        Some(v) => Ok(*v),
        None => Err(DaemonError::Malformed(what)),
    }
}

/// Appends one record's [`RECORD_WIRE_LEN`] bytes to `out`.
pub fn encode_record(record: &ConnectionRecord, out: &mut Vec<u8>) {
    out.push(categorical_code(&Protocol::ALL, record.protocol));
    out.push(categorical_code(&Service::ALL, record.service));
    out.push(categorical_code(&Flag::ALL, record.flag));
    out.push(categorical_code(&AttackType::ALL, record.label));
    let mut features = [0.0; ConnectionRecord::CONTINUOUS_COUNT];
    record.write_continuous_features(&mut features);
    for f in features {
        out.extend_from_slice(&f.to_le_bytes());
    }
}

fn decode_record(cur: &mut Cursor<'_>) -> Result<ConnectionRecord, DaemonError> {
    let protocol = categorical_decode(&Protocol::ALL, cur.u8()?, "bad protocol code")?;
    let service = categorical_decode(&Service::ALL, cur.u8()?, "bad service code")?;
    let flag = categorical_decode(&Flag::ALL, cur.u8()?, "bad flag code")?;
    let label = categorical_decode(&AttackType::ALL, cur.u8()?, "bad label code")?;
    let mut features = [0.0; ConnectionRecord::CONTINUOUS_COUNT];
    for slot in &mut features {
        let value = cur.f64()?;
        // A NaN or infinity here would poison the tenant's adaptive
        // baseline through `observe`; reject it at the trust boundary.
        if !value.is_finite() {
            return Err(DaemonError::Malformed("non-finite feature value"));
        }
        *slot = value;
    }
    Ok(record_from_parts(protocol, service, flag, label, &features))
}

/// Rebuilds a [`ConnectionRecord`] from its categorical values and the 38
/// continuous features in [`traffic::CONTINUOUS_FEATURE_NAMES`] order —
/// the inverse of [`ConnectionRecord::write_continuous_features`].
fn record_from_parts(
    protocol: Protocol,
    service: Service,
    flag: Flag,
    label: AttackType,
    f: &[f64; ConnectionRecord::CONTINUOUS_COUNT],
) -> ConnectionRecord {
    ConnectionRecord {
        duration: f[0],
        protocol,
        service,
        flag,
        src_bytes: f[1],
        dst_bytes: f[2],
        land: f[3],
        wrong_fragment: f[4],
        urgent: f[5],
        hot: f[6],
        num_failed_logins: f[7],
        logged_in: f[8],
        num_compromised: f[9],
        root_shell: f[10],
        su_attempted: f[11],
        num_root: f[12],
        num_file_creations: f[13],
        num_shells: f[14],
        num_access_files: f[15],
        num_outbound_cmds: f[16],
        is_host_login: f[17],
        is_guest_login: f[18],
        count: f[19],
        srv_count: f[20],
        serror_rate: f[21],
        srv_serror_rate: f[22],
        rerror_rate: f[23],
        srv_rerror_rate: f[24],
        same_srv_rate: f[25],
        diff_srv_rate: f[26],
        srv_diff_host_rate: f[27],
        dst_host_count: f[28],
        dst_host_srv_count: f[29],
        dst_host_same_srv_rate: f[30],
        dst_host_diff_srv_rate: f[31],
        dst_host_same_src_port_rate: f[32],
        dst_host_srv_diff_host_rate: f[33],
        dst_host_serror_rate: f[34],
        dst_host_srv_serror_rate: f[35],
        dst_host_rerror_rate: f[36],
        dst_host_srv_rerror_rate: f[37],
        label,
    }
}

// ---------------------------------------------------------------------------
// frame encode
// ---------------------------------------------------------------------------

fn finish_frame(frame_type: FrameType, payload: Vec<u8>) -> Result<Vec<u8>, DaemonError> {
    let len = u32::try_from(payload.len()).map_err(|_| DaemonError::FrameTooLarge {
        declared: payload.len(),
        max: u32::MAX as usize,
    })?;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&FrameHeader::encode(frame_type, len));
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Encodes a complete request frame (header + payload).
///
/// # Errors
///
/// [`DaemonError::Malformed`] when a batch's tenant name is empty, longer
/// than [`MAX_TENANT_LEN`] bytes, or the batch holds more than `u32::MAX`
/// records; [`DaemonError::FrameTooLarge`] when the payload overflows the
/// u32 length field.
pub fn encode_request(request: &Request) -> Result<Vec<u8>, DaemonError> {
    match request {
        Request::Ping => finish_frame(FrameType::Ping, Vec::new()),
        Request::Batch(batch) => {
            let tenant = batch.tenant.as_bytes();
            if tenant.is_empty() {
                return Err(DaemonError::Malformed("empty tenant name"));
            }
            if tenant.len() > MAX_TENANT_LEN {
                return Err(DaemonError::Malformed("tenant name longer than 255 bytes"));
            }
            let count = u32::try_from(batch.records.len())
                .map_err(|_| DaemonError::Malformed("more than u32::MAX records"))?;
            let mut payload =
                Vec::with_capacity(15 + tenant.len() + batch.records.len() * RECORD_WIRE_LEN);
            payload.extend_from_slice(&batch.req_id.to_le_bytes());
            payload.push(batch.mode.to_wire());
            payload.extend_from_slice(&(tenant.len() as u16).to_le_bytes());
            payload.extend_from_slice(tenant);
            payload.extend_from_slice(&count.to_le_bytes());
            for record in &batch.records {
                encode_record(record, &mut payload);
            }
            finish_frame(FrameType::Batch, payload)
        }
    }
}

/// Encodes a complete response frame (header + payload). Reject details
/// are truncated to [`MAX_REJECT_DETAIL_LEN`] bytes on a char boundary.
///
/// # Errors
///
/// [`DaemonError::Malformed`] when a verdict batch holds more than
/// `u32::MAX` verdicts; [`DaemonError::FrameTooLarge`] when the payload
/// overflows the u32 length field.
pub fn encode_response(response: &Response) -> Result<Vec<u8>, DaemonError> {
    match response {
        Response::Pong => finish_frame(FrameType::Pong, Vec::new()),
        Response::Reject(reject) => {
            let detail = truncate_utf8(&reject.detail, MAX_REJECT_DETAIL_LEN);
            let mut payload = Vec::with_capacity(11 + detail.len());
            payload.extend_from_slice(&reject.req_id.to_le_bytes());
            payload.push(reject.code.to_wire());
            payload.extend_from_slice(&(detail.len() as u16).to_le_bytes());
            payload.extend_from_slice(detail.as_bytes());
            finish_frame(FrameType::Reject, payload)
        }
        Response::Verdicts { req_id, verdicts } => {
            let count = u32::try_from(verdicts.len())
                .map_err(|_| DaemonError::Malformed("more than u32::MAX verdicts"))?;
            let (mode, wire_len) = match verdicts {
                VerdictPayload::Hybrid(_) => (BatchMode::Score, HybridVerdict::WIRE_LEN),
                VerdictPayload::Stream(_) => (BatchMode::Observe, StreamVerdict::WIRE_LEN),
            };
            let mut payload = Vec::with_capacity(13 + verdicts.len() * wire_len);
            payload.extend_from_slice(&req_id.to_le_bytes());
            payload.push(mode.to_wire());
            payload.extend_from_slice(&count.to_le_bytes());
            match verdicts {
                VerdictPayload::Hybrid(list) => {
                    for v in list {
                        payload.extend_from_slice(&v.to_wire());
                    }
                }
                VerdictPayload::Stream(list) => {
                    for v in list {
                        payload.extend_from_slice(&v.to_wire());
                    }
                }
            }
            finish_frame(FrameType::Verdicts, payload)
        }
    }
}

/// Longest prefix of `s` that fits `max` bytes without splitting a UTF-8
/// sequence.
fn truncate_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    s.get(..end).unwrap_or("")
}

// ---------------------------------------------------------------------------
// frame decode
// ---------------------------------------------------------------------------

/// Decodes the payload of a request frame whose header was already
/// validated by [`FrameHeader::decode`].
///
/// # Errors
///
/// [`DaemonError::Malformed`] or [`DaemonError::Truncated`] describing the
/// first structural violation; [`DaemonError::UnknownFrameType`] when fed a
/// response frame type.
pub fn decode_request(frame_type: FrameType, payload: &[u8]) -> Result<Request, DaemonError> {
    match frame_type {
        FrameType::Ping => {
            Cursor::new(payload).finish()?;
            Ok(Request::Ping)
        }
        FrameType::Batch => {
            let mut cur = Cursor::new(payload);
            let req_id = cur.u64()?;
            let mode = BatchMode::from_wire(cur.u8()?)?;
            let tenant_len = cur.u16()? as usize;
            if tenant_len == 0 {
                return Err(DaemonError::Malformed("empty tenant name"));
            }
            if tenant_len > MAX_TENANT_LEN {
                return Err(DaemonError::Malformed("tenant name longer than 255 bytes"));
            }
            let tenant = std::str::from_utf8(cur.take(tenant_len)?)
                .map_err(|_| DaemonError::Malformed("tenant name is not UTF-8"))?
                .to_string();
            let count = cur.u32()? as usize;
            let declared = count
                .checked_mul(RECORD_WIRE_LEN)
                .ok_or(DaemonError::Malformed(
                    "record count overflows the payload length",
                ))?;
            if declared != cur.remaining() {
                return Err(DaemonError::Truncated {
                    needed: declared,
                    got: cur.remaining(),
                });
            }
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                records.push(decode_record(&mut cur)?);
            }
            cur.finish()?;
            Ok(Request::Batch(BatchRequest {
                req_id,
                mode,
                tenant,
                records,
            }))
        }
        other => Err(DaemonError::UnknownFrameType(other.to_wire())),
    }
}

/// Decodes the payload of a response frame whose header was already
/// validated by [`FrameHeader::decode`].
///
/// # Errors
///
/// [`DaemonError::Malformed`] or [`DaemonError::Truncated`] describing the
/// first structural violation; [`DaemonError::UnknownFrameType`] when fed a
/// request frame type.
pub fn decode_response(frame_type: FrameType, payload: &[u8]) -> Result<Response, DaemonError> {
    match frame_type {
        FrameType::Pong => {
            Cursor::new(payload).finish()?;
            Ok(Response::Pong)
        }
        FrameType::Reject => {
            let mut cur = Cursor::new(payload);
            let req_id = cur.u64()?;
            let code = RejectCode::from_wire(cur.u8()?)?;
            let detail_len = cur.u16()? as usize;
            let detail = std::str::from_utf8(cur.take(detail_len)?)
                .map_err(|_| DaemonError::Malformed("reject detail is not UTF-8"))?
                .to_string();
            cur.finish()?;
            Ok(Response::Reject(Reject {
                req_id,
                code,
                detail,
            }))
        }
        FrameType::Verdicts => {
            let mut cur = Cursor::new(payload);
            let req_id = cur.u64()?;
            let mode = BatchMode::from_wire(cur.u8()?)?;
            let count = cur.u32()? as usize;
            let wire_len = match mode {
                BatchMode::Score => HybridVerdict::WIRE_LEN,
                BatchMode::Observe => StreamVerdict::WIRE_LEN,
            };
            let declared = count.checked_mul(wire_len).ok_or(DaemonError::Malformed(
                "verdict count overflows the payload length",
            ))?;
            if declared != cur.remaining() {
                return Err(DaemonError::Truncated {
                    needed: declared,
                    got: cur.remaining(),
                });
            }
            let verdicts = match mode {
                BatchMode::Score => {
                    let mut list = Vec::with_capacity(count);
                    for _ in 0..count {
                        let mut wire = [0u8; HybridVerdict::WIRE_LEN];
                        wire.copy_from_slice(cur.take(HybridVerdict::WIRE_LEN)?);
                        list.push(HybridVerdict::from_wire(&wire)?);
                    }
                    VerdictPayload::Hybrid(list)
                }
                BatchMode::Observe => {
                    let mut list = Vec::with_capacity(count);
                    for _ in 0..count {
                        let mut wire = [0u8; StreamVerdict::WIRE_LEN];
                        wire.copy_from_slice(cur.take(StreamVerdict::WIRE_LEN)?);
                        list.push(StreamVerdict::from_wire(&wire)?);
                    }
                    VerdictPayload::Stream(list)
                }
            };
            cur.finish()?;
            Ok(Response::Verdicts { req_id, verdicts })
        }
        other => Err(DaemonError::UnknownFrameType(other.to_wire())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::AttackCategory;

    fn sample_records() -> Vec<ConnectionRecord> {
        vec![
            ConnectionRecord::default(),
            ConnectionRecord {
                protocol: Protocol::Icmp,
                service: Service::EcrI,
                flag: Flag::Sh,
                label: AttackType::Smurf,
                src_bytes: 1032.0,
                count: 511.0,
                serror_rate: 0.25,
                ..Default::default()
            },
        ]
    }

    #[test]
    fn record_wire_len_matches_encoder() {
        let mut buf = Vec::new();
        encode_record(&ConnectionRecord::default(), &mut buf);
        assert_eq!(buf.len(), RECORD_WIRE_LEN);
    }

    #[test]
    fn batch_request_roundtrip() {
        let request = Request::Batch(BatchRequest {
            req_id: 0xDEAD_BEEF_0042,
            mode: BatchMode::Observe,
            tenant: "edge-α".to_string(),
            records: sample_records(),
        });
        let frame = encode_request(&request).unwrap();
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&frame[..HEADER_LEN]);
        let header = FrameHeader::decode(&header, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(header.frame_type, FrameType::Batch);
        assert_eq!(header.payload_len, frame.len() - HEADER_LEN);
        let back = decode_request(header.frame_type, &frame[HEADER_LEN..]).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn response_roundtrips() {
        let responses = [
            Response::Pong,
            Response::Reject(Reject {
                req_id: 9,
                code: RejectCode::Overloaded,
                detail: "queue full (64 batches)".to_string(),
            }),
            Response::Verdicts {
                req_id: 3,
                verdicts: VerdictPayload::Hybrid(vec![HybridVerdict {
                    score: 1.25,
                    anomalous: true,
                    category: Some(AttackCategory::Dos),
                }]),
            },
            Response::Verdicts {
                req_id: 4,
                verdicts: VerdictPayload::Stream(vec![StreamVerdict {
                    score: 0.5,
                    anomalous: false,
                    threshold: 2.0,
                }]),
            },
        ];
        for response in responses {
            let frame = encode_response(&response).unwrap();
            let mut header = [0u8; HEADER_LEN];
            header.copy_from_slice(&frame[..HEADER_LEN]);
            let header = FrameHeader::decode(&header, DEFAULT_MAX_FRAME_LEN).unwrap();
            let back = decode_response(header.frame_type, &frame[HEADER_LEN..]).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn header_rejects_bad_magic_version_type_reserved_and_length() {
        let good = FrameHeader::encode(FrameType::Ping, 0);

        let mut bad = good;
        bad[0] = b'X';
        assert_eq!(FrameHeader::decode(&bad, 1024), Err(DaemonError::BadMagic));

        let mut bad = good;
        bad[4] = 99;
        assert!(matches!(
            FrameHeader::decode(&bad, 1024),
            Err(DaemonError::UnsupportedVersion { found: 99, .. })
        ));

        let mut bad = good;
        bad[5] = 0x7F;
        assert_eq!(
            FrameHeader::decode(&bad, 1024),
            Err(DaemonError::UnknownFrameType(0x7F))
        );

        let mut bad = good;
        bad[6] = 1;
        assert_eq!(
            FrameHeader::decode(&bad, 1024),
            Err(DaemonError::ReservedNonZero)
        );

        let huge = FrameHeader::encode(FrameType::Batch, u32::MAX);
        assert!(matches!(
            FrameHeader::decode(&huge, 1024),
            Err(DaemonError::FrameTooLarge { max: 1024, .. })
        ));
    }

    #[test]
    fn batch_decode_rejects_count_mismatch() {
        let request = Request::Batch(BatchRequest {
            req_id: 1,
            mode: BatchMode::Score,
            tenant: "t".to_string(),
            records: sample_records(),
        });
        let frame = encode_request(&request).unwrap();
        // Lie about the count: the count field sits after req_id(8) +
        // mode(1) + tenant_len(2) + tenant(1).
        let mut tampered = frame[HEADER_LEN..].to_vec();
        tampered[12] = 99;
        assert!(matches!(
            decode_request(FrameType::Batch, &tampered),
            Err(DaemonError::Truncated { .. })
        ));
    }

    #[test]
    fn batch_decode_rejects_hostile_values() {
        let base = BatchRequest {
            req_id: 1,
            mode: BatchMode::Score,
            tenant: "t".to_string(),
            records: vec![ConnectionRecord::default()],
        };
        let frame = encode_request(&Request::Batch(base)).unwrap();
        let payload_start = HEADER_LEN;
        let record_start = payload_start + 8 + 1 + 2 + 1 + 4;

        // Out-of-range categorical code.
        let mut bad = frame.clone();
        bad[record_start] = 200;
        assert_eq!(
            decode_request(FrameType::Batch, &bad[payload_start..]),
            Err(DaemonError::Malformed("bad protocol code"))
        );

        // NaN feature.
        let mut bad = frame.clone();
        bad[record_start + 4..record_start + 12].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            decode_request(FrameType::Batch, &bad[payload_start..]),
            Err(DaemonError::Malformed("non-finite feature value"))
        );

        // Truncated payload.
        assert!(matches!(
            decode_request(FrameType::Batch, &frame[payload_start..frame.len() - 3]),
            Err(DaemonError::Truncated { .. })
        ));

        // Trailing garbage.
        let mut bad = frame[payload_start..].to_vec();
        bad.push(0);
        assert!(decode_request(FrameType::Batch, &bad).is_err());
    }

    #[test]
    fn tenant_name_limits_enforced_both_ways() {
        let empty = Request::Batch(BatchRequest {
            req_id: 1,
            mode: BatchMode::Score,
            tenant: String::new(),
            records: Vec::new(),
        });
        assert!(encode_request(&empty).is_err());

        let long = Request::Batch(BatchRequest {
            req_id: 1,
            mode: BatchMode::Score,
            tenant: "x".repeat(MAX_TENANT_LEN + 1),
            records: Vec::new(),
        });
        assert!(encode_request(&long).is_err());
    }

    #[test]
    fn ping_rejects_nonempty_payload() {
        assert!(decode_request(FrameType::Ping, &[1, 2, 3]).is_err());
        assert!(decode_request(FrameType::Ping, &[]).is_ok());
    }

    #[test]
    fn truncate_utf8_respects_char_boundaries() {
        assert_eq!(truncate_utf8("héllo", 2), "h");
        assert_eq!(truncate_utf8("héllo", 3), "hé");
        assert_eq!(truncate_utf8("abc", 10), "abc");
    }
}
