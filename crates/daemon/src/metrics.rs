//! The daemon's observability surface: lock-free per-tenant counters and a
//! fixed-bucket latency histogram, rendered as plaintext on the metrics
//! listener.
//!
//! Everything on the scoring hot path is a relaxed atomic increment; the
//! only lock is a read-mostly [`RwLock`] around the tenant map, taken for
//! writing exactly once per tenant lifetime. The text format is documented
//! in `docs/PROTOCOL.md` and kept deliberately Prometheus-shaped
//! (`name{label="value"} number` lines) so standard scrapers can parse it.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ghsom_comms::NodeEvent;
use ghsom_serve::SpoolEvent;
use parking_lot::RwLock;

/// Upper bounds (µs) of the latency histogram's finite buckets. The last
/// bucket is an implicit overflow for anything above 250 ms.
const LATENCY_BOUNDS_US: [u64; 15] = [
    5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
];

/// Fixed-bucket histogram of batch scoring latencies in microseconds.
///
/// Quantiles are read as the upper bound of the bucket containing the
/// requested cumulative rank — a deliberate over-estimate, so a reported
/// p99 is a guarantee, not an average.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn observe_us(&self, micros: u64) {
        let idx = LATENCY_BOUNDS_US
            .iter()
            .position(|bound| micros <= *bound)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Upper bound (µs) of the bucket holding the `q`-quantile
    /// observation. `None` with no observations; `u64::MAX` when the
    /// quantile lands in the overflow bucket (rendered as `inf`).
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(bucket.load(Ordering::Relaxed));
            if seen >= rank {
                return Some(LATENCY_BOUNDS_US.get(idx).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }
}

/// Per-tenant counters. All increments are relaxed atomics; readers see a
/// consistent-enough snapshot for operational dashboards and the soak
/// test's exact reconciliation (which reads after all writers quiesce).
#[derive(Debug, Default)]
pub struct TenantMetrics {
    records_total: AtomicU64,
    batches_total: AtomicU64,
    flagged_total: AtomicU64,
    overload_batches: AtomicU64,
    overload_records: AtomicU64,
    internal_rejects: AtomicU64,
    /// Signed: the enqueue (reader thread) and dequeue (worker thread)
    /// increments race, so the counter may transiently dip below zero;
    /// it is exact once writers quiesce. Readers clamp at zero.
    queue_depth: AtomicI64,
    queue_high_water: AtomicU64,
    latency: LatencyHistogram,
    deploys: AtomicU64,
    swaps: AtomicU64,
    retires: AtomicU64,
    bundle_rejects: AtomicU64,
}

impl TenantMetrics {
    /// Records a scored batch: its size, how many records were flagged
    /// anomalous, and the engine-side latency.
    pub fn record_batch(&self, records: u64, flagged: u64, micros: u64) {
        self.records_total.fetch_add(records, Ordering::Relaxed);
        self.batches_total.fetch_add(1, Ordering::Relaxed);
        self.flagged_total.fetch_add(flagged, Ordering::Relaxed);
        self.latency.observe_us(micros);
    }

    /// Records a load-shed batch of `records` records.
    pub fn record_overload(&self, records: u64) {
        self.overload_batches.fetch_add(1, Ordering::Relaxed);
        self.overload_records.fetch_add(records, Ordering::Relaxed);
    }

    /// Records a post-admission scoring failure.
    pub fn record_internal_reject(&self) {
        self.internal_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// A batch entered the tenant's ingest queue (call *after* the
    /// bounded channel accepted it, so high water never exceeds the
    /// channel capacity plus the one batch a worker is dequeuing).
    pub fn queue_entered(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        if depth > 0 {
            self.queue_high_water
                .fetch_max(depth as u64, Ordering::Relaxed);
        }
    }

    /// A batch left the tenant's ingest queue.
    pub fn queue_left(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Total records scored.
    pub fn records_total(&self) -> u64 {
        self.records_total.load(Ordering::Relaxed)
    }

    /// Total batches scored.
    pub fn batches_total(&self) -> u64 {
        self.batches_total.load(Ordering::Relaxed)
    }

    /// Total records flagged anomalous.
    pub fn flagged_total(&self) -> u64 {
        self.flagged_total.load(Ordering::Relaxed)
    }

    /// Batches refused with `Overloaded`.
    pub fn overload_batches(&self) -> u64 {
        self.overload_batches.load(Ordering::Relaxed)
    }

    /// Records inside refused batches.
    pub fn overload_records(&self) -> u64 {
        self.overload_records.load(Ordering::Relaxed)
    }

    /// Batches refused with `Internal` after admission.
    pub fn internal_rejects(&self) -> u64 {
        self.internal_rejects.load(Ordering::Relaxed)
    }

    /// Current ingest queue depth (clamped at zero during the transient
    /// enqueue/dequeue race).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed).max(0) as u64
    }

    /// Highest ingest queue depth ever observed.
    pub fn queue_high_water(&self) -> u64 {
        self.queue_high_water.load(Ordering::Relaxed)
    }

    /// The batch latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Spool deployments seen for this tenant.
    pub fn deploys(&self) -> u64 {
        self.deploys.load(Ordering::Relaxed)
    }

    /// Spool swaps seen for this tenant.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Spool retirements seen for this tenant.
    pub fn retires(&self) -> u64 {
        self.retires.load(Ordering::Relaxed)
    }

    /// Spool bundles rejected for this tenant (bad checksum, truncated
    /// bundle, …) — the serving engine keeps running when this ticks.
    pub fn bundle_rejects(&self) -> u64 {
        self.bundle_rejects.load(Ordering::Relaxed)
    }
}

/// Process-wide metrics root, shared by every connection, worker and the
/// spool watcher.
#[derive(Debug)]
pub struct DaemonMetrics {
    started: Instant,
    connections_total: AtomicU64,
    connections_open: AtomicU64,
    frames_total: AtomicU64,
    malformed_total: AtomicU64,
    unknown_tenant_total: AtomicU64,
    scan_failures_total: AtomicU64,
    fleet_bundles_total: AtomicU64,
    fleet_bundle_bytes_total: AtomicU64,
    fleet_bundle_rejects_total: AtomicU64,
    fleet_state_queries_total: AtomicU64,
    tenants: RwLock<BTreeMap<String, Arc<TenantMetrics>>>,
}

impl Default for DaemonMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl DaemonMetrics {
    /// A fresh metrics root with the uptime clock started now.
    pub fn new() -> Self {
        DaemonMetrics {
            started: Instant::now(),
            connections_total: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            frames_total: AtomicU64::new(0),
            malformed_total: AtomicU64::new(0),
            unknown_tenant_total: AtomicU64::new(0),
            scan_failures_total: AtomicU64::new(0),
            fleet_bundles_total: AtomicU64::new(0),
            fleet_bundle_bytes_total: AtomicU64::new(0),
            fleet_bundle_rejects_total: AtomicU64::new(0),
            fleet_state_queries_total: AtomicU64::new(0),
            tenants: RwLock::new(BTreeMap::new()),
        }
    }

    /// An ingest connection was accepted.
    pub fn connection_opened(&self) {
        self.connections_total.fetch_add(1, Ordering::Relaxed);
        self.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    /// An ingest connection closed (cleanly or not).
    pub fn connection_closed(&self) {
        let _ = self
            .connections_open
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// A complete frame (of any type) was read off a connection.
    pub fn frame_received(&self) {
        self.frames_total.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection delivered bytes that failed frame or payload
    /// validation.
    pub fn record_malformed(&self) {
        self.malformed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// A batch named a tenant with no deployed engine.
    pub fn record_unknown_tenant(&self) {
        self.unknown_tenant_total.fetch_add(1, Ordering::Relaxed);
    }

    /// The per-tenant counters for `name`, created on first use.
    pub fn tenant(&self, name: &str) -> Arc<TenantMetrics> {
        if let Some(existing) = self.tenants.read().get(name) {
            return Arc::clone(existing);
        }
        let mut map = self.tenants.write();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(TenantMetrics::default())),
        )
    }

    /// The per-tenant counters for `name`, if any exist yet.
    pub fn tenant_if_present(&self, name: &str) -> Option<Arc<TenantMetrics>> {
        self.tenants.read().get(name).map(Arc::clone)
    }

    /// Folds a spool watcher event into the counters. Tenant-addressed
    /// events tick that tenant; scan failures tick a global counter.
    pub fn record_spool_event(&self, event: &SpoolEvent) {
        match event.tenant() {
            Some(tenant) => {
                let t = self.tenant(tenant);
                match event.kind() {
                    "deployed" => t.deploys.fetch_add(1, Ordering::Relaxed),
                    "swapped" => t.swaps.fetch_add(1, Ordering::Relaxed),
                    "retired" => t.retires.fetch_add(1, Ordering::Relaxed),
                    "rejected" => t.bundle_rejects.fetch_add(1, Ordering::Relaxed),
                    _ => self.scan_failures_total.fetch_add(1, Ordering::Relaxed),
                };
            }
            None => {
                self.scan_failures_total.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Folds a fleet-endpoint event into the counters. Replicated
    /// bundles also tick the tenant's `deploys`-adjacent spool counters
    /// indirectly once the watcher picks them up; these counters track
    /// the *transfer* layer.
    pub fn record_fleet_event(&self, event: &NodeEvent) {
        match event {
            NodeEvent::BundleStored { bytes, .. } => {
                self.fleet_bundles_total.fetch_add(1, Ordering::Relaxed);
                self.fleet_bundle_bytes_total
                    .fetch_add(*bytes, Ordering::Relaxed);
            }
            NodeEvent::BundleRejected { .. } => {
                self.fleet_bundle_rejects_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            NodeEvent::StateServed { .. } => {
                self.fleet_state_queries_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Bundles stored through the fleet endpoint.
    pub fn fleet_bundles_total(&self) -> u64 {
        self.fleet_bundles_total.load(Ordering::Relaxed)
    }

    /// Payload bytes of bundles stored through the fleet endpoint.
    pub fn fleet_bundle_bytes_total(&self) -> u64 {
        self.fleet_bundle_bytes_total.load(Ordering::Relaxed)
    }

    /// Fleet requests refused with a nak.
    pub fn fleet_bundle_rejects_total(&self) -> u64 {
        self.fleet_bundle_rejects_total.load(Ordering::Relaxed)
    }

    /// Baseline state queries served by the fleet endpoint.
    pub fn fleet_state_queries_total(&self) -> u64 {
        self.fleet_state_queries_total.load(Ordering::Relaxed)
    }

    /// Total connections ever accepted.
    pub fn connections_total(&self) -> u64 {
        self.connections_total.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn connections_open(&self) -> u64 {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// Total frames read.
    pub fn frames_total(&self) -> u64 {
        self.frames_total.load(Ordering::Relaxed)
    }

    /// Total malformed frames/payloads seen.
    pub fn malformed_total(&self) -> u64 {
        self.malformed_total.load(Ordering::Relaxed)
    }

    /// Total unknown-tenant rejects.
    pub fn unknown_tenant_total(&self) -> u64 {
        self.unknown_tenant_total.load(Ordering::Relaxed)
    }

    /// Total spool scan failures (plus watcher events with no tenant).
    pub fn scan_failures_total(&self) -> u64 {
        self.scan_failures_total.load(Ordering::Relaxed)
    }

    /// Renders the whole surface as plaintext, one `name{labels} value`
    /// line per counter, tenants in stable lexicographic order.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let uptime = self.started.elapsed().as_secs_f64().max(1e-9);
        let _ = writeln!(out, "ghsomd_uptime_seconds {uptime:.3}");
        let _ = writeln!(out, "ghsomd_connections_total {}", self.connections_total());
        let _ = writeln!(out, "ghsomd_connections_open {}", self.connections_open());
        let _ = writeln!(out, "ghsomd_frames_total {}", self.frames_total());
        let _ = writeln!(out, "ghsomd_malformed_total {}", self.malformed_total());
        let _ = writeln!(
            out,
            "ghsomd_rejects_unknown_tenant_total {}",
            self.unknown_tenant_total()
        );
        let _ = writeln!(
            out,
            "ghsomd_spool_scan_failures_total {}",
            self.scan_failures_total()
        );
        let _ = writeln!(
            out,
            "ghsomd_fleet_bundles_total {}",
            self.fleet_bundles_total()
        );
        let _ = writeln!(
            out,
            "ghsomd_fleet_bundle_bytes_total {}",
            self.fleet_bundle_bytes_total()
        );
        let _ = writeln!(
            out,
            "ghsomd_fleet_bundle_rejects_total {}",
            self.fleet_bundle_rejects_total()
        );
        let _ = writeln!(
            out,
            "ghsomd_fleet_state_queries_total {}",
            self.fleet_state_queries_total()
        );
        let tenants = self.tenants.read();
        for (name, t) in tenants.iter() {
            let records = t.records_total();
            let _ = writeln!(
                out,
                "ghsomd_tenant_records_total{{tenant=\"{name}\"}} {records}"
            );
            let _ = writeln!(
                out,
                "ghsomd_tenant_batches_total{{tenant=\"{name}\"}} {}",
                t.batches_total()
            );
            let _ = writeln!(
                out,
                "ghsomd_tenant_flagged_total{{tenant=\"{name}\"}} {}",
                t.flagged_total()
            );
            let _ = writeln!(
                out,
                "ghsomd_tenant_records_per_second{{tenant=\"{name}\"}} {:.1}",
                records as f64 / uptime
            );
            let _ = writeln!(
                out,
                "ghsomd_tenant_flag_rate{{tenant=\"{name}\"}} {:.6}",
                if records == 0 {
                    0.0
                } else {
                    t.flagged_total() as f64 / records as f64
                }
            );
            let _ = writeln!(
                out,
                "ghsomd_tenant_rejects_total{{tenant=\"{name}\",code=\"overloaded\"}} {}",
                t.overload_batches()
            );
            let _ = writeln!(
                out,
                "ghsomd_tenant_rejected_records_total{{tenant=\"{name}\",code=\"overloaded\"}} {}",
                t.overload_records()
            );
            let _ = writeln!(
                out,
                "ghsomd_tenant_rejects_total{{tenant=\"{name}\",code=\"internal\"}} {}",
                t.internal_rejects()
            );
            let _ = writeln!(
                out,
                "ghsomd_tenant_queue_depth{{tenant=\"{name}\"}} {}",
                t.queue_depth()
            );
            let _ = writeln!(
                out,
                "ghsomd_tenant_queue_high_water{{tenant=\"{name}\"}} {}",
                t.queue_high_water()
            );
            for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
                let value = match t.latency().quantile_us(q) {
                    None => "0".to_string(),
                    Some(u64::MAX) => "inf".to_string(),
                    Some(us) => us.to_string(),
                };
                let _ = writeln!(
                    out,
                    "ghsomd_tenant_batch_latency_us{{tenant=\"{name}\",quantile=\"{label}\"}} {value}"
                );
            }
            for (what, value) in [
                ("deployed", t.deploys()),
                ("swapped", t.swaps()),
                ("retired", t.retires()),
                ("rejected", t.bundle_rejects()),
            ] {
                let _ = writeln!(
                    out,
                    "ghsomd_tenant_spool_events_total{{tenant=\"{name}\",kind=\"{what}\"}} {value}"
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_over_estimate() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), None);
        for _ in 0..99 {
            h.observe_us(7); // lands in the <=10 bucket
        }
        h.observe_us(400_000); // overflow bucket
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), Some(10));
        assert_eq!(h.quantile_us(0.99), Some(10));
        assert_eq!(h.quantile_us(1.0), Some(u64::MAX));
    }

    #[test]
    fn queue_depth_is_exact_at_quiesce_and_clamped_in_flight() {
        let t = TenantMetrics::default();
        // A dequeue racing ahead of its enqueue dips below zero
        // internally but reads as zero…
        t.queue_left();
        assert_eq!(t.queue_depth(), 0);
        // …and the late enqueue restores exactness: net one in queue.
        t.queue_entered();
        t.queue_entered();
        assert_eq!(t.queue_depth(), 1);
        t.queue_entered();
        assert_eq!(t.queue_depth(), 2);
        assert_eq!(t.queue_high_water(), 2);
        t.queue_left();
        t.queue_left();
        assert_eq!(t.queue_depth(), 0);
        assert_eq!(t.queue_high_water(), 2);
    }

    #[test]
    fn render_is_stable_and_parseable() {
        let m = DaemonMetrics::new();
        m.connection_opened();
        m.frame_received();
        let t = m.tenant("edge");
        t.record_batch(100, 3, 42);
        t.record_overload(50);
        m.record_fleet_event(&NodeEvent::BundleStored {
            tenant: "edge".to_string(),
            bytes: 4_096,
            resumed_from: 0,
        });
        m.record_fleet_event(&NodeEvent::StateServed {
            tenant: "edge".to_string(),
            hit: true,
        });
        let text = m.render();
        assert!(text.contains("ghsomd_connections_total 1"));
        assert!(text.contains("ghsomd_fleet_bundles_total 1"));
        assert!(text.contains("ghsomd_fleet_bundle_bytes_total 4096"));
        assert!(text.contains("ghsomd_fleet_state_queries_total 1"));
        assert!(text.contains("ghsomd_tenant_records_total{tenant=\"edge\"} 100"));
        assert!(text.contains("ghsomd_tenant_flagged_total{tenant=\"edge\"} 3"));
        assert!(text.contains(
            "ghsomd_tenant_rejected_records_total{tenant=\"edge\",code=\"overloaded\"} 50"
        ));
        // Every line is `name value` or `name{labels} value`.
        for line in text.lines() {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok() || value == "inf",
                "unparseable value in line: {line}"
            );
            assert!(parts.next().unwrap().starts_with("ghsomd_"));
        }
    }

    #[test]
    fn tenant_map_is_create_on_first_use() {
        let m = DaemonMetrics::new();
        assert!(m.tenant_if_present("a").is_none());
        let t1 = m.tenant("a");
        let t2 = m.tenant("a");
        assert!(Arc::ptr_eq(&t1, &t2));
    }
}
