//! Shared fixtures for the daemon integration tests: tiny trained
//! engines, spool directories with atomic bundle publishes, and metrics
//! scraping helpers.
#![allow(dead_code)] // each test binary uses a different subset

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ghsom_core::GhsomConfig;
use ghsom_serve::{Engine, EngineConfig};
use traffic::ConnectionRecord;

/// Trains a small engine on synthetic KDD traffic and returns it with a
/// held-out record set for client batches.
pub fn small_engine(seed: u64) -> (Engine, Vec<ConnectionRecord>) {
    let (train, test) = traffic::synth::kdd_train_test(400, 256, seed).unwrap();
    let config = EngineConfig::default()
        .with_ghsom(GhsomConfig::default().with_epochs(2, 2).with_seed(seed))
        .with_stream(4.0, 50);
    let engine = Engine::fit(&config, &train).unwrap();
    (engine, test.records().to_vec())
}

/// A fresh per-process spool directory under the system temp dir.
pub fn temp_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ghsom_daemon_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Atomic publish: temp name + rename, the workflow the spool watcher
/// expects (it never sees a half-written bundle).
pub fn publish(spool: &Path, tenant: &str, bytes: &[u8]) {
    let tmp = spool.join(format!(".{tenant}.tmp"));
    std::fs::write(&tmp, bytes).unwrap();
    std::fs::rename(&tmp, spool.join(format!("{tenant}.bundle"))).unwrap();
}

/// One plaintext scrape of the daemon's metrics listener.
pub fn scrape(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    text
}

/// Polls the metrics listener until `pred` holds or `deadline` passes;
/// returns the last scrape and whether the predicate was met.
pub fn scrape_until(
    addr: SocketAddr,
    deadline: Duration,
    mut pred: impl FnMut(&str) -> bool,
) -> (String, bool) {
    let start = Instant::now();
    loop {
        let text = scrape(addr);
        if pred(&text) {
            return (text, true);
        }
        if start.elapsed() > deadline {
            return (text, false);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Value of the metrics line that starts with `line_start` (the full
/// name-plus-labels prefix), if present.
pub fn metric(text: &str, line_start: &str) -> Option<f64> {
    text.lines()
        .find_map(|l| l.strip_prefix(line_start)?.trim().parse().ok())
}
