//! Spool-watcher event stream → daemon metrics (ISSUE 9 satellite):
//! the daemon consumes `SpoolWatcher` events and surfaces them as
//! per-tenant counters. Deploys are visible at startup; a rejected
//! bundle and a retire each appear on the metrics listener within one
//! poll interval (plus scheduling slack); a retired tenant's traffic
//! turns into typed `UnknownTenant` rejects while the daemon keeps
//! serving everyone else.

mod common;

use std::time::Duration;

use ghsom_daemon::{Daemon, DaemonClient, DaemonConfig, DaemonError, RejectCode};

const POLL: Duration = Duration::from_millis(100);
/// CI boxes stall; one poll interval of budget, with 20 intervals of
/// slack, still proves the event flows through "the next poll".
const EVENT_DEADLINE: Duration = Duration::from_secs(2);

#[test]
fn watcher_events_reach_metrics_within_a_poll() {
    let spool = common::temp_spool("watch_metrics");
    let (engine_a, records) = common::small_engine(51);
    let (engine_b, _) = common::small_engine(52);
    common::publish(&spool, "prod", &engine_a.to_bytes());

    let daemon = Daemon::start(DaemonConfig::new(&spool).with_poll_interval(POLL)).unwrap();
    let metrics_addr = daemon.metrics_addr();

    // The startup poll deployed the pre-existing bundle.
    let text = common::scrape(metrics_addr);
    assert_eq!(
        common::metric(
            &text,
            "ghsomd_tenant_spool_events_total{tenant=\"prod\",kind=\"deployed\"}"
        ),
        Some(1.0),
        "{text}"
    );

    let mut client = DaemonClient::connect(daemon.ingest_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    assert_eq!(client.score("prod", &records[..16]).unwrap().len(), 16);

    // A corrupt bundle for a new tenant: rejected, attributed to the
    // file-stem tenant, current tenants untouched.
    common::publish(&spool, "mangled", b"GHSB not really a bundle");
    let (text, seen) = common::scrape_until(metrics_addr, EVENT_DEADLINE, |t| {
        common::metric(
            t,
            "ghsomd_tenant_spool_events_total{tenant=\"mangled\",kind=\"rejected\"}",
        )
        .is_some_and(|v| v >= 1.0)
    });
    assert!(seen, "rejected-bundle event never reached metrics:\n{text}");

    // A swap: replace prod's bundle with a retrained engine.
    common::publish(&spool, "prod", &engine_b.to_bytes());
    let (text, seen) = common::scrape_until(metrics_addr, EVENT_DEADLINE, |t| {
        common::metric(
            t,
            "ghsomd_tenant_spool_events_total{tenant=\"prod\",kind=\"swapped\"}",
        )
        .is_some_and(|v| v >= 1.0)
    });
    assert!(seen, "swap event never reached metrics:\n{text}");
    // Traffic flows across the swap on the same connection.
    assert_eq!(client.score("prod", &records[..16]).unwrap().len(), 16);

    // A retire: delete the bundle; the event lands and the tenant's
    // traffic becomes a typed reject, not an error or a hang.
    std::fs::remove_file(spool.join("prod.bundle")).unwrap();
    let (text, seen) = common::scrape_until(metrics_addr, EVENT_DEADLINE, |t| {
        common::metric(
            t,
            "ghsomd_tenant_spool_events_total{tenant=\"prod\",kind=\"retired\"}",
        )
        .is_some_and(|v| v >= 1.0)
    });
    assert!(seen, "retire event never reached metrics:\n{text}");

    let err = client.score("prod", &records[..16]).unwrap_err();
    assert!(
        matches!(
            &err,
            DaemonError::Rejected {
                code: RejectCode::UnknownTenant,
                ..
            }
        ),
        "{err:?}"
    );

    daemon.shutdown();
    std::fs::remove_dir_all(&spool).ok();
}
