//! Protocol torture suite (ISSUE 9): byte-level round-trips under
//! proptest, a deterministic hostile-bytes corpus against the pure
//! codec, and the same hostility replayed against a **live daemon** —
//! truncated frames, oversized declared lengths, wrong magic/version,
//! mid-frame disconnects and slow-loris partial writes. Every case must
//! end in a typed error or a clean close; the daemon must keep serving
//! well-formed traffic afterwards and never panic or hang.

mod common;

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use ghsom_daemon::protocol::{
    self, FrameHeader, FrameType, Request, Response, DEFAULT_MAX_FRAME_LEN, HEADER_LEN, MAGIC,
    MAX_REJECT_DETAIL_LEN, RECORD_WIRE_LEN, VERSION,
};
use ghsom_daemon::{Daemon, DaemonClient, DaemonConfig, DaemonError, RejectCode};
use proptest::prelude::*;
use traffic::{AttackType, Flag, Protocol, Service};

// ---------------------------------------------------------------------------
// raw frame builders (deliberately independent of the production encoder)
// ---------------------------------------------------------------------------

/// Hand-rolls a frame header, with every field overridable for hostility.
fn raw_header(magic: [u8; 4], version: u8, frame_type: u8, reserved: u16, len: u32) -> [u8; 12] {
    let mut h = [0u8; 12];
    h[..4].copy_from_slice(&magic);
    h[4] = version;
    h[5] = frame_type;
    h[6..8].copy_from_slice(&reserved.to_le_bytes());
    h[8..12].copy_from_slice(&len.to_le_bytes());
    h
}

fn good_header(frame_type: u8, len: u32) -> [u8; 12] {
    raw_header(MAGIC, VERSION, frame_type, 0, len)
}

/// Hand-rolls a batch payload from raw parts (no validation).
fn raw_batch_payload(req_id: u64, mode: u8, tenant: &[u8], records: &[u8], count: u32) -> Vec<u8> {
    let mut p = Vec::new();
    p.extend_from_slice(&req_id.to_le_bytes());
    p.push(mode);
    p.extend_from_slice(&(tenant.len() as u16).to_le_bytes());
    p.extend_from_slice(tenant);
    p.extend_from_slice(&count.to_le_bytes());
    p.extend_from_slice(records);
    p
}

/// One wire record from raw categorical codes and features.
fn raw_record(codes: [u8; 4], features: &[f64; 38]) -> Vec<u8> {
    let mut r = Vec::with_capacity(RECORD_WIRE_LEN);
    r.extend_from_slice(&codes);
    for f in features {
        r.extend_from_slice(&f.to_le_bytes());
    }
    r
}

// ---------------------------------------------------------------------------
// proptest round-trips
// ---------------------------------------------------------------------------

proptest! {
    /// decode ∘ encode is the identity on well-formed batch frames built
    /// byte-by-byte, and the production encoder reproduces the exact
    /// input bytes (canonical encoding, both directions).
    #[test]
    fn batch_roundtrip_is_canonical(
        req_id in any::<u64>(),
        mode in 0u8..2,
        tenant_raw in prop::collection::vec(0u8..36, 1..24),
        seeds in prop::collection::vec((0u8..3, 0u8..36, 0u8..11, 0u8..33, 0.0f64..1.0e6), 0..5),
    ) {
        let tenant: Vec<u8> = tenant_raw
            .iter()
            .map(|c| b"abcdefghijklmnopqrstuvwxyz0123456789"[*c as usize])
            .collect();
        let mut records = Vec::new();
        for (p, s, f, l, x) in &seeds {
            let mut features = [0.0f64; 38];
            for (i, slot) in features.iter_mut().enumerate() {
                *slot = x * (i as f64 + 1.0);
            }
            records.extend_from_slice(&raw_record([*p, *s, *f, *l], &features));
        }
        let payload = raw_batch_payload(req_id, mode, &tenant, &records, seeds.len() as u32);

        let decoded = protocol::decode_request(FrameType::Batch, &payload).unwrap();
        let Request::Batch(batch) = &decoded else {
            panic!("batch payload decoded to {decoded:?}");
        };
        prop_assert_eq!(batch.req_id, req_id);
        prop_assert_eq!(batch.mode.to_wire(), mode);
        prop_assert_eq!(batch.tenant.as_bytes(), &tenant[..]);
        prop_assert_eq!(batch.records.len(), seeds.len());

        let reencoded = protocol::encode_request(&decoded).unwrap();
        prop_assert_eq!(&reencoded[..HEADER_LEN], &good_header(0x01, payload.len() as u32)[..]);
        prop_assert_eq!(&reencoded[HEADER_LEN..], &payload[..]);
    }

    /// Header encode/decode round-trips for every frame type and length.
    #[test]
    fn header_roundtrip(kind in 0usize..5, len in 0u32..(DEFAULT_MAX_FRAME_LEN as u32)) {
        let frame_type = [
            FrameType::Batch,
            FrameType::Ping,
            FrameType::Verdicts,
            FrameType::Reject,
            FrameType::Pong,
        ][kind];
        let bytes = FrameHeader::encode(frame_type, len);
        let header = FrameHeader::decode(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
        prop_assert_eq!(header.frame_type, frame_type);
        prop_assert_eq!(header.payload_len, len as usize);
    }

    /// Reject responses round-trip through the production codec.
    #[test]
    fn reject_roundtrip(
        req_id in any::<u64>(),
        code in 1u8..7,
        detail_raw in prop::collection::vec(0u8..26, 0..600),
    ) {
        let detail: String = detail_raw.iter().map(|c| (b'a' + c) as char).collect();
        let frame = protocol::encode_response(&Response::Reject(protocol::Reject {
            req_id,
            code: RejectCode::from_wire(code).unwrap(),
            detail: detail.clone(),
        }))
        .unwrap();
        let header = FrameHeader::decode(
            frame[..HEADER_LEN].try_into().unwrap(),
            DEFAULT_MAX_FRAME_LEN,
        )
        .unwrap();
        let decoded = protocol::decode_response(header.frame_type, &frame[HEADER_LEN..]).unwrap();
        let Response::Reject(reject) = decoded else {
            panic!("reject decoded to something else");
        };
        prop_assert_eq!(reject.req_id, req_id);
        prop_assert_eq!(reject.code.to_wire(), code);
        // Long details are truncated on encode, never dropped.
        let expect_len = detail.len().min(MAX_REJECT_DETAIL_LEN);
        prop_assert_eq!(reject.detail.as_bytes(), &detail.as_bytes()[..expect_len]);
    }

    /// Arbitrary header bytes never panic the decoder.
    #[test]
    fn hostile_header_never_panics(bytes in prop::collection::vec(any::<u8>(), 12)) {
        let array: [u8; 12] = bytes[..].try_into().unwrap();
        let _ = FrameHeader::decode(&array, DEFAULT_MAX_FRAME_LEN);
    }

    /// Arbitrary payload bytes never panic the request decoder.
    #[test]
    fn hostile_payload_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..320)) {
        let _ = protocol::decode_request(FrameType::Batch, &bytes);
        let _ = protocol::decode_request(FrameType::Ping, &bytes);
        let _ = protocol::decode_response(FrameType::Verdicts, &bytes);
        let _ = protocol::decode_response(FrameType::Reject, &bytes);
        let _ = protocol::decode_response(FrameType::Pong, &bytes);
    }
}

// ---------------------------------------------------------------------------
// deterministic hostile-bytes corpus — pure codec
// ---------------------------------------------------------------------------

#[test]
fn corpus_header_violations_are_typed() {
    let max = DEFAULT_MAX_FRAME_LEN;
    let cases: Vec<([u8; 12], DaemonError)> = vec![
        (
            raw_header(*b"HTTP", VERSION, 0x01, 0, 4),
            DaemonError::BadMagic,
        ),
        (
            raw_header(MAGIC, 2, 0x01, 0, 4),
            DaemonError::UnsupportedVersion {
                found: 2,
                supported: VERSION,
            },
        ),
        (
            raw_header(MAGIC, VERSION, 0x7F, 0, 4),
            DaemonError::UnknownFrameType(0x7F),
        ),
        (
            raw_header(MAGIC, VERSION, 0x01, 0xBEEF, 4),
            DaemonError::ReservedNonZero,
        ),
        (
            raw_header(MAGIC, VERSION, 0x01, 0, (max as u32) + 1),
            DaemonError::FrameTooLarge {
                declared: max + 1,
                max,
            },
        ),
    ];
    for (bytes, want) in cases {
        let got = FrameHeader::decode(&bytes, max).unwrap_err();
        assert_eq!(got, want, "header {bytes:02x?}");
    }
}

#[test]
fn corpus_batch_payload_violations_are_typed() {
    let features = [0.5f64; 38];
    let one = raw_record([0, 0, 0, 0], &features);

    // Truncated mid-tenant: declared 10 tenant bytes, 3 present.
    let mut cut = Vec::new();
    cut.extend_from_slice(&7u64.to_le_bytes());
    cut.push(0);
    cut.extend_from_slice(&10u16.to_le_bytes());
    cut.extend_from_slice(b"abc");
    assert!(matches!(
        protocol::decode_request(FrameType::Batch, &cut),
        Err(DaemonError::Truncated { .. })
    ));

    // Record count disagrees with the remaining bytes.
    let short = raw_batch_payload(7, 0, b"prod", &one, 2);
    assert!(matches!(
        protocol::decode_request(FrameType::Batch, &short),
        Err(DaemonError::Truncated { needed, got })
            if needed == 2 * RECORD_WIRE_LEN && got == RECORD_WIRE_LEN
    ));

    // Trailing garbage after the declared records.
    let mut trailing = raw_batch_payload(7, 0, b"prod", &one, 1);
    trailing.push(0xAA);
    assert!(matches!(
        protocol::decode_request(FrameType::Batch, &trailing),
        Err(DaemonError::Truncated { .. }) | Err(DaemonError::Malformed(_))
    ));

    // Hostile scalar fields, each a Malformed with a stable message.
    let bad_scalars: Vec<(Vec<u8>, &str)> = vec![
        (raw_batch_payload(7, 9, b"prod", &one, 1), "mode"),
        (raw_batch_payload(7, 0, b"", &one, 1), "tenant"),
        (raw_batch_payload(7, 0, &[0xFF, 0xFE], &one, 1), "utf-8"),
        (
            raw_batch_payload(7, 0, b"prod", &raw_record([9, 0, 0, 0], &features), 1),
            "protocol code",
        ),
        (
            raw_batch_payload(7, 0, b"prod", &raw_record([0, 99, 0, 0], &features), 1),
            "service code",
        ),
        (
            raw_batch_payload(7, 0, b"prod", &raw_record([0, 0, 99, 0], &features), 1),
            "flag code",
        ),
        (
            raw_batch_payload(7, 0, b"prod", &raw_record([0, 0, 0, 99], &features), 1),
            "label code",
        ),
        (
            raw_batch_payload(
                7,
                0,
                b"prod",
                &raw_record([0, 0, 0, 0], &{
                    let mut f = features;
                    f[11] = f64::NAN;
                    f
                }),
                1,
            ),
            "NaN feature",
        ),
        (
            raw_batch_payload(
                7,
                0,
                b"prod",
                &raw_record([0, 0, 0, 0], &{
                    let mut f = features;
                    f[0] = f64::INFINITY;
                    f
                }),
                1,
            ),
            "infinite feature",
        ),
    ];
    for (payload, what) in bad_scalars {
        assert!(
            matches!(
                protocol::decode_request(FrameType::Batch, &payload),
                Err(DaemonError::Malformed(_))
            ),
            "case `{what}` must be Malformed"
        );
    }

    // A ping must carry no payload.
    assert!(matches!(
        protocol::decode_request(FrameType::Ping, &[0x00]),
        Err(DaemonError::Malformed(_))
    ));
}

#[test]
fn corpus_valid_enum_codes_all_decode() {
    // Every in-range categorical code decodes; the first out-of-range
    // code of each vocabulary fails (exact boundary check).
    let features = [0.0f64; 38];
    let bounds = [
        Protocol::ALL.len(),
        Service::ALL.len(),
        Flag::ALL.len(),
        AttackType::ALL.len(),
    ];
    for (slot, bound) in bounds.iter().enumerate() {
        for code in 0..*bound {
            let mut codes = [0u8; 4];
            codes[slot] = code as u8;
            let payload = raw_batch_payload(1, 0, b"t", &raw_record(codes, &features), 1);
            assert!(
                protocol::decode_request(FrameType::Batch, &payload).is_ok(),
                "slot {slot} code {code} must decode"
            );
        }
        let mut codes = [0u8; 4];
        codes[slot] = *bound as u8;
        let payload = raw_batch_payload(1, 0, b"t", &raw_record(codes, &features), 1);
        assert!(
            protocol::decode_request(FrameType::Batch, &payload).is_err(),
            "slot {slot} code {bound} must be rejected"
        );
    }
}

// ---------------------------------------------------------------------------
// live daemon under hostile bytes
// ---------------------------------------------------------------------------

/// Reads whatever the daemon sends until it closes the connection;
/// returns the bytes. Panics if the daemon keeps the connection open
/// past the deadline (a hang is a failure, not a timeout).
fn drain_until_close(stream: &mut TcpStream, deadline: Duration) -> Vec<u8> {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let start = Instant::now();
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                assert!(
                    start.elapsed() < deadline,
                    "daemon kept a hostile connection open for {deadline:?}"
                );
            }
            // Reset is as clean a close as EOF for a hostile peer.
            Err(_) => return out,
        }
    }
}

/// Parses a reject frame out of a server byte stream, if one is there.
fn parse_reject(bytes: &[u8]) -> Option<RejectCode> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let header =
        FrameHeader::decode(bytes[..HEADER_LEN].try_into().ok()?, DEFAULT_MAX_FRAME_LEN).ok()?;
    let payload = bytes.get(HEADER_LEN..HEADER_LEN + header.payload_len)?;
    match protocol::decode_response(header.frame_type, payload).ok()? {
        Response::Reject(reject) => Some(reject.code),
        _ => None,
    }
}

/// One daemon, many attacks. Each hostile connection must end in a
/// typed reject and/or a clean close, and the daemon must then serve a
/// fresh well-formed client — process alive, engine intact.
#[test]
fn live_daemon_survives_hostile_bytes() {
    let spool = common::temp_spool("torture");
    let (engine, records) = common::small_engine(41);
    common::publish(&spool, "prod", &engine.to_bytes());

    let daemon = Daemon::start(
        DaemonConfig::new(&spool)
            .with_poll_interval(Duration::from_millis(100))
            .with_frame_timeout(Duration::from_millis(400)),
    )
    .unwrap();
    let addr = daemon.ingest_addr();
    let close_deadline = Duration::from_secs(5);

    // --- wrong magic -----------------------------------------------------
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&raw_header(*b"HTTP", VERSION, 0x01, 0, 0))
        .unwrap();
    let reply = drain_until_close(&mut s, close_deadline);
    assert_eq!(parse_reject(&reply), Some(RejectCode::Malformed));

    // --- wrong version ---------------------------------------------------
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&raw_header(MAGIC, 9, 0x01, 0, 0)).unwrap();
    let reply = drain_until_close(&mut s, close_deadline);
    assert_eq!(parse_reject(&reply), Some(RejectCode::Unsupported));

    // --- oversized declared length ---------------------------------------
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&good_header(0x01, u32::MAX)).unwrap();
    let reply = drain_until_close(&mut s, close_deadline);
    assert_eq!(parse_reject(&reply), Some(RejectCode::TooLarge));

    // --- malformed payload (bad enum code) -------------------------------
    let payload = raw_batch_payload(3, 0, b"prod", &raw_record([9, 0, 0, 0], &[0.0; 38]), 1);
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&good_header(0x01, payload.len() as u32))
        .unwrap();
    s.write_all(&payload).unwrap();
    let reply = drain_until_close(&mut s, close_deadline);
    assert_eq!(parse_reject(&reply), Some(RejectCode::Malformed));

    // --- mid-frame disconnect --------------------------------------------
    let s = TcpStream::connect(addr).unwrap();
    (&s).write_all(&good_header(0x01, 1024)).unwrap();
    (&s).write_all(&[0u8; 100]).unwrap();
    s.shutdown(Shutdown::Both).unwrap();
    drop(s);

    // --- slow-loris: header then silence ---------------------------------
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&good_header(0x01, 1024)).unwrap();
    let start = Instant::now();
    let _ = drain_until_close(&mut s, close_deadline);
    assert!(
        start.elapsed() < close_deadline,
        "slow-loris connection was not cut off by the frame timeout"
    );

    // --- byte-at-a-time partial writes, then silence ---------------------
    let mut s = TcpStream::connect(addr).unwrap();
    for b in good_header(0x01, 64).iter().take(7) {
        s.write_all(&[*b]).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = drain_until_close(&mut s, close_deadline);

    // --- the daemon still serves well-formed traffic ----------------------
    let mut client = DaemonClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    client.ping().unwrap();
    let verdicts = client.score("prod", &records[..64]).unwrap();
    assert_eq!(verdicts.len(), 64);

    // Malformed traffic was counted, and nothing leaked a connection.
    let text = common::scrape(daemon.metrics_addr());
    let malformed = common::metric(&text, "ghsomd_malformed_total").unwrap();
    assert!(
        malformed >= 4.0,
        "expected ≥4 malformed frames, saw {malformed}\n{text}"
    );

    daemon.shutdown();
    std::fs::remove_dir_all(&spool).ok();
}

/// An unknown tenant is a typed reject on an otherwise healthy
/// connection — the client may keep using it.
#[test]
fn live_daemon_rejects_unknown_tenant_and_keeps_connection() {
    let spool = common::temp_spool("torture_tenant");
    let (engine, records) = common::small_engine(43);
    common::publish(&spool, "prod", &engine.to_bytes());

    let daemon = Daemon::start(DaemonConfig::new(&spool)).unwrap();
    let mut client = DaemonClient::connect(daemon.ingest_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let err = client.score("ghost", &records[..8]).unwrap_err();
    assert!(
        matches!(
            &err,
            DaemonError::Rejected {
                code: RejectCode::UnknownTenant,
                ..
            }
        ),
        "{err:?}"
    );

    // Same connection, known tenant: still served.
    let verdicts = client.score("prod", &records[..8]).unwrap();
    assert_eq!(verdicts.len(), 8);

    // Observe mode answers with stream verdicts on the same socket too.
    let stream_verdicts = client.observe("prod", &records[..8]).unwrap();
    assert_eq!(stream_verdicts.len(), 8);

    daemon.shutdown();
    std::fs::remove_dir_all(&spool).ok();
}
