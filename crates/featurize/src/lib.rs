//! Feature engineering for the GHSOM intrusion-detection pipeline.
//!
//! A SOM consumes fixed-length real vectors; KDD connection records mix
//! continuous counts, bounded rates and three symbolic fields. This crate
//! provides the bridge:
//!
//! * [`schema`] — feature metadata (names and kinds) for the assembled
//!   vector, so downstream tools can explain map dimensions.
//! * [`encode`] — one-hot encoding of the categorical vocabularies
//!   (protocol, service, flag).
//! * [`scale`] — fitted column scalers: min–max, z-score, and
//!   `log1p`+min–max for the heavy-tailed byte/count columns (the standard
//!   treatment in SOM-based IDS work).
//! * [`pipeline`] — [`KddPipeline`], the end-to-end `ConnectionRecord ->
//!   Vec<f64>` transform with fit/transform semantics and serde support.
//! * [`matrix`] — [`FeatureMatrix`], the reusable row-major buffer of the
//!   batched columnar plane.
//! * [`select`] — variance-threshold and top-k feature selection.
//! * [`entropywin`] — windowed traffic-feature entropy series over raw
//!   flows (dispersal/concentration indicators).
//!
//! # Record-at-a-time vs batched columnar
//!
//! Every transform exists in two shapes that produce **bit-identical**
//! output (property-tested): the per-record path
//! ([`KddPipeline::transform`]) that returns one fresh `Vec<f64>`, and the
//! batched columnar plane ([`KddPipeline::transform_batch`],
//! [`scale::ColumnScaler::transform_batch`],
//! [`encode::write_categoricals`], [`select::FeatureSelector::transform_batch`],
//! [`entropywin::features_batch`]) that fills a caller-owned, reused
//! [`FeatureMatrix`] with no per-record allocation. Serving consumers
//! borrow the buffer as a [`mathkit::MatrixView`] and hand it straight to
//! the compiled hierarchy walk — see `docs/ARCHITECTURE.md` at the repo
//! root for where this sits in the record→matrix→arena-walk→verdict
//! data flow.
//!
//! # Example
//!
//! ```
//! use featurize::pipeline::{KddPipeline, PipelineConfig};
//! use featurize::FeatureMatrix;
//! use traffic::synth::{MixSpec, TrafficGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), 1)?;
//! let train = gen.generate(500);
//! let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train)?;
//! let matrix = pipeline.transform_dataset(&train)?;
//! assert_eq!(matrix.rows(), 500);
//! assert_eq!(matrix.cols(), pipeline.output_dim());
//!
//! // The serving loop reuses one buffer across batches instead:
//! let mut buf = FeatureMatrix::new();
//! pipeline.transform_batch(train.records(), &mut buf)?;
//! assert_eq!(buf.as_slice(), matrix.as_slice());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod entropywin;
pub mod error;
pub mod matrix;
pub mod pipeline;
pub mod scale;
pub mod schema;
pub mod select;

pub use error::FeaturizeError;
pub use matrix::FeatureMatrix;
pub use pipeline::{KddPipeline, PipelineConfig};
pub use scale::ScalingKind;
pub use schema::{FeatureKind, FeatureSchema};
