//! The end-to-end record → vector transform.
//!
//! [`KddPipeline`] assembles, for each [`ConnectionRecord`]:
//!
//! 1. the 38 continuous features, scaled by a fitted [`ColumnScaler`], and
//! 2. (optionally) the one-hot categorical block (protocol ⊕ service ⊕
//!    flag), damped by `categorical_scale`.
//!
//! The pipeline is fitted once on training data and then applied to any
//! record; a fitted pipeline serializes with serde so a trained model and
//! its exact input transform can be shipped together.
//!
//! # The batched columnar plane
//!
//! Serving-rate ingest should not pay one heap allocation per record, so
//! the transform exists in three shapes, all producing **bit-identical**
//! vectors (property-tested):
//!
//! * [`KddPipeline::transform`] — one record → one fresh `Vec<f64>`; the
//!   simple path for callers that keep the vector.
//! * [`KddPipeline::transform_into`] — one record into a caller-owned,
//!   reused row buffer; zero allocations steady-state (the single-record
//!   serving path, e.g. `ghsom_serve::Engine::score_record`'s
//!   thread-local scratch row).
//! * [`KddPipeline::transform_batch`] — a whole record slice into a
//!   caller-owned, reused [`FeatureMatrix`]: the continuous block is
//!   gathered row-wise (no per-record `Vec`), the fitted scaler runs as
//!   one strategy-specialized batch kernel over the continuous columns
//!   ([`ColumnScaler::transform_batch`]), and the categorical block is
//!   written in place per row ([`encode::write_categoricals`]). Batch
//!   consumers then borrow the buffer as a [`mathkit::MatrixView`] — the
//!   compiled serving arena walks it directly with no intermediate owned
//!   matrix.

use serde::{Deserialize, Serialize};
use traffic::record::CONTINUOUS_FEATURE_NAMES;
use traffic::{ConnectionRecord, Dataset};

use crate::encode;
use crate::matrix::FeatureMatrix;
use crate::scale::{ColumnScaler, ScalingKind};
use crate::schema::{FeatureKind, FeatureSchema};
use crate::FeaturizeError;

/// Configuration of a [`KddPipeline`].
///
/// `#[non_exhaustive]` so new knobs never break downstream crates: start
/// from [`PipelineConfig::default`] and apply the chainable `with_*`
/// setters (fields stay `pub` for direct assignment through a `mut`
/// binding).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct PipelineConfig {
    /// Scaling strategy for the continuous block.
    pub scaling: ScalingKind,
    /// Whether to append the one-hot categorical block.
    pub include_categoricals: bool,
    /// Value used for the active one-hot position (damps the categorical
    /// block relative to the `[0, 1]`-scaled continuous features).
    pub categorical_scale: f64,
}

impl Default for PipelineConfig {
    /// `log1p`+min–max scaling, categoricals included at half weight —
    /// the configuration used by the headline experiments.
    fn default() -> Self {
        PipelineConfig {
            scaling: ScalingKind::Log1pMinMax,
            include_categoricals: true,
            categorical_scale: 0.5,
        }
    }
}

impl PipelineConfig {
    /// Returns the config with the continuous-block scaling replaced.
    #[must_use]
    pub fn with_scaling(mut self, scaling: ScalingKind) -> Self {
        self.scaling = scaling;
        self
    }

    /// Returns the config with the categorical block toggled.
    #[must_use]
    pub fn with_categoricals(mut self, include: bool) -> Self {
        self.include_categoricals = include;
        self
    }

    /// Returns the config with the one-hot damping factor replaced.
    #[must_use]
    pub fn with_categorical_scale(mut self, scale: f64) -> Self {
        self.categorical_scale = scale;
        self
    }
}

/// A fitted record → vector transform.
///
/// # Example
///
/// ```
/// use featurize::{KddPipeline, PipelineConfig};
/// use traffic::synth::{MixSpec, TrafficGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), 3)?;
/// let train = gen.generate(200);
/// let pipe = KddPipeline::fit(&PipelineConfig::default(), &train)?;
/// let v = pipe.transform(&train.records()[0])?;
/// assert_eq!(v.len(), pipe.output_dim());
/// assert!(v.iter().all(|x| x.is_finite()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KddPipeline {
    config: PipelineConfig,
    scaler: ColumnScaler,
    schema: FeatureSchema,
}

impl KddPipeline {
    /// Fits the pipeline to a training dataset.
    ///
    /// # Errors
    ///
    /// [`FeaturizeError::EmptyInput`] on an empty dataset;
    /// [`FeaturizeError::InvalidParameter`] when `categorical_scale` is not
    /// finite and positive; scaler fitting errors propagate.
    pub fn fit(config: &PipelineConfig, train: &Dataset) -> Result<Self, FeaturizeError> {
        if train.is_empty() {
            return Err(FeaturizeError::EmptyInput);
        }
        if !(config.categorical_scale.is_finite() && config.categorical_scale > 0.0) {
            return Err(FeaturizeError::InvalidParameter {
                name: "categorical_scale",
                reason: "must be finite and positive",
            });
        }
        let rows: Vec<Vec<f64>> = train.iter().map(|r| r.continuous_features()).collect();
        let scaler = ColumnScaler::fit(config.scaling, rows.iter().map(|r| r.as_slice()))?;

        let mut schema = FeatureSchema::new();
        for name in CONTINUOUS_FEATURE_NAMES {
            // Rates and binaries are already in [0,1]; after scaling all
            // continuous columns share that range, so Continuous describes
            // the post-transform kind adequately; keep the raw kind for
            // explanation purposes.
            let kind = if name.ends_with("_rate") {
                FeatureKind::Rate
            } else if matches!(
                name,
                "land" | "logged_in" | "root_shell" | "is_host_login" | "is_guest_login"
            ) {
                FeatureKind::Binary
            } else {
                FeatureKind::Continuous
            };
            schema.push(name, kind);
        }
        if config.include_categoricals {
            for p in traffic::Protocol::ALL {
                schema.push(format!("protocol={p}"), FeatureKind::OneHot);
            }
            for s in traffic::Service::ALL {
                schema.push(format!("service={s}"), FeatureKind::OneHot);
            }
            for f in traffic::Flag::ALL {
                schema.push(format!("flag={f}"), FeatureKind::OneHot);
            }
        }

        Ok(KddPipeline {
            config: config.clone(),
            scaler,
            schema,
        })
    }

    /// Width of the output vectors.
    pub fn output_dim(&self) -> usize {
        self.schema.len()
    }

    /// The output feature schema (names + kinds per column).
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// The configuration the pipeline was fitted with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Transforms one record into a feature vector.
    ///
    /// # Errors
    ///
    /// Propagates scaler width errors (cannot occur for records built by
    /// this workspace, but the CSV path is a trust boundary).
    pub fn transform(&self, rec: &ConnectionRecord) -> Result<Vec<f64>, FeaturizeError> {
        let mut out = rec.continuous_features();
        self.scaler.transform_in_place(&mut out)?;
        if self.config.include_categoricals {
            encode::push_categoricals(
                &mut out,
                rec.protocol,
                rec.service,
                rec.flag,
                self.config.categorical_scale,
            );
        }
        Ok(out)
    }

    /// Transforms one record into a caller-owned, reused row buffer —
    /// bit-identical to [`KddPipeline::transform`] but allocation-free
    /// once the buffer has grown to [`KddPipeline::output_dim`]. This is
    /// the single-record serving hot path (a thread-local scratch row in
    /// `ghsom_serve::Engine::score_record`).
    ///
    /// The buffer is cleared and refilled on every call; its previous
    /// contents never leak into the output.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KddPipeline::transform`].
    pub fn transform_into(
        &self,
        rec: &ConnectionRecord,
        out: &mut Vec<f64>,
    ) -> Result<(), FeaturizeError> {
        // Fixed structural width: a deserialized pipeline whose scaler
        // width disagrees (corrupt/version-skewed artifact) must surface
        // as the scaler's typed DimensionMismatch, not a slice panic.
        let cont = ConnectionRecord::CONTINUOUS_COUNT;
        out.clear();
        out.resize(cont, 0.0);
        rec.write_continuous_features(&mut out[..cont]);
        self.scaler.transform_in_place(&mut out[..cont])?;
        if self.config.include_categoricals {
            out.resize(cont + encode::CATEGORICAL_DIM, 0.0);
            encode::write_categoricals(
                &mut out[cont..],
                rec.protocol,
                rec.service,
                rec.flag,
                self.config.categorical_scale,
            );
        }
        Ok(())
    }

    /// Transforms a whole record slice into a caller-owned, reused
    /// [`FeatureMatrix`] — the batched columnar plane.
    ///
    /// The buffer is reshaped to `records.len() × output_dim()` (reusing
    /// its allocation) and **every cell is overwritten**: the continuous
    /// block row-wise through
    /// [`ConnectionRecord::write_continuous_features`], the scaling as one
    /// strategy-specialized column kernel
    /// ([`ColumnScaler::transform_batch`]), the categorical block per-row
    /// in place ([`encode::write_categoricals`]). No per-record
    /// allocation, and output bit-identical to mapping
    /// [`KddPipeline::transform`] over the slice (property-tested).
    ///
    /// An empty slice resets the buffer to `0 × output_dim()`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KddPipeline::transform`]; the buffer contents
    /// are unspecified after an error.
    ///
    /// # Example
    ///
    /// ```
    /// use featurize::{FeatureMatrix, KddPipeline, PipelineConfig};
    /// use traffic::synth::{MixSpec, TrafficGenerator};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), 3)?;
    /// let train = gen.generate(100);
    /// let pipe = KddPipeline::fit(&PipelineConfig::default(), &train)?;
    ///
    /// let mut buf = FeatureMatrix::new();
    /// pipe.transform_batch(train.records(), &mut buf)?;
    /// assert_eq!(buf.shape(), (100, pipe.output_dim()));
    /// // Bit-identical to the per-record path.
    /// assert_eq!(buf.row(7), pipe.transform(&train.records()[7])?.as_slice());
    /// # Ok(())
    /// # }
    /// ```
    pub fn transform_batch(
        &self,
        records: &[ConnectionRecord],
        out: &mut FeatureMatrix,
    ) -> Result<(), FeaturizeError> {
        // Structural layout, validated up front: a deserialized pipeline
        // whose fitted scaler width disagrees with the 38 continuous
        // features (corrupt/version-skewed artifact) gets the typed
        // error the per-record path produces, never a slice panic.
        let cont = ConnectionRecord::CONTINUOUS_COUNT;
        if self.scaler.width() != cont {
            return Err(FeaturizeError::DimensionMismatch {
                expected: cont,
                found: self.scaler.width(),
            });
        }
        let dim = if self.config.include_categoricals {
            cont + encode::CATEGORICAL_DIM
        } else {
            cont
        };
        out.reset(records.len(), dim);
        if records.is_empty() {
            return Ok(());
        }
        // Stage 1 — gather: one contiguous row write per record, no
        // intermediate Vec.
        for (r, rec) in records.iter().enumerate() {
            rec.write_continuous_features(&mut out.row_mut(r)[..cont]);
        }
        // Stage 2 — scale: one strategy-specialized kernel over the
        // continuous columns of every row.
        self.scaler.transform_batch(out.data_mut(), dim)?;
        // Stage 3 — encode: fill each row's categorical segment in place.
        if self.config.include_categoricals {
            let scale = self.config.categorical_scale;
            for (r, rec) in records.iter().enumerate() {
                encode::write_categoricals(
                    &mut out.row_mut(r)[cont..],
                    rec.protocol,
                    rec.service,
                    rec.flag,
                    scale,
                );
            }
        }
        Ok(())
    }

    /// Transforms a whole dataset into a row-per-record matrix.
    ///
    /// Runs on the batched columnar plane
    /// ([`KddPipeline::transform_batch`]) and copies the result into an
    /// owned [`mathkit::Matrix`] — training-time consumers keep the owned
    /// type; serving paths reuse a [`FeatureMatrix`] instead.
    ///
    /// # Errors
    ///
    /// [`FeaturizeError::EmptyInput`] for an empty dataset;
    /// [`FeaturizeError::NonFinite`] when the transformed matrix contains
    /// NaN/∞ (possible only for records violating
    /// [`ConnectionRecord::validate`]); per-record errors propagate.
    pub fn transform_dataset(&self, ds: &Dataset) -> Result<mathkit::Matrix, FeaturizeError> {
        if ds.is_empty() {
            return Err(FeaturizeError::EmptyInput);
        }
        let mut buf = FeatureMatrix::with_capacity(ds.len(), self.output_dim());
        self.transform_batch(ds.records(), &mut buf)?;
        // Owned matrices promise finite entries (Matrix::from_rows would
        // have checked); preserve that contract on the batched route.
        if !mathkit::vector::all_finite(buf.as_slice()) {
            return Err(FeaturizeError::NonFinite);
        }
        buf.to_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::synth::{MixSpec, TrafficGenerator};
    use traffic::AttackType;

    fn train_data(n: usize) -> Dataset {
        TrafficGenerator::new(MixSpec::kdd_train(), 42)
            .unwrap()
            .generate(n)
    }

    #[test]
    fn default_pipeline_dims() {
        let train = train_data(300);
        let pipe = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        assert_eq!(
            pipe.output_dim(),
            ConnectionRecord::CONTINUOUS_COUNT + encode::CATEGORICAL_DIM
        );
        assert_eq!(pipe.schema().len(), pipe.output_dim());
    }

    #[test]
    fn continuous_only_pipeline() {
        let train = train_data(300);
        let config = PipelineConfig {
            include_categoricals: false,
            ..Default::default()
        };
        let pipe = KddPipeline::fit(&config, &train).unwrap();
        assert_eq!(pipe.output_dim(), ConnectionRecord::CONTINUOUS_COUNT);
    }

    #[test]
    fn outputs_are_bounded_for_minmax_family() {
        let train = train_data(500);
        for scaling in [ScalingKind::MinMax, ScalingKind::Log1pMinMax] {
            let config = PipelineConfig {
                scaling,
                ..Default::default()
            };
            let pipe = KddPipeline::fit(&config, &train).unwrap();
            for rec in train.iter() {
                let v = pipe.transform(rec).unwrap();
                for &x in &v {
                    assert!((0.0..=1.0).contains(&x), "{scaling} produced {x}");
                }
            }
        }
    }

    #[test]
    fn unseen_test_data_stays_bounded() {
        let train = train_data(300);
        let pipe = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        // Test mix contains unseen attack types with extreme values.
        let mut gen = TrafficGenerator::new(MixSpec::kdd_test(), 7).unwrap();
        let test = gen.generate(300);
        for rec in test.iter() {
            let v = pipe.transform(rec).unwrap();
            assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
        }
    }

    #[test]
    fn transform_into_matches_transform_bitwise() {
        let train = train_data(200);
        for config in [
            PipelineConfig::default(),
            PipelineConfig::default().with_categoricals(false),
            PipelineConfig::default().with_scaling(ScalingKind::ZScore),
        ] {
            let pipe = KddPipeline::fit(&config, &train).unwrap();
            // Reuse one poisoned buffer across all records.
            let mut buf = vec![f64::NAN; 3];
            for rec in train.iter().take(50) {
                let fresh = pipe.transform(rec).unwrap();
                pipe.transform_into(rec, &mut buf).unwrap();
                assert_eq!(buf.len(), fresh.len());
                for (a, b) in buf.iter().zip(&fresh) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn transform_batch_matches_transform_bitwise() {
        let train = train_data(300);
        for config in [
            PipelineConfig::default(),
            PipelineConfig::default().with_categoricals(false),
            PipelineConfig::default().with_scaling(ScalingKind::MinMax),
            PipelineConfig::default().with_scaling(ScalingKind::ZScore),
        ] {
            let pipe = KddPipeline::fit(&config, &train).unwrap();
            let mut buf = FeatureMatrix::new();
            pipe.transform_batch(train.records(), &mut buf).unwrap();
            assert_eq!(buf.shape(), (train.len(), pipe.output_dim()));
            for (r, rec) in train.iter().enumerate() {
                let fresh = pipe.transform(rec).unwrap();
                for (a, b) in buf.row(r).iter().zip(&fresh) {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {r}");
                }
            }
            // Reuse with a smaller batch: no rows leak from the prior one.
            pipe.transform_batch(&train.records()[..5], &mut buf)
                .unwrap();
            assert_eq!(buf.rows(), 5);
            // Empty batches reset the shape.
            pipe.transform_batch(&[], &mut buf).unwrap();
            assert!(buf.is_empty());
            assert_eq!(buf.cols(), pipe.output_dim());
        }
    }

    #[test]
    fn transform_dataset_shape() {
        let train = train_data(100);
        let pipe = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        let m = pipe.transform_dataset(&train).unwrap();
        assert_eq!(m.shape(), (100, pipe.output_dim()));
    }

    #[test]
    fn attacks_are_displaced_from_normal_in_feature_space() {
        let train = train_data(2_000);
        let pipe = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        let normal_mean = mathkit::vector::mean_vector(
            train
                .iter()
                .filter(|r| r.label == AttackType::Normal)
                .map(|r| pipe.transform(r).unwrap())
                .collect::<Vec<_>>()
                .iter()
                .map(|v| v.as_slice()),
        )
        .unwrap();
        let smurf_mean = mathkit::vector::mean_vector(
            train
                .iter()
                .filter(|r| r.label == AttackType::Smurf)
                .map(|r| pipe.transform(r).unwrap())
                .collect::<Vec<_>>()
                .iter()
                .map(|v| v.as_slice()),
        )
        .unwrap();
        let d = mathkit::distance::euclidean(&normal_mean, &smurf_mean);
        assert!(d > 1.0, "smurf centroid only {d} from normal centroid");
    }

    #[test]
    fn fit_rejects_bad_inputs() {
        assert_eq!(
            KddPipeline::fit(&PipelineConfig::default(), &Dataset::new()).unwrap_err(),
            FeaturizeError::EmptyInput
        );
        let config = PipelineConfig {
            categorical_scale: 0.0,
            ..Default::default()
        };
        assert!(matches!(
            KddPipeline::fit(&config, &train_data(10)).unwrap_err(),
            FeaturizeError::InvalidParameter { .. }
        ));
        assert!(KddPipeline::fit(
            &PipelineConfig {
                categorical_scale: f64::NAN,
                ..Default::default()
            },
            &train_data(10)
        )
        .is_err());
    }

    #[test]
    fn schema_names_are_meaningful() {
        let pipe = KddPipeline::fit(&PipelineConfig::default(), &train_data(50)).unwrap();
        let schema = pipe.schema();
        assert_eq!(schema.name(0), "duration");
        assert!(schema.index_of("service=http").is_some());
        assert!(schema.index_of("flag=S0").is_some());
        assert_eq!(
            schema.kind(schema.index_of("serror_rate").unwrap()),
            FeatureKind::Rate
        );
        assert_eq!(
            schema.kind(schema.index_of("land").unwrap()),
            FeatureKind::Binary
        );
    }

    #[test]
    fn skewed_scaler_width_is_a_typed_error_not_a_panic() {
        // A corrupt or version-skewed artifact can deserialize into a
        // pipeline whose fitted scaler width disagrees with the 38
        // continuous features; every transform shape must answer with
        // the typed DimensionMismatch, never a slice panic.
        let train = train_data(100);
        let pipe = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        let mut v = pipe.to_value();
        let serde::Value::Map(fields) = &mut v else {
            panic!("pipeline serializes as a map")
        };
        let scaler = &mut fields
            .iter_mut()
            .find(|(k, _)| k == "scaler")
            .expect("scaler field")
            .1;
        let serde::Value::Map(scaler_fields) = scaler else {
            panic!("scaler serializes as a map")
        };
        let params = &mut scaler_fields
            .iter_mut()
            .find(|(k, _)| k == "params")
            .expect("params field")
            .1;
        let serde::Value::Seq(pairs) = params else {
            panic!("params serialize as a sequence")
        };
        pairs.pop(); // 38 → 37 fitted columns
        let skewed = KddPipeline::from_value(&v).unwrap();

        let rec = &train.records()[0];
        assert!(matches!(
            skewed.transform(rec).unwrap_err(),
            FeaturizeError::DimensionMismatch { .. }
        ));
        let mut row = Vec::new();
        assert!(matches!(
            skewed.transform_into(rec, &mut row).unwrap_err(),
            FeaturizeError::DimensionMismatch { .. }
        ));
        let mut buf = FeatureMatrix::new();
        assert!(matches!(
            skewed
                .transform_batch(train.records(), &mut buf)
                .unwrap_err(),
            FeaturizeError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn serde_roundtrip_preserves_transform() {
        let train = train_data(100);
        let pipe = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        let json = serde_json::to_string(&pipe).unwrap();
        let back: KddPipeline = serde_json::from_str(&json).unwrap();
        for rec in train.iter().take(10) {
            assert_eq!(pipe.transform(rec).unwrap(), back.transform(rec).unwrap());
        }
    }
}
