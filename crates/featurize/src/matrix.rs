//! The reusable row-major feature buffer of the batched transform plane.
//!
//! [`FeatureMatrix`] is the caller-owned output buffer that
//! [`crate::KddPipeline::transform_batch`] (and the other batch kernels in
//! this crate) write into. Unlike [`mathkit::Matrix`] it is *reusable*: a
//! serving loop allocates one, and every subsequent batch reshapes it in
//! place — steady-state transforms allocate nothing once the buffer has
//! grown to the largest batch seen. Batch consumers borrow it as a
//! [`mathkit::MatrixView`] ([`FeatureMatrix::as_view`]), which the
//! compiled serving arena walks directly — no intermediate owned matrix.
//!
//! Reuse safety: [`FeatureMatrix::reset`] reshapes without zeroing, so
//! every kernel that calls it **must overwrite every cell** of the new
//! shape before the buffer is read (the pipeline's batch kernels do; the
//! property tests pin that reuse never leaks rows from a prior batch).

use mathkit::MatrixView;

/// A reusable, caller-owned row-major `f64` matrix buffer.
///
/// # Example
///
/// ```
/// use featurize::{FeatureMatrix, KddPipeline, PipelineConfig};
/// use traffic::synth::{MixSpec, TrafficGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), 3)?;
/// let train = gen.generate(200);
/// let pipe = KddPipeline::fit(&PipelineConfig::default(), &train)?;
///
/// let mut buf = FeatureMatrix::new();
/// pipe.transform_batch(train.records(), &mut buf)?;
/// assert_eq!(buf.shape(), (200, pipe.output_dim()));
///
/// // The same buffer is reused by the next batch — no reallocation once
/// // it has grown to the largest batch seen.
/// pipe.transform_batch(&train.records()[..50], &mut buf)?;
/// assert_eq!(buf.rows(), 50);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// An empty buffer (`0 × 0`, no allocation).
    pub fn new() -> Self {
        FeatureMatrix::default()
    }

    /// An empty buffer with capacity for `rows × cols` pre-allocated.
    pub fn with_capacity(rows: usize, cols: usize) -> Self {
        FeatureMatrix {
            rows: 0,
            cols: 0,
            data: Vec::with_capacity(rows * cols),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the buffer holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of the buffer contents.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows the buffer as a [`MatrixView`] — the zero-copy handoff to
    /// batch consumers (detector scoring, the compiled arena walk).
    #[inline]
    pub fn as_view(&self) -> MatrixView<'_> {
        MatrixView::new(self.rows, self.cols, &self.data)
            .expect("FeatureMatrix maintains data.len() == rows * cols") // LINT-ALLOW(no-panic): type invariant upheld by every constructor and reset()
    }

    /// Reshapes the buffer to `rows × cols`, reusing its allocation.
    ///
    /// The resulting contents are **unspecified** (cells may hold values
    /// from a previous batch): the caller contract is to overwrite every
    /// cell before the buffer is read. This is what makes reuse free — no
    /// zeroing pass per batch.
    ///
    /// # Panics
    ///
    /// Panics when `rows > 0` and `cols == 0` — a zero-width non-empty
    /// matrix cannot hold row data ([`MatrixView`] rejects the shape
    /// too).
    pub fn reset(&mut self, rows: usize, cols: usize) {
        assert!(
            cols > 0 || rows == 0,
            "a non-empty feature matrix must have at least one column"
        );
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Empties the buffer (capacity is retained).
    pub fn clear(&mut self) {
        self.rows = 0;
        self.cols = 0;
        self.data.clear();
    }

    /// Bounds retained scratch memory: when the allocation exceeds
    /// `max_elems` `f64` elements, the contents are dropped and the
    /// capacity shrunk back to at most `max_elems`. A no-op otherwise —
    /// steady-state reuse keeps its allocation. Long-lived serving
    /// threads call this after each batch so one oversized backfill
    /// cannot pin its peak memory forever.
    pub fn shrink_if_over(&mut self, max_elems: usize) {
        if self.data.capacity() > max_elems {
            self.clear();
            self.data.shrink_to(max_elems);
        }
    }

    /// Mutable flat access for the batch kernels in this crate.
    #[inline]
    pub(crate) fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub(crate) fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies the buffer into an owned [`mathkit::Matrix`].
    ///
    /// # Errors
    ///
    /// [`crate::FeaturizeError::EmptyInput`] when the buffer has no rows
    /// or no columns (owned matrices cannot be empty).
    pub fn to_matrix(&self) -> Result<mathkit::Matrix, crate::FeaturizeError> {
        Ok(mathkit::Matrix::from_flat(
            self.rows,
            self.cols,
            self.data.clone(),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_reshapes_and_reuses_capacity() {
        let mut m = FeatureMatrix::with_capacity(4, 3);
        m.reset(4, 3);
        assert_eq!(m.shape(), (4, 3));
        assert_eq!(m.as_slice().len(), 12);
        let ptr = m.as_slice().as_ptr();
        m.reset(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.as_slice().len(), 6);
        // Shrinking reuses the same allocation.
        assert_eq!(m.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn rows_and_views_are_consistent() {
        let mut m = FeatureMatrix::new();
        m.reset(2, 2);
        m.row_mut(0).copy_from_slice(&[1.0, 2.0]);
        m.row_mut(1).copy_from_slice(&[3.0, 4.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_view().row(0), &[1.0, 2.0]);
        assert_eq!(m.as_view().shape(), (2, 2));
        let owned = m.to_matrix().unwrap();
        assert_eq!(owned.shape(), (2, 2));
        assert_eq!(owned.get(1, 0), 3.0);
    }

    #[test]
    fn shrink_if_over_bounds_retained_capacity() {
        let mut m = FeatureMatrix::new();
        m.reset(100, 10);
        assert!(m.data.capacity() >= 1_000);
        // Under the cap: a no-op, contents and capacity retained.
        m.shrink_if_over(4_096);
        assert_eq!(m.shape(), (100, 10));
        // Over the cap: contents dropped, capacity bounded.
        m.shrink_if_over(64);
        assert!(m.is_empty());
        assert!(m.data.capacity() <= 64);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn reset_rejects_zero_width_non_empty_shapes() {
        FeatureMatrix::new().reset(3, 0);
    }

    #[test]
    fn empty_buffers_are_legal() {
        let mut m = FeatureMatrix::new();
        assert!(m.is_empty());
        assert!(m.as_view().is_empty());
        assert!(m.to_matrix().is_err());
        m.reset(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.cols(), 5);
        m.reset(1, 5);
        assert!(!m.is_empty());
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.as_slice().len(), 0);
    }
}
