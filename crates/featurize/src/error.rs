//! Error type for feature engineering.

use std::fmt;

/// Errors produced by encoders, scalers and pipelines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FeaturizeError {
    /// `transform` was called with an input of the wrong width.
    DimensionMismatch {
        /// Width the fitted transform expects.
        expected: usize,
        /// Width it received.
        found: usize,
    },
    /// `fit` was called on an empty dataset.
    EmptyInput,
    /// The input contained NaN or infinite values.
    NonFinite,
    /// A configuration parameter was out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Violated constraint.
        reason: &'static str,
    },
}

impl fmt::Display for FeaturizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeaturizeError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            FeaturizeError::EmptyInput => write!(f, "fit requires a non-empty dataset"),
            FeaturizeError::NonFinite => write!(f, "input contains NaN or infinite values"),
            FeaturizeError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for FeaturizeError {}

impl From<mathkit::MathError> for FeaturizeError {
    fn from(err: mathkit::MathError) -> Self {
        match err {
            mathkit::MathError::DimensionMismatch { expected, found } => {
                FeaturizeError::DimensionMismatch { expected, found }
            }
            mathkit::MathError::EmptyInput => FeaturizeError::EmptyInput,
            mathkit::MathError::NonFinite => FeaturizeError::NonFinite,
            mathkit::MathError::InvalidParameter { name, reason } => {
                FeaturizeError::InvalidParameter { name, reason }
            }
            mathkit::MathError::NoConvergence { .. } => FeaturizeError::InvalidParameter {
                name: "iterations",
                reason: "underlying numerical routine failed to converge",
            },
            // MathError is #[non_exhaustive]; map future variants to the
            // least-specific bucket rather than silently renaming them.
            _ => FeaturizeError::InvalidParameter {
                name: "input",
                reason: "underlying numerical routine failed",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            FeaturizeError::DimensionMismatch {
                expected: 88,
                found: 41
            }
            .to_string(),
            "dimension mismatch: expected 88, found 41"
        );
        assert_eq!(
            FeaturizeError::EmptyInput.to_string(),
            "fit requires a non-empty dataset"
        );
    }

    #[test]
    fn converts_math_errors() {
        let e: FeaturizeError = mathkit::MathError::EmptyInput.into();
        assert_eq!(e, FeaturizeError::EmptyInput);
        let e: FeaturizeError = mathkit::MathError::DimensionMismatch {
            expected: 2,
            found: 3,
        }
        .into();
        assert!(matches!(e, FeaturizeError::DimensionMismatch { .. }));
        let e: FeaturizeError = mathkit::MathError::NoConvergence { iterations: 5 }.into();
        assert!(matches!(e, FeaturizeError::InvalidParameter { .. }));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<FeaturizeError>();
    }
}
