//! Feature selection on transformed matrices.
//!
//! Two simple, fit-on-train selectors used by the ablation experiments:
//! variance thresholding (drop near-constant columns — one-hot columns for
//! services that never occur, for instance) and top-k by variance.
//!
//! Three transform shapes: [`FeatureSelector::transform`] (one row → fresh
//! `Vec`), [`FeatureSelector::transform_matrix`] (owned matrix → owned
//! matrix), and [`FeatureSelector::transform_batch`] — the column-gather
//! batch kernel over a borrowed [`mathkit::MatrixView`] into a reused
//! [`FeatureMatrix`], allocation-free steady-state.

use mathkit::MatrixView;
use serde::{Deserialize, Serialize};

use crate::matrix::FeatureMatrix;
use crate::FeaturizeError;

/// A fitted column-subset selector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSelector {
    keep: Vec<usize>,
    input_dim: usize,
}

impl FeatureSelector {
    /// Keeps every column whose variance on `data` exceeds `threshold`.
    ///
    /// # Errors
    ///
    /// [`FeaturizeError::InvalidParameter`] when `threshold` is negative or
    /// not finite, or when no column survives.
    pub fn variance_threshold(
        data: &mathkit::Matrix,
        threshold: f64,
    ) -> Result<Self, FeaturizeError> {
        if !threshold.is_finite() || threshold < 0.0 {
            return Err(FeaturizeError::InvalidParameter {
                name: "threshold",
                reason: "must be finite and non-negative",
            });
        }
        let vars = data.col_variances();
        let keep: Vec<usize> = vars
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > threshold)
            .map(|(i, _)| i)
            .collect();
        if keep.is_empty() {
            return Err(FeaturizeError::InvalidParameter {
                name: "threshold",
                reason: "no column exceeds the variance threshold",
            });
        }
        Ok(FeatureSelector {
            keep,
            input_dim: data.cols(),
        })
    }

    /// Keeps the `k` highest-variance columns (in original column order).
    ///
    /// # Errors
    ///
    /// [`FeaturizeError::InvalidParameter`] when `k` is zero or exceeds the
    /// column count.
    pub fn top_k_by_variance(data: &mathkit::Matrix, k: usize) -> Result<Self, FeaturizeError> {
        if k == 0 || k > data.cols() {
            return Err(FeaturizeError::InvalidParameter {
                name: "k",
                reason: "must be in 1..=column count",
            });
        }
        let vars = data.col_variances();
        let mut order: Vec<usize> = (0..data.cols()).collect();
        order.sort_by(|&a, &b| vars[b].total_cmp(&vars[a]));
        let mut keep: Vec<usize> = order.into_iter().take(k).collect();
        keep.sort_unstable();
        Ok(FeatureSelector {
            keep,
            input_dim: data.cols(),
        })
    }

    /// The kept column indices, ascending.
    pub fn kept_indices(&self) -> &[usize] {
        &self.keep
    }

    /// Number of output columns.
    pub fn output_dim(&self) -> usize {
        self.keep.len()
    }

    /// Width the selector expects at transform time.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Projects one vector onto the kept columns.
    ///
    /// # Errors
    ///
    /// [`FeaturizeError::DimensionMismatch`] on width mismatch.
    // LINT-ALLOW(no-index): keep indices are < input_dim by fit() construction and the row width is checked against input_dim above
    pub fn transform(&self, row: &[f64]) -> Result<Vec<f64>, FeaturizeError> {
        if row.len() != self.input_dim {
            return Err(FeaturizeError::DimensionMismatch {
                expected: self.input_dim,
                found: row.len(),
            });
        }
        Ok(self.keep.iter().map(|&i| row[i]).collect())
    }

    /// Projects a whole matrix.
    ///
    /// # Errors
    ///
    /// [`FeaturizeError::DimensionMismatch`] on width mismatch.
    pub fn transform_matrix(
        &self,
        data: &mathkit::Matrix,
    ) -> Result<mathkit::Matrix, FeaturizeError> {
        let rows: Result<Vec<Vec<f64>>, _> = data.iter_rows().map(|r| self.transform(r)).collect();
        Ok(mathkit::Matrix::from_rows(rows?)?)
    }

    /// Projects every row of a borrowed matrix view into a reused output
    /// buffer — the column-gather batch kernel (no per-row `Vec`, no owned
    /// intermediate matrix). `out` is reshaped to
    /// `data.rows() × output_dim()` and fully overwritten.
    ///
    /// # Errors
    ///
    /// [`FeaturizeError::DimensionMismatch`] when `data.cols()` disagrees
    /// with the fitted input width.
    // LINT-ALLOW(no-index): keep indices are < input_dim by fit() construction and the view width is checked against input_dim above
    pub fn transform_batch(
        &self,
        data: MatrixView<'_>,
        out: &mut FeatureMatrix,
    ) -> Result<(), FeaturizeError> {
        if data.cols() != self.input_dim {
            return Err(FeaturizeError::DimensionMismatch {
                expected: self.input_dim,
                found: data.cols(),
            });
        }
        out.reset(data.rows(), self.keep.len());
        for (r, row) in data.iter_rows().enumerate() {
            for (dst, &c) in out.row_mut(r).iter_mut().zip(&self.keep) {
                *dst = row[c];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::Matrix;

    fn data() -> Matrix {
        // Column 0: variance 0 (constant); column 1: small; column 2: large.
        Matrix::from_rows(vec![
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.1, 10.0],
            vec![1.0, 0.2, 20.0],
            vec![1.0, 0.1, 30.0],
        ])
        .unwrap()
    }

    #[test]
    fn variance_threshold_drops_constant_columns() {
        let sel = FeatureSelector::variance_threshold(&data(), 0.0).unwrap();
        assert_eq!(sel.kept_indices(), &[1, 2]);
        assert_eq!(sel.output_dim(), 2);
        assert_eq!(sel.input_dim(), 3);
    }

    #[test]
    fn higher_threshold_drops_more() {
        let sel = FeatureSelector::variance_threshold(&data(), 1.0).unwrap();
        assert_eq!(sel.kept_indices(), &[2]);
    }

    #[test]
    fn threshold_that_drops_everything_errors() {
        assert!(FeatureSelector::variance_threshold(&data(), 1e12).is_err());
        assert!(FeatureSelector::variance_threshold(&data(), -1.0).is_err());
        assert!(FeatureSelector::variance_threshold(&data(), f64::NAN).is_err());
    }

    #[test]
    fn top_k_selects_highest_variance_in_order() {
        let sel = FeatureSelector::top_k_by_variance(&data(), 2).unwrap();
        assert_eq!(sel.kept_indices(), &[1, 2]);
        let sel1 = FeatureSelector::top_k_by_variance(&data(), 1).unwrap();
        assert_eq!(sel1.kept_indices(), &[2]);
    }

    #[test]
    fn top_k_validates_k() {
        assert!(FeatureSelector::top_k_by_variance(&data(), 0).is_err());
        assert!(FeatureSelector::top_k_by_variance(&data(), 4).is_err());
    }

    #[test]
    fn transform_projects_columns() {
        let sel = FeatureSelector::top_k_by_variance(&data(), 2).unwrap();
        assert_eq!(sel.transform(&[9.0, 8.0, 7.0]).unwrap(), vec![8.0, 7.0]);
        assert!(sel.transform(&[1.0]).is_err());
    }

    #[test]
    fn transform_matrix_projects_all_rows() {
        let sel = FeatureSelector::top_k_by_variance(&data(), 1).unwrap();
        let m = sel.transform_matrix(&data()).unwrap();
        assert_eq!(m.shape(), (4, 1));
        assert_eq!(m.col(0), vec![0.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn transform_batch_matches_transform_matrix() {
        let d = data();
        let sel = FeatureSelector::top_k_by_variance(&d, 2).unwrap();
        let owned = sel.transform_matrix(&d).unwrap();
        // Pre-poison the buffer: batch output must fully overwrite it.
        let mut out = FeatureMatrix::new();
        out.reset(7, 9);
        sel.transform_batch(d.view(), &mut out).unwrap();
        assert_eq!(out.shape(), owned.shape());
        assert_eq!(out.as_slice(), owned.as_slice());
        // Width mismatch is typed.
        let narrow = mathkit::Matrix::zeros(2, 2);
        assert!(matches!(
            sel.transform_batch(narrow.view(), &mut out).unwrap_err(),
            FeaturizeError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn serde_roundtrip() {
        let sel = FeatureSelector::top_k_by_variance(&data(), 2).unwrap();
        let json = serde_json::to_string(&sel).unwrap();
        let back: FeatureSelector = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sel);
    }
}
