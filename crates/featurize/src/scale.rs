//! Fitted column scalers.
//!
//! All scalers follow fit/transform semantics: statistics are estimated on
//! the training columns once, then applied to any number of vectors
//! (including unseen test data, whose values may fall outside the training
//! range — min–max outputs are clamped to `[0, 1]` so the SOM input space
//! stays bounded, which is what the GHSOM training dynamics assume).
//!
//! Two transform shapes exist:
//!
//! * [`ColumnScaler::transform_in_place`] / [`ColumnScaler::transform`] —
//!   one row at a time, with the scaling-strategy dispatch inside the
//!   element loop (the historical per-record path).
//! * [`ColumnScaler::transform_batch`] — the column-sliced batch kernel:
//!   the strategy is matched **once**, then a strategy-specialized tight
//!   loop streams every row's leading `width()` columns against the
//!   per-column `(offset, scale)` parameters. Output is bit-identical to
//!   the per-row path (same element-wise operation sequence); only the
//!   dispatch overhead and the per-record allocation disappear.

use serde::{Deserialize, Serialize};

use crate::FeaturizeError;

/// The scaling strategy for the continuous feature block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScalingKind {
    /// `(x − min) / (max − min)`, clamped to `[0, 1]`.
    MinMax,
    /// `(x − μ) / σ` (constant columns map to 0).
    ZScore,
    /// `log1p(x)` then min–max — the default: KDD byte/count columns span
    /// seven orders of magnitude, and SOMs need comparable feature ranges.
    #[default]
    Log1pMinMax,
}

impl std::fmt::Display for ScalingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ScalingKind::MinMax => "min-max",
            ScalingKind::ZScore => "z-score",
            ScalingKind::Log1pMinMax => "log1p+min-max",
        };
        f.write_str(name)
    }
}

/// A scaler fitted to a set of columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnScaler {
    kind: ScalingKind,
    /// Per-column `(offset, scale)` such that `y = (f(x) − offset) · scale`,
    /// where `f` is identity or `log1p` depending on `kind`.
    params: Vec<(f64, f64)>,
}

impl ColumnScaler {
    /// Fits the scaler to `rows` (each row one sample, columns aligned).
    ///
    /// # Errors
    ///
    /// [`FeaturizeError::EmptyInput`] when `rows` is empty or rows have zero
    /// width; [`FeaturizeError::DimensionMismatch`] on ragged rows;
    /// [`FeaturizeError::NonFinite`] when any input is NaN/∞.
    pub fn fit<'a, I>(kind: ScalingKind, rows: I) -> Result<Self, FeaturizeError>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut iter = rows.into_iter();
        let first = iter.next().ok_or(FeaturizeError::EmptyInput)?;
        let width = first.len();
        if width == 0 {
            return Err(FeaturizeError::EmptyInput);
        }

        // Track per-column statistics in one pass.
        let mut mins = vec![f64::INFINITY; width];
        let mut maxs = vec![f64::NEG_INFINITY; width];
        let mut welford: Vec<mathkit::Welford> = vec![mathkit::Welford::new(); width];

        let mut absorb = |row: &[f64]| -> Result<(), FeaturizeError> {
            if row.len() != width {
                return Err(FeaturizeError::DimensionMismatch {
                    expected: width,
                    found: row.len(),
                });
            }
            for (c, &x) in row.iter().enumerate() {
                if !x.is_finite() {
                    return Err(FeaturizeError::NonFinite);
                }
                let v = match kind {
                    ScalingKind::Log1pMinMax => x.max(0.0).ln_1p(),
                    _ => x,
                };
                mins[c] = mins[c].min(v);
                maxs[c] = maxs[c].max(v);
                welford[c].push(v);
            }
            Ok(())
        };
        absorb(first)?;
        for row in iter {
            absorb(row)?;
        }

        let params = (0..width)
            .map(|c| match kind {
                ScalingKind::MinMax | ScalingKind::Log1pMinMax => {
                    let range = maxs[c] - mins[c];
                    if range > 0.0 {
                        (mins[c], 1.0 / range)
                    } else {
                        // Constant column: map everything to 0.
                        (mins[c], 0.0)
                    }
                }
                ScalingKind::ZScore => {
                    let std = welford[c].population_std();
                    if std > 0.0 {
                        (welford[c].mean(), 1.0 / std)
                    } else {
                        (welford[c].mean(), 0.0)
                    }
                }
            })
            .collect();

        Ok(ColumnScaler { kind, params })
    }

    /// The strategy this scaler was fitted with.
    pub fn kind(&self) -> ScalingKind {
        self.kind
    }

    /// Number of columns the scaler expects.
    pub fn width(&self) -> usize {
        self.params.len()
    }

    /// Transforms one row in place.
    ///
    /// # Errors
    ///
    /// [`FeaturizeError::DimensionMismatch`] on width mismatch.
    pub fn transform_in_place(&self, row: &mut [f64]) -> Result<(), FeaturizeError> {
        if row.len() != self.params.len() {
            return Err(FeaturizeError::DimensionMismatch {
                expected: self.params.len(),
                found: row.len(),
            });
        }
        for (x, &(offset, scale)) in row.iter_mut().zip(&self.params) {
            let v = match self.kind {
                ScalingKind::Log1pMinMax => x.max(0.0).ln_1p(),
                _ => *x,
            };
            let y = (v - offset) * scale;
            *x = match self.kind {
                // Keep the SOM input space bounded even for unseen extremes.
                ScalingKind::MinMax | ScalingKind::Log1pMinMax => y.clamp(0.0, 1.0),
                ScalingKind::ZScore => y,
            };
        }
        Ok(())
    }

    /// Transforms a row into a fresh vector.
    ///
    /// # Errors
    ///
    /// [`FeaturizeError::DimensionMismatch`] on width mismatch.
    pub fn transform(&self, row: &[f64]) -> Result<Vec<f64>, FeaturizeError> {
        let mut out = row.to_vec();
        self.transform_in_place(&mut out)?;
        Ok(out)
    }

    /// Scales the leading [`ColumnScaler::width`] columns of every
    /// `stride`-wide row in a flat row-major buffer — the batch kernel of
    /// the columnar transform plane.
    ///
    /// `stride >= width()` lets the caller scale the continuous prefix of
    /// rows that also carry a categorical block (the
    /// [`crate::KddPipeline::transform_batch`] layout); columns past
    /// `width()` are untouched. Bit-identical to calling
    /// [`ColumnScaler::transform_in_place`] on each row's prefix.
    ///
    /// # Errors
    ///
    /// [`FeaturizeError::DimensionMismatch`] when `stride < width()` or
    /// `data.len()` is not a whole number of `stride`-wide rows.
    pub fn transform_batch(&self, data: &mut [f64], stride: usize) -> Result<(), FeaturizeError> {
        let width = self.params.len();
        if stride < width || stride == 0 {
            return Err(FeaturizeError::DimensionMismatch {
                expected: width,
                found: stride,
            });
        }
        if !data.len().is_multiple_of(stride) {
            return Err(FeaturizeError::DimensionMismatch {
                expected: stride,
                found: data.len() % stride,
            });
        }
        // Strategy dispatch hoisted out of the element loops: each arm is
        // a tight rows × columns kernel over the per-column parameters,
        // performing exactly the per-row path's element operations.
        match self.kind {
            ScalingKind::MinMax => {
                for row in data.chunks_exact_mut(stride) {
                    for (x, &(offset, scale)) in row.iter_mut().zip(&self.params) {
                        *x = ((*x - offset) * scale).clamp(0.0, 1.0);
                    }
                }
            }
            ScalingKind::ZScore => {
                for row in data.chunks_exact_mut(stride) {
                    for (x, &(offset, scale)) in row.iter_mut().zip(&self.params) {
                        *x = (*x - offset) * scale;
                    }
                }
            }
            ScalingKind::Log1pMinMax => {
                for row in data.chunks_exact_mut(stride) {
                    for (x, &(offset, scale)) in row.iter_mut().zip(&self.params) {
                        let v = x.max(0.0).ln_1p();
                        *x = ((v - offset) * scale).clamp(0.0, 1.0);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 10.0, 5.0],
            vec![5.0, 20.0, 5.0],
            vec![10.0, 30.0, 5.0],
        ]
    }

    fn fit(kind: ScalingKind) -> ColumnScaler {
        let data = rows();
        ColumnScaler::fit(kind, data.iter().map(|r| r.as_slice())).unwrap()
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let s = fit(ScalingKind::MinMax);
        assert_eq!(s.transform(&[0.0, 10.0, 5.0]).unwrap(), vec![0.0, 0.0, 0.0]);
        assert_eq!(
            s.transform(&[10.0, 30.0, 5.0]).unwrap(),
            vec![1.0, 1.0, 0.0]
        );
        assert_eq!(s.transform(&[5.0, 20.0, 5.0]).unwrap(), vec![0.5, 0.5, 0.0]);
    }

    #[test]
    fn minmax_clamps_unseen_extremes() {
        let s = fit(ScalingKind::MinMax);
        let y = s.transform(&[100.0, -100.0, 5.0]).unwrap();
        assert_eq!(y, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn zscore_standardizes() {
        let s = fit(ScalingKind::ZScore);
        let y = s.transform(&[5.0, 20.0, 5.0]).unwrap();
        // Column means are (5, 20, 5) → center maps to 0.
        assert!(y.iter().all(|v| v.abs() < 1e-12));
        let y = s.transform(&[10.0, 30.0, 5.0]).unwrap();
        assert!(y[0] > 0.0 && y[1] > 0.0);
        // Constant column → 0 regardless of input.
        assert_eq!(y[2], 0.0);
    }

    #[test]
    fn log1p_minmax_compresses_heavy_tails() {
        let data = [vec![0.0], vec![100.0], vec![1_000_000.0]];
        let s =
            ColumnScaler::fit(ScalingKind::Log1pMinMax, data.iter().map(|r| r.as_slice())).unwrap();
        let lo = s.transform(&[0.0]).unwrap()[0];
        let mid = s.transform(&[100.0]).unwrap()[0];
        let hi = s.transform(&[1_000_000.0]).unwrap()[0];
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 1.0);
        // In raw min-max, 100 of 1e6 would be ~0.0001; log spacing lifts it.
        assert!(mid > 0.2, "log-scaled mid {mid}");
    }

    #[test]
    fn log1p_treats_negatives_as_zero() {
        let data = [vec![0.0], vec![10.0]];
        let s =
            ColumnScaler::fit(ScalingKind::Log1pMinMax, data.iter().map(|r| r.as_slice())).unwrap();
        assert_eq!(s.transform(&[-5.0]).unwrap()[0], 0.0);
    }

    #[test]
    fn fit_rejects_bad_inputs() {
        let empty: Vec<&[f64]> = vec![];
        assert_eq!(
            ColumnScaler::fit(ScalingKind::MinMax, empty).unwrap_err(),
            FeaturizeError::EmptyInput
        );
        let zero_width: Vec<&[f64]> = vec![&[]];
        assert_eq!(
            ColumnScaler::fit(ScalingKind::MinMax, zero_width).unwrap_err(),
            FeaturizeError::EmptyInput
        );
        let ragged: Vec<&[f64]> = vec![&[1.0, 2.0], &[1.0]];
        assert!(matches!(
            ColumnScaler::fit(ScalingKind::MinMax, ragged).unwrap_err(),
            FeaturizeError::DimensionMismatch { .. }
        ));
        let nan: Vec<&[f64]> = vec![&[f64::NAN]];
        assert_eq!(
            ColumnScaler::fit(ScalingKind::MinMax, nan).unwrap_err(),
            FeaturizeError::NonFinite
        );
    }

    #[test]
    fn transform_rejects_wrong_width() {
        let s = fit(ScalingKind::MinMax);
        assert!(matches!(
            s.transform(&[1.0]).unwrap_err(),
            FeaturizeError::DimensionMismatch {
                expected: 3,
                found: 1
            }
        ));
    }

    #[test]
    fn batch_kernel_matches_per_row_bitwise() {
        for kind in [
            ScalingKind::MinMax,
            ScalingKind::ZScore,
            ScalingKind::Log1pMinMax,
        ] {
            let s = fit(kind);
            // Rows carry a 2-column tail past the scaled prefix (stride 5).
            let mut flat = vec![
                0.0, 10.0, 5.0, 9.0, 9.0, //
                7.0, 25.0, 5.0, 8.0, 8.0, //
                -3.0, 100.0, 5.0, 7.0, 7.0,
            ];
            let expected: Vec<Vec<f64>> = flat
                .chunks_exact(5)
                .map(|row| {
                    let mut prefix = row[..3].to_vec();
                    s.transform_in_place(&mut prefix).unwrap();
                    prefix
                })
                .collect();
            s.transform_batch(&mut flat, 5).unwrap();
            for (r, row) in flat.chunks_exact(5).enumerate() {
                for c in 0..3 {
                    assert_eq!(
                        row[c].to_bits(),
                        expected[r][c].to_bits(),
                        "{kind} ({r}, {c})"
                    );
                }
                // The tail past the scaled prefix is untouched.
                assert_eq!(row[3], 9.0 - r as f64);
                assert_eq!(row[4], 9.0 - r as f64);
            }
        }
    }

    #[test]
    fn batch_kernel_validates_stride() {
        let s = fit(ScalingKind::MinMax);
        let mut too_narrow = vec![0.0; 4];
        assert!(matches!(
            s.transform_batch(&mut too_narrow, 2).unwrap_err(),
            FeaturizeError::DimensionMismatch { .. }
        ));
        let mut ragged = vec![0.0; 7];
        assert!(matches!(
            s.transform_batch(&mut ragged, 3).unwrap_err(),
            FeaturizeError::DimensionMismatch { .. }
        ));
        // Empty buffers are a no-op.
        let mut empty: Vec<f64> = Vec::new();
        s.transform_batch(&mut empty, 3).unwrap();
    }

    #[test]
    fn accessors() {
        let s = fit(ScalingKind::ZScore);
        assert_eq!(s.kind(), ScalingKind::ZScore);
        assert_eq!(s.width(), 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(ScalingKind::MinMax.to_string(), "min-max");
        assert_eq!(ScalingKind::Log1pMinMax.to_string(), "log1p+min-max");
        assert_eq!(ScalingKind::default(), ScalingKind::Log1pMinMax);
    }

    #[test]
    fn serde_roundtrip() {
        let s = fit(ScalingKind::Log1pMinMax);
        let json = serde_json::to_string(&s).unwrap();
        let back: ColumnScaler = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
