//! Windowed traffic-feature entropy series.
//!
//! Scans disperse a feature distribution (destination ports during a port
//! sweep) while floods concentrate one (destination addresses during DDoS).
//! Normalized Shannon entropy of the per-window histograms turns that into
//! four bounded time-series features. The streaming detector consumes these
//! alongside the per-record GHSOM score.
//!
//! [`entropy_series`] produces the per-window [`EntropyWindow`] structs;
//! [`features_batch`] is the columnar batch kernel that lays a window
//! slice out as a reused `windows × 4` [`FeatureMatrix`] for matrix-based
//! consumers (the same reuse contract as
//! [`crate::KddPipeline::transform_batch`]).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use traffic::flows::FlowEvent;

use crate::matrix::FeatureMatrix;
use crate::FeaturizeError;

/// Entropy feature vector of one time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropyWindow {
    /// Start time of the window (seconds).
    pub start: f64,
    /// Number of flows observed in the window.
    pub flow_count: usize,
    /// Normalized entropy of source addresses.
    pub src_ip_entropy: f64,
    /// Normalized entropy of destination addresses.
    pub dst_ip_entropy: f64,
    /// Normalized entropy of source ports.
    pub src_port_entropy: f64,
    /// Normalized entropy of destination ports.
    pub dst_port_entropy: f64,
    /// Fraction of flows in the window that are labelled attacks
    /// (ground truth, for evaluation only).
    pub attack_fraction: f64,
}

impl EntropyWindow {
    /// The four entropy values as a feature vector.
    pub fn features(&self) -> [f64; 4] {
        [
            self.src_ip_entropy,
            self.dst_ip_entropy,
            self.src_port_entropy,
            self.dst_port_entropy,
        ]
    }
}

/// Width of the entropy feature vector ([`EntropyWindow::features`]).
pub const ENTROPY_FEATURE_DIM: usize = 4;

/// Lays a window slice out as a row-major `windows × 4` feature matrix —
/// the batch form of [`EntropyWindow::features`] for matrix-based
/// consumers. `out` is reshaped (reusing its allocation) and fully
/// overwritten; an empty slice resets it to `0 × 4`.
pub fn features_batch(windows: &[EntropyWindow], out: &mut FeatureMatrix) {
    out.reset(windows.len(), ENTROPY_FEATURE_DIM);
    for (r, w) in windows.iter().enumerate() {
        out.row_mut(r).copy_from_slice(&w.features());
    }
}

/// Normalized entropy of the value multiset in `counts`.
fn normalized_entropy<K>(counts: &HashMap<K, u64>) -> f64 {
    let values: Vec<u64> = counts.values().copied().collect();
    mathkit::entropy::normalized(&values)
}

/// Slices a time-sorted flow trace into fixed windows of `window_secs` and
/// computes the entropy features of each.
///
/// Windows with no flows are skipped (no distribution to measure).
///
/// # Errors
///
/// [`FeaturizeError::InvalidParameter`] when `window_secs` is not finite
/// and positive; [`FeaturizeError::EmptyInput`] for an empty trace.
pub fn entropy_series(
    flows: &[FlowEvent],
    window_secs: f64,
) -> Result<Vec<EntropyWindow>, FeaturizeError> {
    if !(window_secs.is_finite() && window_secs > 0.0) {
        return Err(FeaturizeError::InvalidParameter {
            name: "window_secs",
            reason: "must be finite and positive",
        });
    }
    if flows.is_empty() {
        return Err(FeaturizeError::EmptyInput);
    }
    let mut out = Vec::new();
    let t0 = flows[0].time;
    let mut window_start = t0;
    let mut src_ip: HashMap<u32, u64> = HashMap::new();
    let mut dst_ip: HashMap<u32, u64> = HashMap::new();
    let mut src_port: HashMap<u16, u64> = HashMap::new();
    let mut dst_port: HashMap<u16, u64> = HashMap::new();
    let mut count = 0usize;
    let mut attacks = 0usize;

    let flush = |start: f64,
                 count: usize,
                 attacks: usize,
                 src_ip: &mut HashMap<u32, u64>,
                 dst_ip: &mut HashMap<u32, u64>,
                 src_port: &mut HashMap<u16, u64>,
                 dst_port: &mut HashMap<u16, u64>,
                 out: &mut Vec<EntropyWindow>| {
        if count > 0 {
            out.push(EntropyWindow {
                start,
                flow_count: count,
                src_ip_entropy: normalized_entropy(src_ip),
                dst_ip_entropy: normalized_entropy(dst_ip),
                src_port_entropy: normalized_entropy(src_port),
                dst_port_entropy: normalized_entropy(dst_port),
                attack_fraction: attacks as f64 / count as f64,
            });
        }
        src_ip.clear();
        dst_ip.clear();
        src_port.clear();
        dst_port.clear();
    };

    for flow in flows {
        while flow.time >= window_start + window_secs {
            flush(
                window_start,
                count,
                attacks,
                &mut src_ip,
                &mut dst_ip,
                &mut src_port,
                &mut dst_port,
                &mut out,
            );
            count = 0;
            attacks = 0;
            window_start += window_secs;
        }
        *src_ip.entry(flow.src_ip).or_insert(0) += 1;
        *dst_ip.entry(flow.dst_ip).or_insert(0) += 1;
        *src_port.entry(flow.src_port).or_insert(0) += 1;
        *dst_port.entry(flow.dst_port).or_insert(0) += 1;
        count += 1;
        if flow.label.is_attack() {
            attacks += 1;
        }
    }
    flush(
        window_start,
        count,
        attacks,
        &mut src_ip,
        &mut dst_ip,
        &mut src_port,
        &mut dst_port,
        &mut out,
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::flows::{AttackEpisode, EpisodeKind, FlowSimConfig, FlowSimulator};
    use traffic::record::{Flag, Protocol, Service};
    use traffic::AttackType;

    fn flow(time: f64, src_ip: u32, dst_ip: u32, dst_port: u16) -> FlowEvent {
        FlowEvent {
            time,
            src_ip,
            dst_ip,
            src_port: 1000 + (src_ip % 1000) as u16,
            dst_port,
            protocol: Protocol::Tcp,
            service: Service::Http,
            flag: Flag::Sf,
            duration: 0.0,
            src_bytes: 10.0,
            dst_bytes: 10.0,
            label: AttackType::Normal,
        }
    }

    #[test]
    fn windows_are_sliced_correctly() {
        let flows = vec![
            flow(0.0, 1, 2, 80),
            flow(0.5, 1, 2, 80),
            flow(2.5, 1, 2, 80),
        ];
        let series = entropy_series(&flows, 1.0).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].flow_count, 2);
        assert_eq!(series[1].flow_count, 1);
        assert_eq!(series[0].start, 0.0);
        assert_eq!(series[1].start, 2.0);
    }

    #[test]
    fn concentrated_traffic_has_low_entropy() {
        let flows: Vec<FlowEvent> = (0..50).map(|i| flow(i as f64 * 0.01, 1, 2, 80)).collect();
        let series = entropy_series(&flows, 10.0).unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].src_ip_entropy, 0.0);
        assert_eq!(series[0].dst_port_entropy, 0.0);
    }

    #[test]
    fn dispersed_ports_have_high_entropy() {
        // Port scan shape: one source, one destination, all distinct ports.
        let flows: Vec<FlowEvent> = (0..64)
            .map(|i| flow(i as f64 * 0.01, 1, 2, 1000 + i as u16))
            .collect();
        let series = entropy_series(&flows, 10.0).unwrap();
        assert!(series[0].dst_port_entropy > 0.99);
        assert_eq!(series[0].dst_ip_entropy, 0.0);
    }

    #[test]
    fn attack_fraction_is_ground_truth() {
        let mut flows: Vec<FlowEvent> = (0..10).map(|i| flow(i as f64 * 0.1, i, 2, 80)).collect();
        for f in flows.iter_mut().take(5) {
            f.label = AttackType::Neptune;
        }
        let series = entropy_series(&flows, 10.0).unwrap();
        assert!((series[0].attack_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validates_parameters() {
        let flows = vec![flow(0.0, 1, 2, 80)];
        assert!(entropy_series(&flows, 0.0).is_err());
        assert!(entropy_series(&flows, -1.0).is_err());
        assert!(entropy_series(&flows, f64::NAN).is_err());
        assert!(entropy_series(&[], 1.0).is_err());
    }

    #[test]
    fn syn_flood_shifts_source_entropy_up_and_dst_down() {
        let mut sim = FlowSimulator::new(
            FlowSimConfig {
                duration_secs: 30.0,
                background_rate: 50.0,
                server_count: 16,
                client_count: 64,
                episodes: vec![AttackEpisode {
                    kind: EpisodeKind::SynFlood {
                        target: 0xC0A8_0001,
                    },
                    start: 15.0,
                    duration: 15.0,
                    rate: 600.0,
                }],
            },
            8,
        );
        let flows = sim.generate();
        let series = entropy_series(&flows, 5.0).unwrap();
        let quiet: Vec<&EntropyWindow> = series.iter().filter(|w| w.start < 15.0).collect();
        let attack: Vec<&EntropyWindow> = series.iter().filter(|w| w.start >= 15.0).collect();
        let mean = |ws: &[&EntropyWindow], f: fn(&EntropyWindow) -> f64| {
            ws.iter().map(|w| f(w)).sum::<f64>() / ws.len() as f64
        };
        // Spoofed sources disperse src_ip entropy; the single victim
        // concentrates dst_ip entropy.
        assert!(
            mean(&attack, |w| w.src_ip_entropy) > mean(&quiet, |w| w.src_ip_entropy),
            "flood should raise source-address entropy"
        );
        assert!(
            mean(&attack, |w| w.dst_ip_entropy) < mean(&quiet, |w| w.dst_ip_entropy),
            "flood should concentrate destination-address entropy"
        );
    }

    #[test]
    fn features_accessor() {
        let flows = vec![flow(0.0, 1, 2, 80)];
        let series = entropy_series(&flows, 1.0).unwrap();
        assert_eq!(series[0].features(), [0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn features_batch_matches_per_window_features() {
        let flows: Vec<FlowEvent> = (0..64)
            .map(|i| flow(i as f64 * 0.3, i % 7, 2, 1000 + i as u16))
            .collect();
        let series = entropy_series(&flows, 5.0).unwrap();
        let mut out = FeatureMatrix::new();
        out.reset(1, 9); // poisoned shape: the kernel must fully reshape
        features_batch(&series, &mut out);
        assert_eq!(out.shape(), (series.len(), ENTROPY_FEATURE_DIM));
        for (r, w) in series.iter().enumerate() {
            assert_eq!(out.row(r), w.features());
        }
        features_batch(&[], &mut out);
        assert!(out.is_empty());
    }
}
