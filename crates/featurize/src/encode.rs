//! One-hot encoding of the categorical connection-record fields.
//!
//! The three KDD categorical vocabularies are closed enums
//! ([`Protocol`], [`Service`], [`Flag`]), so the encoders are stateless and
//! infallible — there is no "unknown category at transform time" failure
//! mode to handle.
//!
//! Two writer shapes exist for the serving paths:
//!
//! * [`push_categoricals`] — appends to a growing `Vec` (the per-record
//!   [`crate::KddPipeline::transform`] path);
//! * [`write_categoricals`] — fills a caller-owned slice in place (the
//!   batched [`crate::KddPipeline::transform_batch`] path, one
//!   pre-reserved matrix row segment per record, no allocation).
//!
//! Both produce bit-identical output for the same record.

use traffic::{Flag, Protocol, Service};

/// Width of the one-hot protocol block.
pub const PROTOCOL_DIM: usize = Protocol::ALL.len();
/// Width of the one-hot service block.
pub const SERVICE_DIM: usize = Service::ALL.len();
/// Width of the one-hot flag block.
pub const FLAG_DIM: usize = Flag::ALL.len();

/// Index of a protocol within [`Protocol::ALL`].
///
/// `Protocol::ALL` lists the variants in declaration order, so the
/// discriminant cast *is* the position — O(1), no vocabulary scan (the
/// tests pin the equivalence).
#[inline]
pub fn protocol_index(p: Protocol) -> usize {
    p as usize
}

/// Index of a service within [`Service::ALL`] (discriminant cast; see
/// [`protocol_index`]).
#[inline]
pub fn service_index(s: Service) -> usize {
    s as usize
}

/// Index of a flag within [`Flag::ALL`] (discriminant cast; see
/// [`protocol_index`]).
#[inline]
pub fn flag_index(f: Flag) -> usize {
    f as usize
}

/// Appends a one-hot block of width `dim` with `index` set to `scale`.
///
/// A `scale` below 1.0 is used to damp the categorical block relative to
/// the continuous features (a common SOM trick: with 50 one-hot columns and
/// 38 continuous ones, unscaled indicators would dominate the Euclidean
/// metric).
// LINT-ALLOW(no-index): out is resized to start + dim first, and index < dim is the debug-asserted precondition every enum-derived caller satisfies
pub fn push_one_hot(out: &mut Vec<f64>, index: usize, dim: usize, scale: f64) {
    debug_assert!(index < dim, "one-hot index out of range");
    let start = out.len();
    out.resize(start + dim, 0.0);
    out[start + index] = scale;
}

/// Appends the full categorical encoding (protocol ⊕ service ⊕ flag) of a
/// record's symbolic fields.
pub fn push_categoricals(
    out: &mut Vec<f64>,
    protocol: Protocol,
    service: Service,
    flag: Flag,
    scale: f64,
) {
    push_one_hot(out, protocol_index(protocol), PROTOCOL_DIM, scale);
    push_one_hot(out, service_index(service), SERVICE_DIM, scale);
    push_one_hot(out, flag_index(flag), FLAG_DIM, scale);
}

/// Total width of the categorical block.
pub const CATEGORICAL_DIM: usize = PROTOCOL_DIM + SERVICE_DIM + FLAG_DIM;

/// Writes the full categorical encoding (protocol ⊕ service ⊕ flag) into a
/// caller-owned slice of width [`CATEGORICAL_DIM`]: zero-fills the slice,
/// then sets the three active positions to `scale`.
///
/// This is the batch-kernel form of [`push_categoricals`]: the batched
/// pipeline reserves one matrix row per record up front and fills each
/// record's categorical segment in place, instead of growing a `Vec` per
/// record. Output is bit-identical to the appending form.
///
/// # Panics
///
/// Panics if `out.len() != CATEGORICAL_DIM`.
#[inline]
// LINT-ALLOW(no-index): slice length is asserted == CATEGORICAL_DIM and the *_index maps are enum-bounded within their blocks by construction
pub fn write_categoricals(
    out: &mut [f64],
    protocol: Protocol,
    service: Service,
    flag: Flag,
    scale: f64,
) {
    assert_eq!(
        out.len(),
        CATEGORICAL_DIM,
        "categorical slice has the wrong width"
    );
    out.fill(0.0);
    out[protocol_index(protocol)] = scale;
    out[PROTOCOL_DIM + service_index(service)] = scale;
    out[PROTOCOL_DIM + SERVICE_DIM + flag_index(flag)] = scale;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        // The cast-based indices must coincide with each vocabulary's
        // position in its `ALL` array (the declaration order) — this is
        // the invariant the O(1) encoders rely on.
        for (want, p) in Protocol::ALL.into_iter().enumerate() {
            assert_eq!(protocol_index(p), want);
        }
        for (want, s) in Service::ALL.into_iter().enumerate() {
            assert_eq!(service_index(s), want);
        }
        for (want, f) in Flag::ALL.into_iter().enumerate() {
            assert_eq!(flag_index(f), want);
        }
        let mut seen = [false; PROTOCOL_DIM];
        for p in Protocol::ALL {
            let i = protocol_index(p);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&x| x));

        let mut seen = [false; SERVICE_DIM];
        for s in Service::ALL {
            let i = service_index(s);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&x| x));

        let mut seen = [false; FLAG_DIM];
        for f in Flag::ALL {
            let i = flag_index(f);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn one_hot_sets_exactly_one_position() {
        let mut out = vec![9.0]; // pre-existing content is preserved
        push_one_hot(&mut out, 2, 5, 1.0);
        assert_eq!(out, vec![9.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn one_hot_respects_scale() {
        let mut out = Vec::new();
        push_one_hot(&mut out, 0, 3, 0.25);
        assert_eq!(out, vec![0.25, 0.0, 0.0]);
    }

    #[test]
    fn categorical_block_width() {
        let mut out = Vec::new();
        push_categoricals(&mut out, Protocol::Icmp, Service::EcrI, Flag::Sf, 1.0);
        assert_eq!(out.len(), CATEGORICAL_DIM);
        assert_eq!(out.iter().filter(|&&x| x != 0.0).count(), 3);
        // Protocol block: icmp is index 2.
        assert_eq!(out[2], 1.0);
    }

    #[test]
    fn write_form_matches_push_form_bitwise() {
        for p in Protocol::ALL {
            for f in Flag::ALL {
                for s in [Service::Http, Service::EcrI, Service::Other] {
                    let mut pushed = Vec::new();
                    push_categoricals(&mut pushed, p, s, f, 0.5);
                    // Pre-poison the slice: the writer must overwrite it all.
                    let mut written = vec![7.0; CATEGORICAL_DIM];
                    write_categoricals(&mut written, p, s, f, 0.5);
                    assert_eq!(pushed, written, "{p}/{s}/{f}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn write_form_rejects_wrong_width() {
        let mut short = vec![0.0; CATEGORICAL_DIM - 1];
        write_categoricals(&mut short, Protocol::Tcp, Service::Http, Flag::Sf, 1.0);
    }

    #[test]
    fn distinct_categories_produce_distinct_encodings() {
        let mut a = Vec::new();
        push_categoricals(&mut a, Protocol::Tcp, Service::Http, Flag::Sf, 1.0);
        let mut b = Vec::new();
        push_categoricals(&mut b, Protocol::Tcp, Service::Http, Flag::S0, 1.0);
        assert_ne!(a, b);
    }
}
