//! One-hot encoding of the categorical connection-record fields.
//!
//! The three KDD categorical vocabularies are closed enums
//! ([`Protocol`], [`Service`], [`Flag`]), so the encoders are stateless and
//! infallible — there is no "unknown category at transform time" failure
//! mode to handle.

use traffic::{Flag, Protocol, Service};

/// Width of the one-hot protocol block.
pub const PROTOCOL_DIM: usize = Protocol::ALL.len();
/// Width of the one-hot service block.
pub const SERVICE_DIM: usize = Service::ALL.len();
/// Width of the one-hot flag block.
pub const FLAG_DIM: usize = Flag::ALL.len();

/// Index of a protocol within [`Protocol::ALL`].
pub fn protocol_index(p: Protocol) -> usize {
    Protocol::ALL
        .iter()
        .position(|&x| x == p)
        .expect("Protocol::ALL is exhaustive")
}

/// Index of a service within [`Service::ALL`].
pub fn service_index(s: Service) -> usize {
    Service::ALL
        .iter()
        .position(|&x| x == s)
        .expect("Service::ALL is exhaustive")
}

/// Index of a flag within [`Flag::ALL`].
pub fn flag_index(f: Flag) -> usize {
    Flag::ALL
        .iter()
        .position(|&x| x == f)
        .expect("Flag::ALL is exhaustive")
}

/// Appends a one-hot block of width `dim` with `index` set to `scale`.
///
/// A `scale` below 1.0 is used to damp the categorical block relative to
/// the continuous features (a common SOM trick: with 50 one-hot columns and
/// 38 continuous ones, unscaled indicators would dominate the Euclidean
/// metric).
pub fn push_one_hot(out: &mut Vec<f64>, index: usize, dim: usize, scale: f64) {
    debug_assert!(index < dim, "one-hot index out of range");
    let start = out.len();
    out.resize(start + dim, 0.0);
    out[start + index] = scale;
}

/// Appends the full categorical encoding (protocol ⊕ service ⊕ flag) of a
/// record's symbolic fields.
pub fn push_categoricals(
    out: &mut Vec<f64>,
    protocol: Protocol,
    service: Service,
    flag: Flag,
    scale: f64,
) {
    push_one_hot(out, protocol_index(protocol), PROTOCOL_DIM, scale);
    push_one_hot(out, service_index(service), SERVICE_DIM, scale);
    push_one_hot(out, flag_index(flag), FLAG_DIM, scale);
}

/// Total width of the categorical block.
pub const CATEGORICAL_DIM: usize = PROTOCOL_DIM + SERVICE_DIM + FLAG_DIM;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; PROTOCOL_DIM];
        for p in Protocol::ALL {
            let i = protocol_index(p);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&x| x));

        let mut seen = [false; SERVICE_DIM];
        for s in Service::ALL {
            let i = service_index(s);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&x| x));

        let mut seen = [false; FLAG_DIM];
        for f in Flag::ALL {
            let i = flag_index(f);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn one_hot_sets_exactly_one_position() {
        let mut out = vec![9.0]; // pre-existing content is preserved
        push_one_hot(&mut out, 2, 5, 1.0);
        assert_eq!(out, vec![9.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn one_hot_respects_scale() {
        let mut out = Vec::new();
        push_one_hot(&mut out, 0, 3, 0.25);
        assert_eq!(out, vec![0.25, 0.0, 0.0]);
    }

    #[test]
    fn categorical_block_width() {
        let mut out = Vec::new();
        push_categoricals(&mut out, Protocol::Icmp, Service::EcrI, Flag::Sf, 1.0);
        assert_eq!(out.len(), CATEGORICAL_DIM);
        assert_eq!(out.iter().filter(|&&x| x != 0.0).count(), 3);
        // Protocol block: icmp is index 2.
        assert_eq!(out[2], 1.0);
    }

    #[test]
    fn distinct_categories_produce_distinct_encodings() {
        let mut a = Vec::new();
        push_categoricals(&mut a, Protocol::Tcp, Service::Http, Flag::Sf, 1.0);
        let mut b = Vec::new();
        push_categoricals(&mut b, Protocol::Tcp, Service::Http, Flag::S0, 1.0);
        assert_ne!(a, b);
    }
}
