//! Feature metadata for assembled vectors.
//!
//! A fitted [`crate::KddPipeline`] carries a [`FeatureSchema`] naming
//! every output column (38 continuous names, then one `field=value`
//! entry per one-hot categorical column) and tagging its
//! [`FeatureKind`]. Downstream tools use it to explain map dimensions —
//! e.g. `detect::explain` reports the most-deviant *named* features of
//! an anomalous record — and [`FeatureSchema::project`] keeps names
//! aligned after feature selection ([`crate::select`]).

use serde::{Deserialize, Serialize};

/// The kind of a single output feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Unbounded non-negative quantity (bytes, counts, seconds).
    Continuous,
    /// A rate in `[0, 1]`.
    Rate,
    /// A `{0, 1}` indicator.
    Binary,
    /// One column of a one-hot encoded categorical field.
    OneHot,
}

/// Ordered metadata describing every column of a feature vector.
///
/// # Example
///
/// ```
/// use featurize::{FeatureKind, FeatureSchema};
///
/// let mut schema = FeatureSchema::new();
/// schema.push("duration", FeatureKind::Continuous);
/// schema.push("protocol=tcp", FeatureKind::OneHot);
/// assert_eq!(schema.len(), 2);
/// assert_eq!(schema.name(1), "protocol=tcp");
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FeatureSchema {
    names: Vec<String>,
    kinds: Vec<FeatureKind>,
}

impl FeatureSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a feature.
    pub fn push(&mut self, name: impl Into<String>, kind: FeatureKind) {
        self.names.push(name.into());
        self.kinds.push(kind);
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the schema has no features.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of feature `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Kind of feature `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn kind(&self, i: usize) -> FeatureKind {
        self.kinds[i]
    }

    /// All names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of a feature by name, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// A schema containing only the features at `indices`, in that order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    // LINT-ALLOW(no-index): documented panicking precondition; serving passes selector indices already bounded by the fitted schema width
    pub fn project(&self, indices: &[usize]) -> FeatureSchema {
        FeatureSchema {
            names: indices.iter().map(|&i| self.names[i].clone()).collect(),
            kinds: indices.iter().map(|&i| self.kinds[i]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureSchema {
        let mut s = FeatureSchema::new();
        s.push("a", FeatureKind::Continuous);
        s.push("b", FeatureKind::Rate);
        s.push("c", FeatureKind::Binary);
        s
    }

    #[test]
    fn push_and_accessors() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.name(0), "a");
        assert_eq!(s.kind(1), FeatureKind::Rate);
        assert_eq!(s.names(), &["a", "b", "c"]);
    }

    #[test]
    fn index_of_finds_by_name() {
        let s = sample();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zzz"), None);
    }

    #[test]
    fn project_selects_and_reorders() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.name(0), "c");
        assert_eq!(p.kind(1), FeatureKind::Continuous);
    }

    #[test]
    fn empty_schema() {
        let s = FeatureSchema::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        let back: FeatureSchema = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
