//! Property-based tests for the feature pipeline.

use featurize::pipeline::{KddPipeline, PipelineConfig};
use featurize::scale::{ColumnScaler, ScalingKind};
use featurize::FeatureMatrix;
use proptest::prelude::*;
use traffic::synth::{profiles, MixSpec, TrafficGenerator};
use traffic::{AttackType, ConnectionRecord};

/// An arbitrary record batch: profile-sampled records across every
/// attack type, including categorical-heavy shapes (the one-hot block is
/// the only varying part of an all-zero record).
fn arbitrary_batch(seed: u64, len: usize, all_categorical: bool) -> Vec<ConnectionRecord> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            if all_categorical {
                // Zero continuous features; only protocol/service/flag vary.
                ConnectionRecord {
                    protocol: traffic::Protocol::ALL[rng.gen_range(0..3)],
                    service: traffic::Service::ALL[rng.gen_range(0..traffic::Service::ALL.len())],
                    flag: traffic::Flag::ALL[rng.gen_range(0..traffic::Flag::ALL.len())],
                    ..Default::default()
                }
            } else {
                profiles::sample(
                    AttackType::ALL[rng.gen_range(0..AttackType::ALL.len())],
                    &mut rng,
                )
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Min-max-family scalers always produce values in [0, 1], even on
    /// inputs far outside the fitted range.
    #[test]
    fn minmax_outputs_bounded(
        train in prop::collection::vec(prop::collection::vec(-1e4f64..1e4, 3), 2..40),
        probe in prop::collection::vec(-1e6f64..1e6, 3)
    ) {
        for kind in [ScalingKind::MinMax, ScalingKind::Log1pMinMax] {
            let scaler = ColumnScaler::fit(kind, train.iter().map(|r| r.as_slice())).unwrap();
            let out = scaler.transform(&probe).unwrap();
            for &v in &out {
                prop_assert!((0.0..=1.0).contains(&v), "{kind} produced {v}");
            }
        }
    }

    /// Scalers are monotone per column: x1 <= x2 in a column implies
    /// scaled(x1) <= scaled(x2) (min-max and z-score are affine with
    /// non-negative slope; log1p+min-max composes monotone maps).
    #[test]
    fn scalers_are_monotone(
        train in prop::collection::vec(prop::collection::vec(0.0f64..1e4, 2), 3..40),
        a in 0.0f64..1e4, b in 0.0f64..1e4
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for kind in [ScalingKind::MinMax, ScalingKind::ZScore, ScalingKind::Log1pMinMax] {
            let scaler = ColumnScaler::fit(kind, train.iter().map(|r| r.as_slice())).unwrap();
            let out_lo = scaler.transform(&[lo, lo]).unwrap();
            let out_hi = scaler.transform(&[hi, hi]).unwrap();
            prop_assert!(out_lo[0] <= out_hi[0] + 1e-12, "{kind} not monotone");
        }
    }

    /// The full pipeline yields bounded, finite vectors of the advertised
    /// width for every attack type — including types absent from the
    /// fitting data.
    #[test]
    fn pipeline_output_is_bounded_for_all_types(seed in 0u64..200, type_idx in 0usize..33) {
        use rand::SeedableRng;
        let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), seed).unwrap();
        let train = gen.generate(120);
        let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xFEED);
        let rec = profiles::sample(AttackType::ALL[type_idx], &mut rng);
        let v = pipeline.transform(&rec).unwrap();
        prop_assert_eq!(v.len(), pipeline.output_dim());
        for &x in &v {
            prop_assert!(x.is_finite());
            prop_assert!((0.0..=1.0).contains(&x), "value {x} out of range");
        }
    }

    /// Pipeline fitting is deterministic in its inputs.
    #[test]
    fn pipeline_fit_is_deterministic(seed in 0u64..100) {
        let mut gen1 = TrafficGenerator::new(MixSpec::kdd_train(), seed).unwrap();
        let mut gen2 = TrafficGenerator::new(MixSpec::kdd_train(), seed).unwrap();
        let train1 = gen1.generate(80);
        let train2 = gen2.generate(80);
        let p1 = KddPipeline::fit(&PipelineConfig::default(), &train1).unwrap();
        let p2 = KddPipeline::fit(&PipelineConfig::default(), &train2).unwrap();
        prop_assert_eq!(&p1, &p2);
        let rec = &train1.records()[0];
        prop_assert_eq!(p1.transform(rec).unwrap(), p2.transform(rec).unwrap());
    }

    /// The batched columnar transform is **bit-identical** to the
    /// per-record path over arbitrary record batches — every scaling
    /// strategy, with and without the categorical block, including the
    /// empty batch and all-categorical (zero-continuous) rows.
    #[test]
    fn transform_batch_is_bit_identical_to_per_record(
        seed in 0u64..500,
        len in 0usize..40,
        all_categorical in 0u8..2,
        scaling_idx in 0usize..3,
        include_categoricals in 0u8..2,
    ) {
        let all_categorical = all_categorical == 1;
        let include_categoricals = include_categoricals == 1;
        let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), seed).unwrap();
        let train = gen.generate(80);
        let scaling = [ScalingKind::MinMax, ScalingKind::ZScore, ScalingKind::Log1pMinMax][scaling_idx];
        let config = PipelineConfig::default()
            .with_scaling(scaling)
            .with_categoricals(include_categoricals);
        let pipeline = KddPipeline::fit(&config, &train).unwrap();
        let batch = arbitrary_batch(seed ^ 0xABCD, len, all_categorical);

        let mut buf = FeatureMatrix::new();
        pipeline.transform_batch(&batch, &mut buf).unwrap();
        prop_assert_eq!(buf.shape(), (batch.len(), pipeline.output_dim()));
        let mut row_buf = Vec::new();
        for (r, rec) in batch.iter().enumerate() {
            let fresh = pipeline.transform(rec).unwrap();
            prop_assert_eq!(buf.row(r).len(), fresh.len());
            for (c, (a, b)) in buf.row(r).iter().zip(&fresh).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "row {} col {}", r, c);
            }
            // The single-record scratch path agrees bitwise too.
            pipeline.transform_into(rec, &mut row_buf).unwrap();
            for (a, b) in row_buf.iter().zip(&fresh) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Buffer reuse across calls never leaks rows from a prior batch:
    /// after transforming batch A then batch B into the same buffer, the
    /// buffer is exactly what a fresh transform of B produces — for B
    /// shorter than, equal to and longer than A, down to the empty batch.
    #[test]
    fn transform_batch_reuse_never_leaks_prior_rows(
        seed in 0u64..300,
        len_a in 0usize..30,
        len_b in 0usize..30,
    ) {
        let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), seed).unwrap();
        let train = gen.generate(80);
        let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        let a = arbitrary_batch(seed ^ 0x1111, len_a, false);
        let b = arbitrary_batch(seed ^ 0x2222, len_b, false);

        let mut reused = FeatureMatrix::new();
        pipeline.transform_batch(&a, &mut reused).unwrap();
        pipeline.transform_batch(&b, &mut reused).unwrap();
        let mut fresh = FeatureMatrix::new();
        pipeline.transform_batch(&b, &mut fresh).unwrap();
        prop_assert_eq!(reused.shape(), fresh.shape());
        for (x, y) in reused.as_slice().iter().zip(fresh.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Distinct categorical fields always produce distinct vectors when
    /// categoricals are enabled (injectivity of the one-hot block).
    #[test]
    fn categorical_block_is_injective(seed in 0u64..100) {
        let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), seed).unwrap();
        let train = gen.generate(60);
        let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        let base = traffic::ConnectionRecord::default();
        let mut tcp = base.clone();
        tcp.protocol = traffic::Protocol::Tcp;
        let mut udp = base.clone();
        udp.protocol = traffic::Protocol::Udp;
        prop_assert_ne!(
            pipeline.transform(&tcp).unwrap(),
            pipeline.transform(&udp).unwrap()
        );
    }
}
