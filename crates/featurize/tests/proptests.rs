//! Property-based tests for the feature pipeline.

use featurize::pipeline::{KddPipeline, PipelineConfig};
use featurize::scale::{ColumnScaler, ScalingKind};
use proptest::prelude::*;
use traffic::synth::{profiles, MixSpec, TrafficGenerator};
use traffic::AttackType;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Min-max-family scalers always produce values in [0, 1], even on
    /// inputs far outside the fitted range.
    #[test]
    fn minmax_outputs_bounded(
        train in prop::collection::vec(prop::collection::vec(-1e4f64..1e4, 3), 2..40),
        probe in prop::collection::vec(-1e6f64..1e6, 3)
    ) {
        for kind in [ScalingKind::MinMax, ScalingKind::Log1pMinMax] {
            let scaler = ColumnScaler::fit(kind, train.iter().map(|r| r.as_slice())).unwrap();
            let out = scaler.transform(&probe).unwrap();
            for &v in &out {
                prop_assert!((0.0..=1.0).contains(&v), "{kind} produced {v}");
            }
        }
    }

    /// Scalers are monotone per column: x1 <= x2 in a column implies
    /// scaled(x1) <= scaled(x2) (min-max and z-score are affine with
    /// non-negative slope; log1p+min-max composes monotone maps).
    #[test]
    fn scalers_are_monotone(
        train in prop::collection::vec(prop::collection::vec(0.0f64..1e4, 2), 3..40),
        a in 0.0f64..1e4, b in 0.0f64..1e4
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for kind in [ScalingKind::MinMax, ScalingKind::ZScore, ScalingKind::Log1pMinMax] {
            let scaler = ColumnScaler::fit(kind, train.iter().map(|r| r.as_slice())).unwrap();
            let out_lo = scaler.transform(&[lo, lo]).unwrap();
            let out_hi = scaler.transform(&[hi, hi]).unwrap();
            prop_assert!(out_lo[0] <= out_hi[0] + 1e-12, "{kind} not monotone");
        }
    }

    /// The full pipeline yields bounded, finite vectors of the advertised
    /// width for every attack type — including types absent from the
    /// fitting data.
    #[test]
    fn pipeline_output_is_bounded_for_all_types(seed in 0u64..200, type_idx in 0usize..33) {
        use rand::SeedableRng;
        let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), seed).unwrap();
        let train = gen.generate(120);
        let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xFEED);
        let rec = profiles::sample(AttackType::ALL[type_idx], &mut rng);
        let v = pipeline.transform(&rec).unwrap();
        prop_assert_eq!(v.len(), pipeline.output_dim());
        for &x in &v {
            prop_assert!(x.is_finite());
            prop_assert!((0.0..=1.0).contains(&x), "value {x} out of range");
        }
    }

    /// Pipeline fitting is deterministic in its inputs.
    #[test]
    fn pipeline_fit_is_deterministic(seed in 0u64..100) {
        let mut gen1 = TrafficGenerator::new(MixSpec::kdd_train(), seed).unwrap();
        let mut gen2 = TrafficGenerator::new(MixSpec::kdd_train(), seed).unwrap();
        let train1 = gen1.generate(80);
        let train2 = gen2.generate(80);
        let p1 = KddPipeline::fit(&PipelineConfig::default(), &train1).unwrap();
        let p2 = KddPipeline::fit(&PipelineConfig::default(), &train2).unwrap();
        prop_assert_eq!(&p1, &p2);
        let rec = &train1.records()[0];
        prop_assert_eq!(p1.transform(rec).unwrap(), p2.transform(rec).unwrap());
    }

    /// Distinct categorical fields always produce distinct vectors when
    /// categoricals are enabled (injectivity of the one-hot block).
    #[test]
    fn categorical_block_is_injective(seed in 0u64..100) {
        let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), seed).unwrap();
        let train = gen.generate(60);
        let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        let base = traffic::ConnectionRecord::default();
        let mut tcp = base.clone();
        tcp.protocol = traffic::Protocol::Tcp;
        let mut udp = base.clone();
        udp.protocol = traffic::Protocol::Udp;
        prop_assert_ne!(
            pipeline.transform(&tcp).unwrap(),
            pipeline.transform(&udp).unwrap()
        );
    }
}
