//! Decay schedules for the learning rate and neighborhood radius.

use serde::{Deserialize, Serialize};

use crate::SomError;

/// A monotone decay from a start to an end value over the training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecaySchedule {
    /// Linear interpolation from `start` at t=0 to `end` at t=1.
    Linear {
        /// Initial value.
        start: f64,
        /// Final value.
        end: f64,
    },
    /// Exponential decay `start·(end/start)^t`; requires both positive.
    Exponential {
        /// Initial value.
        start: f64,
        /// Final value.
        end: f64,
    },
    /// `start / (1 + c·t)` — the classical inverse-time schedule.
    InverseTime {
        /// Initial value.
        start: f64,
        /// Decay speed (larger ⇒ faster decay); the value at t=1 is
        /// `start / (1 + c)`.
        c: f64,
    },
}

impl DecaySchedule {
    /// Validates the schedule's parameters.
    ///
    /// # Errors
    ///
    /// [`SomError::InvalidParameter`] when values are non-finite, negative,
    /// increasing (`end > start`), or (for exponential) non-positive.
    pub fn validate(&self) -> Result<(), SomError> {
        let bad = |reason: &'static str| SomError::InvalidParameter {
            name: "schedule",
            reason,
        };
        match *self {
            DecaySchedule::Linear { start, end } => {
                if !start.is_finite() || !end.is_finite() {
                    return Err(bad("bounds must be finite"));
                }
                if start < 0.0 || end < 0.0 {
                    return Err(bad("bounds must be non-negative"));
                }
                if end > start {
                    return Err(bad("schedule must not increase"));
                }
            }
            DecaySchedule::Exponential { start, end } => {
                if !(start.is_finite() && end.is_finite() && start > 0.0 && end > 0.0) {
                    return Err(bad("exponential bounds must be finite and positive"));
                }
                if end > start {
                    return Err(bad("schedule must not increase"));
                }
            }
            DecaySchedule::InverseTime { start, c } => {
                if !(start.is_finite() && start >= 0.0) {
                    return Err(bad("start must be finite and non-negative"));
                }
                if !(c.is_finite() && c >= 0.0) {
                    return Err(bad("c must be finite and non-negative"));
                }
            }
        }
        Ok(())
    }

    /// Value at normalized progress `t ∈ [0, 1]` (clamped).
    pub fn at(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        match *self {
            DecaySchedule::Linear { start, end } => start + t * (end - start),
            DecaySchedule::Exponential { start, end } => start * (end / start).powf(t),
            DecaySchedule::InverseTime { start, c } => start / (1.0 + c * t),
        }
    }

    /// Value at step `step` of `total_steps` (progress `step/(total−1)`;
    /// a single-step run uses the start value).
    pub fn at_step(&self, step: usize, total_steps: usize) -> f64 {
        if total_steps <= 1 {
            return self.at(0.0);
        }
        self.at(step as f64 / (total_steps - 1) as f64)
    }
}

impl Default for DecaySchedule {
    /// Linear decay from 0.5 to 0.02 — a robust default learning-rate
    /// schedule for the map sizes in this workspace.
    fn default() -> Self {
        DecaySchedule::Linear {
            start: 0.5,
            end: 0.02,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolates() {
        let s = DecaySchedule::Linear {
            start: 1.0,
            end: 0.0,
        };
        assert_eq!(s.at(0.0), 1.0);
        assert_eq!(s.at(0.5), 0.5);
        assert_eq!(s.at(1.0), 0.0);
        // Clamped outside [0,1].
        assert_eq!(s.at(-1.0), 1.0);
        assert_eq!(s.at(2.0), 0.0);
    }

    #[test]
    fn exponential_hits_endpoints() {
        let s = DecaySchedule::Exponential {
            start: 1.0,
            end: 0.01,
        };
        assert!((s.at(0.0) - 1.0).abs() < 1e-12);
        assert!((s.at(1.0) - 0.01).abs() < 1e-12);
        assert!((s.at(0.5) - 0.1).abs() < 1e-12); // geometric midpoint
    }

    #[test]
    fn inverse_time_decays() {
        let s = DecaySchedule::InverseTime { start: 1.0, c: 9.0 };
        assert_eq!(s.at(0.0), 1.0);
        assert!((s.at(1.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn schedules_are_monotone_non_increasing() {
        let schedules = [
            DecaySchedule::Linear {
                start: 0.9,
                end: 0.1,
            },
            DecaySchedule::Exponential {
                start: 0.9,
                end: 0.1,
            },
            DecaySchedule::InverseTime { start: 0.9, c: 5.0 },
        ];
        for s in schedules {
            s.validate().unwrap();
            let mut prev = s.at(0.0);
            for i in 1..=20 {
                let v = s.at(i as f64 / 20.0);
                assert!(v <= prev + 1e-12, "{s:?} increased");
                prev = v;
            }
        }
    }

    #[test]
    fn at_step_handles_degenerate_totals() {
        let s = DecaySchedule::Linear {
            start: 1.0,
            end: 0.0,
        };
        assert_eq!(s.at_step(0, 1), 1.0);
        assert_eq!(s.at_step(0, 0), 1.0);
        assert_eq!(s.at_step(0, 5), 1.0);
        assert_eq!(s.at_step(4, 5), 0.0);
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(DecaySchedule::Linear {
            start: 0.1,
            end: 0.5
        }
        .validate()
        .is_err());
        assert!(DecaySchedule::Linear {
            start: -1.0,
            end: -2.0
        }
        .validate()
        .is_err());
        assert!(DecaySchedule::Exponential {
            start: 0.0,
            end: 0.0
        }
        .validate()
        .is_err());
        assert!(DecaySchedule::Exponential {
            start: 1.0,
            end: f64::NAN
        }
        .validate()
        .is_err());
        assert!(DecaySchedule::InverseTime {
            start: 1.0,
            c: -1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn default_is_reasonable() {
        let d = DecaySchedule::default();
        d.validate().unwrap();
        assert_eq!(d.at(0.0), 0.5);
        assert!((d.at(1.0) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let s = DecaySchedule::Exponential {
            start: 2.0,
            end: 0.5,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: DecaySchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
