//! Error type for SOM construction and training.

use std::fmt;

/// Errors produced by SOM operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SomError {
    /// Sample dimensionality does not match the codebook.
    DimensionMismatch {
        /// Codebook dimensionality.
        expected: usize,
        /// Sample dimensionality received.
        found: usize,
    },
    /// An operation that needs data received an empty set.
    EmptyInput,
    /// A grid or training parameter was out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Violated constraint.
        reason: &'static str,
    },
    /// Input contained NaN or infinite values.
    NonFinite,
}

impl fmt::Display for SomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SomError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "dimension mismatch: codebook is {expected}-d, sample is {found}-d"
                )
            }
            SomError::EmptyInput => write!(f, "operation requires a non-empty data set"),
            SomError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SomError::NonFinite => write!(f, "input contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for SomError {}

impl From<mathkit::MathError> for SomError {
    fn from(err: mathkit::MathError) -> Self {
        match err {
            mathkit::MathError::DimensionMismatch { expected, found } => {
                SomError::DimensionMismatch { expected, found }
            }
            mathkit::MathError::EmptyInput => SomError::EmptyInput,
            mathkit::MathError::NonFinite => SomError::NonFinite,
            mathkit::MathError::InvalidParameter { name, reason } => {
                SomError::InvalidParameter { name, reason }
            }
            mathkit::MathError::NoConvergence { .. } => SomError::InvalidParameter {
                name: "iterations",
                reason: "underlying numerical routine failed to converge",
            },
            // MathError is #[non_exhaustive]; map future variants to the
            // least-specific bucket rather than silently renaming them.
            _ => SomError::InvalidParameter {
                name: "input",
                reason: "underlying numerical routine failed",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SomError::DimensionMismatch {
                expected: 88,
                found: 3
            }
            .to_string(),
            "dimension mismatch: codebook is 88-d, sample is 3-d"
        );
        assert_eq!(
            SomError::InvalidParameter {
                name: "rows",
                reason: "must be at least 1"
            }
            .to_string(),
            "invalid parameter `rows`: must be at least 1"
        );
    }

    #[test]
    fn converts_math_errors() {
        let e: SomError = mathkit::MathError::EmptyInput.into();
        assert_eq!(e, SomError::EmptyInput);
        let e: SomError = mathkit::MathError::NonFinite.into();
        assert_eq!(e, SomError::NonFinite);
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<SomError>();
    }
}
