//! Grid topologies: unit indexing, neighbor iteration and grid distance.

use serde::{Deserialize, Serialize};

use crate::SomError;

/// Lattice arrangement of the units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GridLayout {
    /// Square lattice; 4-connected neighbors, Euclidean grid distance.
    #[default]
    Rectangular,
    /// Hexagonal lattice (odd rows shifted right); 6-connected neighbors,
    /// axial hex distance.
    Hexagonal,
}

/// A `rows × cols` grid of SOM units.
///
/// Units are identified by a flat index in row-major order; the topology
/// maps between indices and `(row, col)` positions and answers distance
/// queries on the lattice (not in feature space).
///
/// # Example
///
/// ```
/// use som::topology::GridTopology;
///
/// # fn main() -> Result<(), som::SomError> {
/// let grid = GridTopology::rectangular(3, 4)?;
/// assert_eq!(grid.len(), 12);
/// assert_eq!(grid.index(1, 2), 6);
/// assert_eq!(grid.coords(6), (1, 2));
/// assert_eq!(grid.grid_distance(0, 0), 0.0);
/// // Diagonal neighbor at Euclidean distance √2.
/// assert!((grid.grid_distance(0, 5) - 2f64.sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridTopology {
    rows: usize,
    cols: usize,
    layout: GridLayout,
}

impl GridTopology {
    /// Creates a grid with the given layout.
    ///
    /// # Errors
    ///
    /// [`SomError::InvalidParameter`] when either dimension is zero.
    pub fn new(rows: usize, cols: usize, layout: GridLayout) -> Result<Self, SomError> {
        if rows == 0 {
            return Err(SomError::InvalidParameter {
                name: "rows",
                reason: "must be at least 1",
            });
        }
        if cols == 0 {
            return Err(SomError::InvalidParameter {
                name: "cols",
                reason: "must be at least 1",
            });
        }
        Ok(GridTopology { rows, cols, layout })
    }

    /// Creates a rectangular grid.
    ///
    /// # Errors
    ///
    /// [`SomError::InvalidParameter`] when either dimension is zero.
    pub fn rectangular(rows: usize, cols: usize) -> Result<Self, SomError> {
        Self::new(rows, cols, GridLayout::Rectangular)
    }

    /// Creates a hexagonal grid.
    ///
    /// # Errors
    ///
    /// [`SomError::InvalidParameter`] when either dimension is zero.
    pub fn hexagonal(rows: usize, cols: usize) -> Result<Self, SomError> {
        Self::new(rows, cols, GridLayout::Hexagonal)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The lattice layout.
    pub fn layout(&self) -> GridLayout {
        self.layout
    }

    /// Total number of units.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `false` always — construction rejects empty grids.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat index of `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn index(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "grid position out of bounds"
        );
        row * self.cols + col
    }

    /// `(row, col)` of a flat index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn coords(&self, index: usize) -> (usize, usize) {
        assert!(index < self.len(), "unit index out of bounds");
        (index / self.cols, index % self.cols)
    }

    /// Iterator over all `(row, col)` positions in row-major order.
    pub fn iter_coords(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.len()).map(move |i| self.coords(i))
    }

    /// Lattice distance between two units (by flat index).
    ///
    /// Rectangular grids use Euclidean distance on `(row, col)`; hexagonal
    /// grids use the axial hex distance of the offset coordinates. In both
    /// cases adjacent units are at distance 1, which is what the
    /// neighborhood kernels assume.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn grid_distance(&self, a: usize, b: usize) -> f64 {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        match self.layout {
            GridLayout::Rectangular => {
                let dr = ar as f64 - br as f64;
                let dc = ac as f64 - bc as f64;
                (dr * dr + dc * dc).sqrt()
            }
            GridLayout::Hexagonal => {
                // Convert odd-r offset to axial coordinates, then use the
                // standard hex distance.
                let to_axial = |r: usize, c: usize| -> (i64, i64) {
                    let r = r as i64;
                    let c = c as i64;
                    let q = c - (r - (r & 1)) / 2;
                    (q, r)
                };
                let (aq, ar) = to_axial(ar, ac);
                let (bq, br) = to_axial(br, bc);
                let dq = aq - bq;
                let dr = ar - br;
                (((dq).abs() + (dr).abs() + (dq + dr).abs()) / 2) as f64
            }
        }
    }

    /// Flat indices of the immediate lattice neighbors of `index`
    /// (4-connected for rectangular, 6-connected for hexagonal).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn neighbors(&self, index: usize) -> Vec<usize> {
        let (r, c) = self.coords(index);
        let r = r as i64;
        let c = c as i64;
        let candidates: Vec<(i64, i64)> = match self.layout {
            GridLayout::Rectangular => {
                vec![(r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)]
            }
            GridLayout::Hexagonal => {
                // odd-r offset neighbor table
                if r % 2 == 0 {
                    vec![
                        (r, c - 1),
                        (r, c + 1),
                        (r - 1, c - 1),
                        (r - 1, c),
                        (r + 1, c - 1),
                        (r + 1, c),
                    ]
                } else {
                    vec![
                        (r, c - 1),
                        (r, c + 1),
                        (r - 1, c),
                        (r - 1, c + 1),
                        (r + 1, c),
                        (r + 1, c + 1),
                    ]
                }
            }
        };
        candidates
            .into_iter()
            .filter(|&(nr, nc)| {
                nr >= 0 && nc >= 0 && (nr as usize) < self.rows && (nc as usize) < self.cols
            })
            .map(|(nr, nc)| self.index(nr as usize, nc as usize))
            .collect()
    }

    /// Half the larger grid dimension — the conventional initial
    /// neighborhood radius.
    pub fn default_radius(&self) -> f64 {
        (self.rows.max(self.cols) as f64 / 2.0).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_dimensions() {
        assert!(GridTopology::rectangular(0, 3).is_err());
        assert!(GridTopology::rectangular(3, 0).is_err());
        assert!(GridTopology::rectangular(1, 1).is_ok());
    }

    #[test]
    fn index_coords_roundtrip() {
        let g = GridTopology::rectangular(3, 5).unwrap();
        for i in 0..g.len() {
            let (r, c) = g.coords(i);
            assert_eq!(g.index(r, c), i);
        }
        assert_eq!(g.iter_coords().count(), 15);
    }

    #[test]
    fn rectangular_distance_is_euclidean() {
        let g = GridTopology::rectangular(4, 4).unwrap();
        assert_eq!(g.grid_distance(0, 0), 0.0);
        assert_eq!(g.grid_distance(0, 1), 1.0);
        assert_eq!(g.grid_distance(0, 4), 1.0);
        assert!((g.grid_distance(0, 5) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(g.grid_distance(0, 3), 3.0);
    }

    #[test]
    fn rectangular_neighbors() {
        let g = GridTopology::rectangular(3, 3).unwrap();
        // Center unit (1,1) = 4 has 4 neighbors.
        let mut n = g.neighbors(4);
        n.sort_unstable();
        assert_eq!(n, vec![1, 3, 5, 7]);
        // Corner has 2.
        let mut n = g.neighbors(0);
        n.sort_unstable();
        assert_eq!(n, vec![1, 3]);
    }

    #[test]
    fn hexagonal_neighbors_count() {
        let g = GridTopology::hexagonal(4, 4).unwrap();
        // An interior unit has 6 neighbors.
        let interior = g.index(1, 1);
        assert_eq!(g.neighbors(interior).len(), 6);
        // All neighbor distances are exactly 1.
        for n in g.neighbors(interior) {
            assert_eq!(g.grid_distance(interior, n), 1.0, "neighbor {n}");
        }
    }

    #[test]
    fn hex_distance_symmetry_and_identity() {
        let g = GridTopology::hexagonal(5, 5).unwrap();
        for a in 0..g.len() {
            assert_eq!(g.grid_distance(a, a), 0.0);
            for b in 0..g.len() {
                assert_eq!(g.grid_distance(a, b), g.grid_distance(b, a));
            }
        }
    }

    #[test]
    fn neighbors_are_mutual() {
        for layout in [GridLayout::Rectangular, GridLayout::Hexagonal] {
            let g = GridTopology::new(4, 5, layout).unwrap();
            for i in 0..g.len() {
                for n in g.neighbors(i) {
                    assert!(
                        g.neighbors(n).contains(&i),
                        "{layout:?}: {i} -> {n} not mutual"
                    );
                }
            }
        }
    }

    #[test]
    fn default_radius() {
        assert_eq!(
            GridTopology::rectangular(2, 2).unwrap().default_radius(),
            1.0
        );
        assert_eq!(
            GridTopology::rectangular(10, 4).unwrap().default_radius(),
            5.0
        );
        assert_eq!(
            GridTopology::rectangular(1, 1).unwrap().default_radius(),
            1.0
        );
    }

    #[test]
    fn serde_roundtrip() {
        let g = GridTopology::hexagonal(3, 7).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: GridTopology = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
