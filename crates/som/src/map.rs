//! The self-organizing map: codebook, BMU search, training, quality metrics.
//!
//! # Batched BMU engine
//!
//! Best-matching-unit search is the hot path of both training and
//! detection. Two implementations coexist:
//!
//! * [`Som::bmu_scan`] — the naive reference: one [`Metric::eval`] per
//!   codebook row. Kept for benchmarks and equivalence tests.
//! * [`Som::bmu`] / [`Som::bmu_batch`] — the batched engine. For the
//!   Euclidean metric family it uses the Gram identity
//!   `‖x−w‖² = ‖x‖² − 2·x·w + ‖w‖²` over a transposed codebook with cached
//!   row norms (see [`mathkit::batch`]); other metrics get a scan with the
//!   metric kernel resolved once per search instead of once per row. The
//!   transposed-codebook/norm cache is built lazily on first use and
//!   invalidated whenever training mutates the weights.
//!
//! Batch entry points process samples in fixed-size chunks through
//! [`mathkit::parallel`], so with the `rayon` cargo feature they use every
//! core while remaining bit-deterministic (results are merged in chunk
//! order; set `GHSOM_THREADS=1` to force sequential execution).
//!
//! Tie-breaking is identical everywhere: units are scanned in ascending
//! index order with strict `<`, so the lowest unit index wins ties.

use mathkit::batch;
use mathkit::{distance, parallel, vector, Matrix, Metric};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::neighborhood::NeighborhoodKind;
use crate::schedule::DecaySchedule;
use crate::topology::GridTopology;
use crate::SomError;

/// Parameters of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainParams {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Learning-rate decay over the whole run.
    pub learning_rate: DecaySchedule,
    /// Neighborhood-radius decay; `None` derives
    /// `start = max(rows, cols)/2 → 0.5` from the map's topology.
    pub radius: Option<DecaySchedule>,
    /// Neighborhood kernel.
    pub neighborhood: NeighborhoodKind,
    /// Seed for the per-epoch sample shuffling.
    pub shuffle_seed: u64,
}

impl Default for TrainParams {
    /// Ten epochs, linear 0.5→0.02 learning rate, topology-derived radius,
    /// Gaussian kernel.
    fn default() -> Self {
        TrainParams {
            epochs: 10,
            learning_rate: DecaySchedule::default(),
            radius: None,
            neighborhood: NeighborhoodKind::Gaussian,
            shuffle_seed: 0x50_4D_41,
        }
    }
}

impl TrainParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// [`SomError::InvalidParameter`] for zero epochs or invalid schedules.
    pub fn validate(&self) -> Result<(), SomError> {
        if self.epochs == 0 {
            return Err(SomError::InvalidParameter {
                name: "epochs",
                reason: "must be at least 1",
            });
        }
        self.learning_rate.validate()?;
        if let Some(r) = &self.radius {
            r.validate()?;
        }
        Ok(())
    }
}

/// Result of a best-matching-unit search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BmuMatch {
    /// Flat index of the winning unit.
    pub unit: usize,
    /// Distance from the sample to the winner, in the map's metric.
    pub distance: f64,
}

/// Per-epoch progress of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean BMU distance observed during each epoch (a free by-product of
    /// the update loop; for a converged map it approaches the true
    /// quantization error).
    pub epoch_mean_bmu_distance: Vec<f64>,
}

/// Samples per parallel work chunk in the batch BMU paths. Fixed (never
/// derived from the thread count) so results are bit-identical at any
/// parallelism, including `GHSOM_THREADS=1` and builds without the `rayon`
/// feature.
const BMU_CHUNK: usize = 512;

/// Lazily-built derived views of the codebook used by the Gram-trick BMU
/// engine: the transposed (feature-major) weights and per-unit squared
/// norms.
#[derive(Debug, Clone, Default)]
struct CacheData {
    /// Group-tiled packed codebook (see [`batch::pack_codebook`]).
    wt: Vec<f64>,
    /// `‖w_u‖²/2` per unit — the proxy-ranking half-norms.
    wn_half: Vec<f64>,
}

/// Interior-mutable holder for [`CacheData`].
///
/// Deliberately invisible to the map's value semantics: compares equal to
/// everything (so derived `PartialEq` on [`Som`] ignores it), serializes
/// as `null`, and deserializes empty — the cache rebuilds on first use.
#[derive(Debug, Default)]
struct BmuCache(std::sync::OnceLock<CacheData>);

impl Clone for BmuCache {
    fn clone(&self) -> Self {
        match self.0.get() {
            Some(data) => {
                let lock = std::sync::OnceLock::new();
                let _ = lock.set(data.clone());
                BmuCache(lock)
            }
            None => BmuCache::default(),
        }
    }
}

impl PartialEq for BmuCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl serde::Serialize for BmuCache {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for BmuCache {
    fn from_value(_v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(BmuCache::default())
    }
}

/// A self-organizing map with a dense codebook.
///
/// See the [crate-level example](crate) for end-to-end usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Som {
    topology: GridTopology,
    /// `units × dim` codebook; row `i` is the weight vector of unit `i`.
    weights: Matrix,
    metric: Metric,
    /// Derived codebook views for the batched BMU engine (see module docs).
    cache: BmuCache,
}

impl Som {
    /// Builds a map from explicit parts — the constructor the growing
    /// hierarchical SOM uses when it inserts rows/columns.
    ///
    /// # Errors
    ///
    /// [`SomError::DimensionMismatch`] when `weights.rows() !=
    /// topology.len()`.
    pub fn from_parts(
        topology: GridTopology,
        weights: Matrix,
        metric: Metric,
    ) -> Result<Self, SomError> {
        if weights.rows() != topology.len() {
            return Err(SomError::DimensionMismatch {
                expected: topology.len(),
                found: weights.rows(),
            });
        }
        Ok(Som {
            topology,
            weights,
            metric,
            cache: BmuCache::default(),
        })
    }

    /// Random codebook with weights uniform in `[0, 1]^dim` (matching the
    /// scaled feature space produced by the `featurize` pipeline).
    ///
    /// # Errors
    ///
    /// [`SomError::InvalidParameter`] for a zero dimension or grid size.
    pub fn random_uniform(
        rows: usize,
        cols: usize,
        dim: usize,
        seed: u64,
    ) -> Result<Self, SomError> {
        if dim == 0 {
            return Err(SomError::InvalidParameter {
                name: "dim",
                reason: "must be at least 1",
            });
        }
        let topology = GridTopology::rectangular(rows, cols)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..topology.len() * dim).map(|_| rng.gen()).collect();
        let weights = Matrix::from_flat(topology.len(), dim, data)?;
        Ok(Som {
            topology,
            weights,
            metric: Metric::Euclidean,
            cache: BmuCache::default(),
        })
    }

    /// Codebook initialized from random training samples — the
    /// initialization the GHSOM growth procedure uses.
    ///
    /// # Errors
    ///
    /// [`SomError::EmptyInput`] on an empty data matrix; grid errors as in
    /// [`Som::random_uniform`].
    pub fn from_data_sample(
        rows: usize,
        cols: usize,
        data: &Matrix,
        seed: u64,
    ) -> Result<Self, SomError> {
        if data.rows() == 0 {
            return Err(SomError::EmptyInput);
        }
        let topology = GridTopology::rectangular(rows, cols)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w_rows = Vec::with_capacity(topology.len());
        for _ in 0..topology.len() {
            let i = rng.gen_range(0..data.rows());
            w_rows.push(data.row(i).to_vec());
        }
        let weights = Matrix::from_rows(w_rows)?;
        Ok(Som {
            topology,
            weights,
            metric: Metric::Euclidean,
            cache: BmuCache::default(),
        })
    }

    /// Linear initialization along the first two principal axes of the
    /// data — Kohonen's recommended deterministic initialization.
    ///
    /// # Errors
    ///
    /// [`SomError::EmptyInput`] on empty data;
    /// [`SomError::InvalidParameter`] when the data has fewer than 2
    /// columns (PCA needs at least the requested component count).
    pub fn pca_init(rows: usize, cols: usize, data: &Matrix, seed: u64) -> Result<Self, SomError> {
        let topology = GridTopology::rectangular(rows, cols)?;
        let k = 2.min(data.cols());
        let pca = mathkit::Pca::fit(data, k, 200, seed)?;
        let mean = pca.mean().to_vec();
        // Span ±2σ along each axis.
        let spans: Vec<f64> = pca.eigenvalues().iter().map(|l| 2.0 * l.sqrt()).collect();
        let mut w_rows = Vec::with_capacity(topology.len());
        for (r, c) in topology.iter_coords() {
            let tr = if rows > 1 {
                r as f64 / (rows - 1) as f64 * 2.0 - 1.0
            } else {
                0.0
            };
            let tc = if cols > 1 {
                c as f64 / (cols - 1) as f64 * 2.0 - 1.0
            } else {
                0.0
            };
            let mut w = mean.clone();
            vector::axpy(&mut w, tr * spans[0], pca.component(0));
            if k > 1 {
                vector::axpy(&mut w, tc * spans[1], pca.component(1));
            }
            w_rows.push(w);
        }
        let weights = Matrix::from_rows(w_rows)?;
        Ok(Som {
            topology,
            weights,
            metric: Metric::Euclidean,
            cache: BmuCache::default(),
        })
    }

    /// The grid topology.
    pub fn topology(&self) -> &GridTopology {
        &self.topology
    }

    /// Codebook dimensionality.
    pub fn dim(&self) -> usize {
        self.weights.cols()
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// `false` always — topologies cannot be empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The distance metric used for BMU search.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Replaces the BMU-search metric.
    pub fn set_metric(&mut self, metric: Metric) {
        self.metric = metric;
    }

    /// Weight vector of unit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn unit_weight(&self, i: usize) -> &[f64] {
        self.weights.row(i)
    }

    /// The whole codebook (`units × dim`).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The Gram-engine cache, building it on first use.
    fn cache_data(&self) -> &CacheData {
        self.cache.0.get_or_init(|| CacheData {
            wt: batch::pack_codebook(&self.weights),
            wn_half: batch::half_row_norms_sq(&self.weights),
        })
    }

    /// Drops the derived codebook views; must be called after every weight
    /// mutation so stale norms/transposes are never read.
    fn invalidate_cache(&mut self) {
        self.cache = BmuCache::default();
    }

    /// Best-matching unit for a sample, via the batched engine's kernels
    /// (Gram trick for the Euclidean family, hoisted-kernel scan
    /// otherwise).
    ///
    /// Bit-identical to [`Som::bmu_batch`] on the same map; agrees with
    /// the naive [`Som::bmu_scan`] up to floating-point reassociation
    /// (~1e-12 relative).
    ///
    /// # Errors
    ///
    /// [`SomError::DimensionMismatch`] when the sample width differs from
    /// the codebook.
    pub fn bmu(&self, x: &[f64]) -> Result<BmuMatch, SomError> {
        self.check_dim(x)?;
        let n = if self.metric.gram_compatible() {
            let cache = self.cache_data();
            batch::gram_nearest(x, &cache.wt, &cache.wn_half)
        } else {
            batch::kernel_nearest(x, &self.weights, &self.metric.scan_kernel())
        };
        Ok(BmuMatch {
            unit: n.unit,
            distance: self.metric.finalize(n.d2),
        })
    }

    /// Reference best-matching-unit search: the naive per-row
    /// [`Metric::eval`] loop the batched engine replaced.
    ///
    /// Kept as the ground truth for the equivalence property tests and the
    /// `bmu_scaling` benchmark baseline; not used by any hot path.
    ///
    /// # Errors
    ///
    /// [`SomError::DimensionMismatch`] when the sample width differs from
    /// the codebook.
    pub fn bmu_scan(&self, x: &[f64]) -> Result<BmuMatch, SomError> {
        self.check_dim(x)?;
        let mut best = BmuMatch {
            unit: 0,
            distance: f64::INFINITY,
        };
        for (i, w) in self.weights.iter_rows().enumerate() {
            let d = self.metric.eval(x, w);
            if d < best.distance {
                best = BmuMatch {
                    unit: i,
                    distance: d,
                };
            }
        }
        Ok(best)
    }

    /// The two best-matching units (for topographic error).
    ///
    /// # Errors
    ///
    /// [`SomError::DimensionMismatch`] on width mismatch;
    /// [`SomError::InvalidParameter`] when the map has a single unit.
    pub fn bmu_pair(&self, x: &[f64]) -> Result<(BmuMatch, BmuMatch), SomError> {
        self.check_dim(x)?;
        if self.len() < 2 {
            return Err(SomError::InvalidParameter {
                name: "units",
                reason: "bmu_pair requires at least 2 units",
            });
        }
        let n2 = if self.metric.gram_compatible() {
            let cache = self.cache_data();
            batch::gram_nearest2(x, &cache.wt, &cache.wn_half)
        } else {
            batch::kernel_nearest2(x, &self.weights, &self.metric.scan_kernel())
        };
        Ok((
            BmuMatch {
                unit: n2.first.unit,
                distance: self.metric.finalize(n2.first.d2),
            },
            BmuMatch {
                unit: n2.second.unit,
                distance: self.metric.finalize(n2.second.d2),
            },
        ))
    }

    /// Best-matching unit of **every** row of `data` — the batched engine.
    ///
    /// Chunked and, with the `rayon` feature, data-parallel; results are
    /// identical to mapping [`Som::bmu`] over the rows (same kernels, same
    /// tie-breaking: lowest unit index wins).
    ///
    /// # Errors
    ///
    /// [`SomError::DimensionMismatch`] when the sample width differs from
    /// the codebook.
    pub fn bmu_batch(&self, data: &Matrix) -> Result<Vec<BmuMatch>, SomError> {
        if data.rows() > 0 {
            self.check_dim(data.row(0))?;
        }
        let nearest = self.nearest_batch(data);
        Ok(nearest
            .into_iter()
            .map(|n| BmuMatch {
                unit: n.unit,
                distance: self.metric.finalize(n.d2),
            })
            .collect())
    }

    /// The two best-matching units of every row of `data`.
    ///
    /// # Errors
    ///
    /// [`SomError::DimensionMismatch`] on width mismatch;
    /// [`SomError::InvalidParameter`] when the map has a single unit.
    pub fn bmu_pair_batch(&self, data: &Matrix) -> Result<Vec<(BmuMatch, BmuMatch)>, SomError> {
        if data.rows() > 0 {
            self.check_dim(data.row(0))?;
        }
        if self.len() < 2 {
            return Err(SomError::InvalidParameter {
                name: "units",
                reason: "bmu_pair requires at least 2 units",
            });
        }
        let dim = self.dim();
        let rows = data.as_slice();
        let chunks: Vec<Vec<batch::Nearest2>> = if self.metric.gram_compatible() {
            let cache = self.cache_data();
            parallel::par_map_chunks(data.rows(), BMU_CHUNK, |r| {
                let mut out = Vec::with_capacity(r.len());
                batch::gram_nearest2_block(
                    &rows[r.start * dim..r.end * dim],
                    dim,
                    &cache.wt,
                    &cache.wn_half,
                    &mut out,
                );
                out
            })
        } else {
            let kernel = self.metric.scan_kernel();
            parallel::par_map_chunks(data.rows(), BMU_CHUNK, |r| {
                rows[r.start * dim..r.end * dim]
                    .chunks_exact(dim)
                    .map(|x| batch::kernel_nearest2(x, &self.weights, &kernel))
                    .collect()
            })
        };
        Ok(chunks
            .into_iter()
            .flatten()
            .map(|n2| {
                (
                    BmuMatch {
                        unit: n2.first.unit,
                        distance: self.metric.finalize(n2.first.d2),
                    },
                    BmuMatch {
                        unit: n2.second.unit,
                        distance: self.metric.finalize(n2.second.d2),
                    },
                )
            })
            .collect())
    }

    /// Raw chunked nearest-unit search shared by the batch entry points.
    fn nearest_batch(&self, data: &Matrix) -> Vec<batch::Nearest> {
        let dim = self.dim();
        let rows = data.as_slice();
        let chunks: Vec<Vec<batch::Nearest>> = if self.metric.gram_compatible() {
            let cache = self.cache_data();
            parallel::par_map_chunks(data.rows(), BMU_CHUNK, |r| {
                let mut out = Vec::with_capacity(r.len());
                batch::gram_nearest_block(
                    &rows[r.start * dim..r.end * dim],
                    dim,
                    &cache.wt,
                    &cache.wn_half,
                    &mut out,
                );
                out
            })
        } else {
            let kernel = self.metric.scan_kernel();
            parallel::par_map_chunks(data.rows(), BMU_CHUNK, |r| {
                rows[r.start * dim..r.end * dim]
                    .chunks_exact(dim)
                    .map(|x| batch::kernel_nearest(x, &self.weights, &kernel))
                    .collect()
            })
        };
        chunks.into_iter().flatten().collect()
    }

    /// Online (Kohonen) training: per-sample winner updates with decaying
    /// learning rate and radius.
    ///
    /// # Errors
    ///
    /// Parameter/shape errors per [`TrainParams::validate`] and
    /// [`Som::bmu`].
    pub fn train_online(
        &mut self,
        data: &Matrix,
        params: &TrainParams,
    ) -> Result<TrainReport, SomError> {
        params.validate()?;
        if data.rows() == 0 {
            return Err(SomError::EmptyInput);
        }
        self.check_dim(data.row(0))?;
        let radius = params.radius.unwrap_or(DecaySchedule::Linear {
            start: self.topology.default_radius(),
            end: 0.5,
        });
        radius.validate()?;

        let n = data.rows();
        let total_steps = params.epochs * n;
        let mut order: Vec<usize> = (0..n).collect();
        let mut report = TrainReport {
            epoch_mean_bmu_distance: Vec::with_capacity(params.epochs),
        };

        // Weights mutate after every sample, so the Gram cache can never be
        // reused here; scan with the metric kernel resolved once for the
        // whole run instead of once per codebook row.
        let kernel = self.metric.scan_kernel();
        let mut step = 0usize;
        for epoch in 0..params.epochs {
            let mut rng = StdRng::seed_from_u64(params.shuffle_seed ^ (epoch as u64));
            order.shuffle(&mut rng);
            let mut qe_acc = 0.0;
            for &idx in &order {
                let t = step as f64 / total_steps.max(1) as f64;
                let lr = params.learning_rate.at(t);
                let sigma = radius.at(t);
                let cutoff = params.neighborhood.cutoff(sigma);
                let x = data.row(idx);
                let near = batch::kernel_nearest(x, &self.weights, &kernel);
                qe_acc += self.metric.finalize(near.d2);
                for u in 0..self.len() {
                    let d = self.topology.grid_distance(near.unit, u);
                    if d > cutoff {
                        continue;
                    }
                    let h = params.neighborhood.value(d, sigma);
                    if h == 0.0 {
                        continue;
                    }
                    vector::som_update(self.weights.row_mut(u), lr * h, x);
                }
                step += 1;
            }
            report.epoch_mean_bmu_distance.push(qe_acc / n as f64);
        }
        self.invalidate_cache();
        Ok(report)
    }

    /// Batch training: each epoch recomputes every weight as the
    /// neighborhood-weighted mean of the samples. Deterministic given the
    /// initialization, and order-independent.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Som::train_online`].
    pub fn train_batch(
        &mut self,
        data: &Matrix,
        params: &TrainParams,
    ) -> Result<TrainReport, SomError> {
        params.validate()?;
        if data.rows() == 0 {
            return Err(SomError::EmptyInput);
        }
        self.check_dim(data.row(0))?;
        let radius = params.radius.unwrap_or(DecaySchedule::Linear {
            start: self.topology.default_radius(),
            end: 0.5,
        });
        radius.validate()?;

        let units = self.len();
        let dim = self.dim();
        let mut report = TrainReport {
            epoch_mean_bmu_distance: Vec::with_capacity(params.epochs),
        };

        for epoch in 0..params.epochs {
            let sigma = radius.at_step(epoch, params.epochs);
            let cutoff = params.neighborhood.cutoff(sigma);
            // Batched BMU pass over the epoch's (frozen) codebook.
            let matches = self.nearest_batch(data);
            let qe_acc: f64 = matches.iter().map(|n| self.metric.finalize(n.d2)).sum();
            // Neighborhood-weighted accumulation, chunked over samples with
            // per-chunk partials merged in chunk order — parallel under the
            // `rayon` feature, bit-identical at any thread count.
            let partials = parallel::par_map_chunks(data.rows(), BMU_CHUNK, |range| {
                let mut num = vec![0.0; units * dim];
                let mut den = vec![0.0; units];
                for idx in range {
                    let x = data.row(idx);
                    let winner = matches[idx].unit;
                    for u in 0..units {
                        let d = self.topology.grid_distance(winner, u);
                        if d > cutoff {
                            continue;
                        }
                        let h = params.neighborhood.value(d, sigma).max(0.0);
                        if h == 0.0 {
                            continue;
                        }
                        let row = &mut num[u * dim..(u + 1) * dim];
                        vector::axpy(row, h, x);
                        den[u] += h;
                    }
                }
                (num, den)
            });
            let mut numerators = vec![0.0; units * dim];
            let mut denominators = vec![0.0; units];
            for (num, den) in partials {
                for (acc, x) in numerators.iter_mut().zip(&num) {
                    *acc += x;
                }
                for (acc, x) in denominators.iter_mut().zip(&den) {
                    *acc += x;
                }
            }
            for u in 0..units {
                if denominators[u] > 0.0 {
                    let inv = 1.0 / denominators[u];
                    let w = self.weights.row_mut(u);
                    for (wi, num) in w.iter_mut().zip(&numerators[u * dim..(u + 1) * dim]) {
                        *wi = num * inv;
                    }
                }
                // Units with no mass keep their previous weights.
            }
            self.invalidate_cache();
            report
                .epoch_mean_bmu_distance
                .push(qe_acc / data.rows() as f64);
        }
        Ok(report)
    }

    /// Mean distance from each sample to its BMU — the map's quantization
    /// error.
    ///
    /// # Errors
    ///
    /// [`SomError::EmptyInput`] on an empty matrix; shape errors per
    /// [`Som::bmu`].
    pub fn quantization_error(&self, data: &Matrix) -> Result<f64, SomError> {
        if data.rows() == 0 {
            return Err(SomError::EmptyInput);
        }
        let matches = self.bmu_batch(data)?;
        let acc: f64 = matches.iter().map(|m| m.distance).sum();
        Ok(acc / data.rows() as f64)
    }

    /// BMU index of every sample.
    ///
    /// # Errors
    ///
    /// Shape errors per [`Som::bmu`].
    pub fn assign(&self, data: &Matrix) -> Result<Vec<usize>, SomError> {
        Ok(self.bmu_batch(data)?.into_iter().map(|m| m.unit).collect())
    }

    /// Per-unit quantization statistics: `(qe_sum, hits)` for every unit,
    /// where `qe_sum` is the summed BMU distance of the samples mapped to
    /// that unit. The GHSOM growth criterion consumes exactly this.
    ///
    /// # Errors
    ///
    /// [`SomError::EmptyInput`] on an empty matrix; shape errors per
    /// [`Som::bmu`].
    pub fn unit_quantization(&self, data: &Matrix) -> Result<(Vec<f64>, Vec<usize>), SomError> {
        if data.rows() == 0 {
            return Err(SomError::EmptyInput);
        }
        let mut qe = vec![0.0; self.len()];
        let mut hits = vec![0usize; self.len()];
        for m in self.bmu_batch(data)? {
            qe[m.unit] += m.distance;
            hits[m.unit] += 1;
        }
        Ok((qe, hits))
    }

    /// Fraction of samples whose two best units are *not* lattice
    /// neighbors — the topographic error (0 = perfect topology
    /// preservation).
    ///
    /// # Errors
    ///
    /// [`SomError::EmptyInput`] on an empty matrix; single-unit maps return
    /// an [`SomError::InvalidParameter`] from [`Som::bmu_pair`].
    pub fn topographic_error(&self, data: &Matrix) -> Result<f64, SomError> {
        if data.rows() == 0 {
            return Err(SomError::EmptyInput);
        }
        let mut errors = 0usize;
        for (b1, b2) in self.bmu_pair_batch(data)? {
            if !self.topology.neighbors(b1.unit).contains(&b2.unit) {
                errors += 1;
            }
        }
        Ok(errors as f64 / data.rows() as f64)
    }

    /// U-matrix: for each unit, the mean feature-space distance to its
    /// lattice neighbors. High values mark cluster boundaries.
    pub fn umatrix(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| {
                let neighbors = self.topology.neighbors(i);
                let sum: f64 = neighbors
                    .iter()
                    .map(|&n| distance::euclidean(self.unit_weight(i), self.unit_weight(n)))
                    .sum();
                sum / neighbors.len() as f64
            })
            .collect()
    }

    /// Component plane: the value of input feature `feature` at every
    /// unit, in flat-index order. Visualizing one plane per feature shows
    /// *which* features organize which map regions.
    ///
    /// # Panics
    ///
    /// Panics if `feature >= dim()`.
    pub fn component_plane(&self, feature: usize) -> Vec<f64> {
        assert!(feature < self.dim(), "feature index out of bounds");
        self.weights.col(feature)
    }

    /// Number of samples mapped to each unit.
    ///
    /// # Errors
    ///
    /// Shape errors per [`Som::bmu`].
    pub fn hit_histogram(&self, data: &Matrix) -> Result<Vec<usize>, SomError> {
        let mut hits = vec![0usize; self.len()];
        for m in self.bmu_batch(data)? {
            hits[m.unit] += 1;
        }
        Ok(hits)
    }

    fn check_dim(&self, x: &[f64]) -> Result<(), SomError> {
        if x.len() != self.dim() {
            return Err(SomError::DimensionMismatch {
                expected: self.dim(),
                found: x.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four tight clusters at the corners of the unit square.
    fn four_clusters() -> Matrix {
        let centers = [[0.1, 0.1], [0.9, 0.1], [0.1, 0.9], [0.9, 0.9]];
        let mut rng = StdRng::seed_from_u64(99);
        let mut rows = Vec::new();
        for _ in 0..200 {
            let c = centers[rng.gen_range(0..4)];
            rows.push(vec![
                c[0] + (rng.gen::<f64>() - 0.5) * 0.05,
                c[1] + (rng.gen::<f64>() - 0.5) * 0.05,
            ]);
        }
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn constructors_validate() {
        assert!(Som::random_uniform(0, 2, 3, 0).is_err());
        assert!(Som::random_uniform(2, 2, 0, 0).is_err());
        assert!(Som::from_data_sample(2, 2, &four_clusters(), 0).is_ok());
        let wrong = Matrix::zeros(3, 2);
        assert!(Som::from_parts(
            GridTopology::rectangular(2, 2).unwrap(),
            wrong,
            Metric::Euclidean
        )
        .is_err());
    }

    #[test]
    fn bmu_finds_nearest_unit() {
        let weights = Matrix::from_rows(vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ])
        .unwrap();
        let som = Som::from_parts(
            GridTopology::rectangular(2, 2).unwrap(),
            weights,
            Metric::Euclidean,
        )
        .unwrap();
        assert_eq!(som.bmu(&[0.1, 0.1]).unwrap().unit, 0);
        assert_eq!(som.bmu(&[0.9, 0.95]).unwrap().unit, 3);
        let m = som.bmu(&[1.0, 0.0]).unwrap();
        assert_eq!(m.unit, 1);
        assert_eq!(m.distance, 0.0);
    }

    #[test]
    fn bmu_rejects_wrong_dim() {
        let som = Som::random_uniform(2, 2, 3, 0).unwrap();
        assert!(matches!(
            som.bmu(&[1.0]).unwrap_err(),
            SomError::DimensionMismatch {
                expected: 3,
                found: 1
            }
        ));
    }

    #[test]
    fn bmu_pair_orders_by_distance() {
        let som = Som::random_uniform(3, 3, 2, 5).unwrap();
        let (b1, b2) = som.bmu_pair(&[0.5, 0.5]).unwrap();
        assert!(b1.distance <= b2.distance);
        assert_ne!(b1.unit, b2.unit);
    }

    #[test]
    fn online_training_reduces_quantization_error() {
        let data = four_clusters();
        let mut som = Som::random_uniform(3, 3, 2, 17).unwrap();
        let before = som.quantization_error(&data).unwrap();
        let report = som.train_online(&data, &TrainParams::default()).unwrap();
        let after = som.quantization_error(&data).unwrap();
        assert!(after < before, "QE {before} -> {after}");
        assert!(after < 0.1, "converged QE should be small, got {after}");
        assert_eq!(report.epoch_mean_bmu_distance.len(), 10);
        // Epoch-wise proxy decreases overall.
        assert!(report.epoch_mean_bmu_distance[9] < report.epoch_mean_bmu_distance[0]);
    }

    #[test]
    fn batch_training_reduces_quantization_error() {
        let data = four_clusters();
        let mut som = Som::from_data_sample(3, 3, &data, 3).unwrap();
        let before = som.quantization_error(&data).unwrap();
        som.train_batch(&data, &TrainParams::default()).unwrap();
        let after = som.quantization_error(&data).unwrap();
        assert!(after <= before);
        assert!(after < 0.1, "batch converged QE {after}");
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let data = four_clusters();
        let mut a = Som::random_uniform(3, 3, 2, 1).unwrap();
        let mut b = Som::random_uniform(3, 3, 2, 1).unwrap();
        a.train_online(&data, &TrainParams::default()).unwrap();
        b.train_online(&data, &TrainParams::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pca_init_spans_data() {
        let data = four_clusters();
        let som = Som::pca_init(4, 4, &data, 11).unwrap();
        assert_eq!(som.len(), 16);
        // PCA init is deterministic given the seed.
        let som2 = Som::pca_init(4, 4, &data, 11).unwrap();
        assert_eq!(som, som2);
        // Initialized map already has moderate QE (no training yet).
        let qe = som.quantization_error(&data).unwrap();
        assert!(qe < 1.0);
    }

    #[test]
    fn unit_quantization_partitions_data() {
        let data = four_clusters();
        let mut som = Som::from_data_sample(2, 2, &data, 9).unwrap();
        som.train_online(&data, &TrainParams::default()).unwrap();
        let (qe, hits) = som.unit_quantization(&data).unwrap();
        assert_eq!(hits.iter().sum::<usize>(), data.rows());
        let total_qe: f64 = qe.iter().sum();
        let mqe = som.quantization_error(&data).unwrap();
        assert!((total_qe / data.rows() as f64 - mqe).abs() < 1e-9);
    }

    #[test]
    fn trained_map_has_low_topographic_error() {
        let data = four_clusters();
        let mut som = Som::from_data_sample(3, 3, &data, 2).unwrap();
        som.train_online(&data, &TrainParams::default()).unwrap();
        let te = som.topographic_error(&data).unwrap();
        assert!(te <= 0.35, "topographic error {te}");
    }

    #[test]
    fn umatrix_marks_cluster_boundaries() {
        let data = four_clusters();
        let mut som = Som::from_data_sample(4, 4, &data, 4).unwrap();
        som.train_online(&data, &TrainParams::default()).unwrap();
        let u = som.umatrix();
        assert_eq!(u.len(), 16);
        // With 4 well-separated clusters, boundary units exceed the
        // within-cluster distances considerably.
        let min = u.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = u.iter().cloned().fold(0.0, f64::max);
        assert!(max > 3.0 * min, "u-matrix flat: min {min} max {max}");
    }

    #[test]
    fn component_planes_expose_weight_columns() {
        let data = four_clusters();
        let mut som = Som::from_data_sample(3, 3, &data, 4).unwrap();
        som.train_online(&data, &TrainParams::default()).unwrap();
        let plane_x = som.component_plane(0);
        let plane_y = som.component_plane(1);
        assert_eq!(plane_x.len(), 9);
        for u in 0..som.len() {
            assert_eq!(plane_x[u], som.unit_weight(u)[0]);
            assert_eq!(plane_y[u], som.unit_weight(u)[1]);
        }
        // The trained planes span the data range (clusters at ~0.1/0.9).
        let min = plane_x.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = plane_x.iter().cloned().fold(0.0, f64::max);
        assert!(min < 0.3 && max > 0.7, "plane range [{min}, {max}]");
    }

    #[test]
    fn hit_histogram_sums_to_samples() {
        let data = four_clusters();
        let som = Som::from_data_sample(3, 3, &data, 6).unwrap();
        let hits = som.hit_histogram(&data).unwrap();
        assert_eq!(hits.iter().sum::<usize>(), 200);
    }

    #[test]
    fn empty_data_is_rejected() {
        let mut som = Som::random_uniform(2, 2, 2, 0).unwrap();
        let empty = Matrix::zeros(1, 2); // can't build a 0-row Matrix, so…
                                         // …exercise the error paths that need >0 rows via assign/bmu dims.
        assert!(som.quantization_error(&empty).is_ok());
        let params = TrainParams {
            epochs: 0,
            ..Default::default()
        };
        assert!(som.train_online(&empty, &params).is_err());
    }

    #[test]
    fn train_params_validation() {
        assert!(TrainParams::default().validate().is_ok());
        let bad = TrainParams {
            epochs: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad_lr = TrainParams {
            learning_rate: DecaySchedule::Linear {
                start: 0.1,
                end: 0.9,
            },
            ..Default::default()
        };
        assert!(bad_lr.validate().is_err());
    }

    #[test]
    fn batch_training_is_order_independent() {
        let data = four_clusters();
        // Reversed copy of the data.
        let mut rev_rows: Vec<Vec<f64>> = data.iter_rows().map(|r| r.to_vec()).collect();
        rev_rows.reverse();
        let reversed = Matrix::from_rows(rev_rows).unwrap();
        let params = TrainParams {
            epochs: 5,
            ..Default::default()
        };
        let mut a = Som::pca_init(3, 3, &data, 8).unwrap();
        let mut b = a.clone();
        a.train_batch(&data, &params).unwrap();
        b.train_batch(&reversed, &params).unwrap();
        for u in 0..a.len() {
            for (x, y) in a.unit_weight(u).iter().zip(b.unit_weight(u)) {
                assert!((x - y).abs() < 1e-9, "unit {u} differs");
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let som = Som::random_uniform(3, 2, 4, 13).unwrap();
        let json = serde_json::to_string(&som).unwrap();
        let back: Som = serde_json::from_str(&json).unwrap();
        assert_eq!(back, som);
    }

    #[test]
    fn bmu_batch_matches_bmu_and_scan() {
        let data = four_clusters();
        let som = Som::from_data_sample(3, 3, &data, 21).unwrap();
        let batch = som.bmu_batch(&data).unwrap();
        assert_eq!(batch.len(), data.rows());
        for (x, m) in data.iter_rows().zip(&batch) {
            let single = som.bmu(x).unwrap();
            assert_eq!(m.unit, single.unit);
            assert_eq!(m.distance.to_bits(), single.distance.to_bits());
            let naive = som.bmu_scan(x).unwrap();
            assert_eq!(m.unit, naive.unit);
            assert!((m.distance - naive.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn norm_cache_is_invalidated_by_training() {
        let data = four_clusters();
        let mut som = Som::from_data_sample(3, 3, &data, 23).unwrap();
        // Prime the Gram cache, then mutate weights through online
        // training: stale norms would corrupt every subsequent distance.
        let _ = som.bmu_batch(&data).unwrap();
        som.train_online(&data, &TrainParams::default()).unwrap();
        let warm = som.bmu_batch(&data).unwrap();
        let cold = Som::from_parts(*som.topology(), som.weights().clone(), som.metric())
            .unwrap()
            .bmu_batch(&data)
            .unwrap();
        assert_eq!(warm.len(), cold.len());
        for (w, c) in warm.iter().zip(&cold) {
            assert_eq!(w.unit, c.unit);
            assert_eq!(w.distance.to_bits(), c.distance.to_bits());
        }
    }

    #[test]
    fn serde_drops_the_cache_but_roundtrips_weights() {
        let data = four_clusters();
        let som = Som::from_data_sample(3, 3, &data, 29).unwrap();
        let _ = som.bmu_batch(&data).unwrap(); // primed cache serializes as null
        let json = serde_json::to_string(&som).unwrap();
        let back: Som = serde_json::from_str(&json).unwrap();
        assert_eq!(back, som);
        let a = som.bmu(&[0.4, 0.6]).unwrap();
        let b = back.bmu(&[0.4, 0.6]).unwrap();
        assert_eq!(a.unit, b.unit);
        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
    }

    #[test]
    fn metric_can_be_changed() {
        let mut som = Som::random_uniform(2, 2, 2, 0).unwrap();
        assert_eq!(som.metric(), Metric::Euclidean);
        som.set_metric(Metric::Manhattan);
        assert_eq!(som.metric(), Metric::Manhattan);
        som.bmu(&[0.5, 0.5]).unwrap();
    }
}
