//! Neighborhood kernels: how strongly a unit at lattice distance `d` from
//! the best-matching unit is pulled toward the input.

use serde::{Deserialize, Serialize};

/// The neighborhood function shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NeighborhoodKind {
    /// `exp(−d²/2σ²)` — smooth, the standard choice.
    #[default]
    Gaussian,
    /// `1` inside the radius, `0` outside — the original Kohonen bubble.
    Bubble,
    /// Difference-of-importance "Mexican hat": positive center, slightly
    /// negative surround, zero far away. The negative lobe sharpens cluster
    /// boundaries.
    MexicanHat,
}

impl NeighborhoodKind {
    /// Kernel value for lattice distance `d` at radius `sigma`.
    ///
    /// All kernels return `1.0` at `d = 0` and (except for the Mexican hat's
    /// small negative lobe) values in `[0, 1]`. A non-positive `sigma` is
    /// treated as "winner only": 1 at distance 0, 0 elsewhere.
    pub fn value(&self, d: f64, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return if d == 0.0 { 1.0 } else { 0.0 };
        }
        match self {
            NeighborhoodKind::Gaussian => (-d * d / (2.0 * sigma * sigma)).exp(),
            NeighborhoodKind::Bubble => {
                if d <= sigma {
                    1.0
                } else {
                    0.0
                }
            }
            NeighborhoodKind::MexicanHat => {
                let r = d * d / (sigma * sigma);
                (1.0 - r) * (-r / 2.0).exp()
            }
        }
    }

    /// Lattice distance beyond which the kernel is negligible (`< 1e-4`) —
    /// used to skip far units in the online update loop.
    pub fn cutoff(&self, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return 0.0;
        }
        match self {
            // exp(-d²/2σ²) < 1e-4  ⇔  d > σ·√(2·ln 1e4) ≈ 4.29 σ
            NeighborhoodKind::Gaussian => 4.3 * sigma,
            NeighborhoodKind::Bubble => sigma,
            // The hat's tail carries the extra (1 − d²/σ²) factor, so it
            // needs a wider cutoff than the plain Gaussian: at d = 5.1σ,
            // |(1 − r)·e^{−r/2}| ≈ 6e-5 with r = d²/σ².
            NeighborhoodKind::MexicanHat => 5.1 * sigma,
        }
    }

    /// All kernel variants, for sweeps and exhaustive tests.
    pub const ALL: [NeighborhoodKind; 3] = [
        NeighborhoodKind::Gaussian,
        NeighborhoodKind::Bubble,
        NeighborhoodKind::MexicanHat,
    ];
}

impl std::fmt::Display for NeighborhoodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            NeighborhoodKind::Gaussian => "gaussian",
            NeighborhoodKind::Bubble => "bubble",
            NeighborhoodKind::MexicanHat => "mexican-hat",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_peak_at_center() {
        for k in NeighborhoodKind::ALL {
            assert!((k.value(0.0, 2.0) - 1.0).abs() < 1e-12, "{k}");
        }
    }

    #[test]
    fn gaussian_decays_monotonically() {
        let k = NeighborhoodKind::Gaussian;
        let mut prev = k.value(0.0, 1.5);
        for i in 1..20 {
            let v = k.value(i as f64 * 0.5, 1.5);
            assert!(v < prev);
            assert!(v > 0.0);
            prev = v;
        }
    }

    #[test]
    fn gaussian_sigma_value() {
        // At d = σ the Gaussian is exp(-1/2).
        let v = NeighborhoodKind::Gaussian.value(2.0, 2.0);
        assert!((v - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn bubble_is_a_step() {
        let k = NeighborhoodKind::Bubble;
        assert_eq!(k.value(1.9, 2.0), 1.0);
        assert_eq!(k.value(2.0, 2.0), 1.0);
        assert_eq!(k.value(2.1, 2.0), 0.0);
    }

    #[test]
    fn mexican_hat_has_negative_lobe() {
        let k = NeighborhoodKind::MexicanHat;
        // At d = σ the hat crosses zero; beyond it the value is negative.
        assert!(k.value(1.0, 1.0).abs() < 1e-12);
        assert!(k.value(1.5, 1.0) < 0.0);
        // The negative lobe is small.
        assert!(k.value(1.5, 1.0) > -0.5);
    }

    #[test]
    fn zero_sigma_means_winner_only() {
        for k in NeighborhoodKind::ALL {
            assert_eq!(k.value(0.0, 0.0), 1.0, "{k}");
            assert_eq!(k.value(1.0, 0.0), 0.0, "{k}");
            assert_eq!(k.cutoff(0.0), 0.0);
        }
    }

    #[test]
    fn values_beyond_cutoff_are_negligible() {
        for k in NeighborhoodKind::ALL {
            for sigma in [0.5, 1.0, 3.0] {
                let d = k.cutoff(sigma) + 0.01;
                assert!(k.value(d, sigma).abs() < 1.1e-4, "{k} σ={sigma}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(NeighborhoodKind::Gaussian.to_string(), "gaussian");
        assert_eq!(NeighborhoodKind::MexicanHat.to_string(), "mexican-hat");
        assert_eq!(NeighborhoodKind::default(), NeighborhoodKind::Gaussian);
    }
}
