//! Majority-vote unit labeling.
//!
//! After unsupervised training, each unit is labelled with the majority
//! ground-truth class of the training samples mapped to it. Units that
//! attract no training samples stay unlabelled — at detection time such
//! units are treated as anomalous by convention (nothing normal ever
//! mapped there).
//!
//! The label type is generic so the same machinery calibrates against
//! concrete attack types, coarse categories, or plain booleans.

use std::hash::Hash;

use mathkit::Matrix;
use serde::{Deserialize, Serialize};

use crate::map::Som;
use crate::SomError;

/// Per-unit majority labels with hit counts and confidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitLabels<L> {
    labels: Vec<Option<L>>,
    confidence: Vec<f64>,
    hits: Vec<usize>,
}

impl<L: Clone + Eq + Hash> UnitLabels<L> {
    /// Calibrates unit labels by mapping every row of `data` to its BMU and
    /// tallying `labels`.
    ///
    /// # Errors
    ///
    /// [`SomError::DimensionMismatch`] when `labels.len() != data.rows()`
    /// or sample width differs from the codebook;
    /// [`SomError::EmptyInput`] when `data` has no rows.
    pub fn fit(som: &Som, data: &Matrix, labels: &[L]) -> Result<Self, SomError> {
        if data.rows() == 0 {
            return Err(SomError::EmptyInput);
        }
        if labels.len() != data.rows() {
            return Err(SomError::DimensionMismatch {
                expected: data.rows(),
                found: labels.len(),
            });
        }
        // Tallies are first-seen-ordered vectors rather than HashMaps so
        // that tie-breaking below is deterministic (first label reached in
        // data order wins a tie), independent of hasher state.
        let mut tallies: Vec<Vec<(L, usize)>> = vec![Vec::new(); som.len()];
        let mut hits = vec![0usize; som.len()];
        for (x, label) in data.iter_rows().zip(labels) {
            let unit = som.bmu(x)?.unit;
            match tallies[unit].iter_mut().find(|(l, _)| l == label) {
                Some((_, c)) => *c += 1,
                None => tallies[unit].push((label.clone(), 1)),
            }
            hits[unit] += 1;
        }
        let mut unit_labels = Vec::with_capacity(som.len());
        let mut confidence = Vec::with_capacity(som.len());
        for (tally, &h) in tallies.iter().zip(&hits) {
            if h == 0 {
                unit_labels.push(None);
                confidence.push(0.0);
            } else {
                let (label, count) = tally
                    .iter()
                    .rev() // keep the FIRST-seen maximum on ties
                    .max_by_key(|(_, c)| *c)
                    .map(|(l, c)| (l.clone(), *c))
                    .expect("non-zero hits imply a tally entry");
                unit_labels.push(Some(label));
                confidence.push(count as f64 / h as f64);
            }
        }
        Ok(UnitLabels {
            labels: unit_labels,
            confidence,
            hits,
        })
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when there are no units (cannot occur for fitted labels).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The majority label of unit `i`, or `None` for a dead unit.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> Option<&L> {
        self.labels[i].as_ref()
    }

    /// Majority-vote purity of unit `i` in `[0, 1]` (0 for dead units).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn confidence(&self, i: usize) -> f64 {
        self.confidence[i]
    }

    /// Training hits of unit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn hits(&self, i: usize) -> usize {
        self.hits[i]
    }

    /// Fraction of units that attracted at least one training sample.
    pub fn coverage(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        let live = self.labels.iter().filter(|l| l.is_some()).count();
        live as f64 / self.labels.len() as f64
    }

    /// Mean majority-vote purity over live units (1.0 = every unit pure).
    pub fn mean_purity(&self) -> f64 {
        let live: Vec<f64> = self
            .confidence
            .iter()
            .zip(&self.labels)
            .filter(|(_, l)| l.is_some())
            .map(|(&c, _)| c)
            .collect();
        if live.is_empty() {
            return 0.0;
        }
        live.iter().sum::<f64>() / live.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::TrainParams;

    /// Two tight clusters labelled "a" / "b".
    fn labelled_clusters() -> (Matrix, Vec<&'static str>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let jitter = (i % 10) as f64 * 0.002;
            if i % 2 == 0 {
                rows.push(vec![0.1 + jitter, 0.1]);
                labels.push("a");
            } else {
                rows.push(vec![0.9 - jitter, 0.9]);
                labels.push("b");
            }
        }
        (Matrix::from_rows(rows).unwrap(), labels)
    }

    fn trained_som(data: &Matrix) -> Som {
        let mut som = Som::from_data_sample(2, 2, data, 5).unwrap();
        som.train_online(data, &TrainParams::default()).unwrap();
        som
    }

    #[test]
    fn majority_labels_are_pure_for_separated_clusters() {
        let (data, labels) = labelled_clusters();
        let som = trained_som(&data);
        let ul = UnitLabels::fit(&som, &data, &labels).unwrap();
        assert_eq!(ul.len(), som.len());
        // Every live unit should be pure.
        for i in 0..ul.len() {
            if ul.label(i).is_some() {
                assert!(ul.confidence(i) > 0.99, "unit {i} impure");
            }
        }
        assert!(ul.mean_purity() > 0.99);
        // Both labels must be represented.
        let named: Vec<&&str> = (0..ul.len()).filter_map(|i| ul.label(i)).collect();
        assert!(named.contains(&&"a"));
        assert!(named.contains(&&"b"));
    }

    #[test]
    fn hits_sum_to_sample_count() {
        let (data, labels) = labelled_clusters();
        let som = trained_som(&data);
        let ul = UnitLabels::fit(&som, &data, &labels).unwrap();
        let total: usize = (0..ul.len()).map(|i| ul.hits(i)).sum();
        assert_eq!(total, data.rows());
    }

    #[test]
    fn dead_units_are_unlabelled() {
        let (data, labels) = labelled_clusters();
        // A big map on tiny data guarantees dead units.
        let som = Som::random_uniform(6, 6, 2, 3).unwrap();
        let ul = UnitLabels::fit(&som, &data, &labels).unwrap();
        assert!(ul.coverage() < 1.0);
        let dead = (0..ul.len()).find(|&i| ul.label(i).is_none()).unwrap();
        assert_eq!(ul.confidence(dead), 0.0);
        assert_eq!(ul.hits(dead), 0);
    }

    #[test]
    fn fit_rejects_mismatched_labels() {
        let (data, _) = labelled_clusters();
        let som = trained_som(&data);
        let short = vec!["a"; 3];
        assert!(matches!(
            UnitLabels::fit(&som, &data, &short).unwrap_err(),
            SomError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn works_with_non_str_labels() {
        let (data, _) = labelled_clusters();
        let som = trained_som(&data);
        let labels: Vec<u32> = (0..data.rows() as u32).map(|i| i % 2).collect();
        let ul = UnitLabels::fit(&som, &data, &labels).unwrap();
        assert!(ul.coverage() > 0.0);
    }

    #[test]
    fn mixed_unit_reports_fractional_confidence() {
        // One-unit map: every sample maps to it; labels are 2:1 mixed.
        let data = Matrix::from_rows(vec![vec![0.0], vec![0.1], vec![0.2]]).unwrap();
        let som = Som::random_uniform(1, 1, 1, 0).unwrap();
        let ul = UnitLabels::fit(&som, &data, &["x", "x", "y"]).unwrap();
        assert_eq!(ul.label(0), Some(&"x"));
        assert!((ul.confidence(0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ul.coverage(), 1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let (data, labels) = labelled_clusters();
        let som = trained_som(&data);
        let owned: Vec<String> = labels.iter().map(|s| s.to_string()).collect();
        let ul = UnitLabels::fit(&som, &data, &owned).unwrap();
        let json = serde_json::to_string(&ul).unwrap();
        let back: UnitLabels<String> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ul);
    }
}
