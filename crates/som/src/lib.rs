//! Kohonen self-organizing map substrate.
//!
//! Every node of a growing hierarchical SOM *is* a SOM, and the paper's
//! flat-SOM baseline is one too — this crate provides that shared machinery:
//!
//! * [`topology`] — rectangular/hexagonal grids with neighbor iteration and
//!   grid distances.
//! * [`neighborhood`] — Gaussian, bubble and Mexican-hat kernels.
//! * [`schedule`] — learning-rate/radius decay schedules (linear,
//!   exponential, inverse-time).
//! * [`map`] — the [`Som`] itself: codebook storage, best-matching-unit
//!   search, online (Kohonen) and batch training, quantization and
//!   topographic error, U-matrix, hit histograms.
//! * [`labeling`] — generic majority-vote unit labeling
//!   ([`labeling::UnitLabels`]), used to calibrate trained maps against
//!   training labels.
//!
//! # Example
//!
//! ```
//! use mathkit::Matrix;
//! use som::map::{Som, TrainParams};
//!
//! # fn main() -> Result<(), som::SomError> {
//! // Two well-separated clusters in 2-D.
//! let mut rows = Vec::new();
//! for i in 0..50 {
//!     let t = (i % 25) as f64 * 0.001;
//!     rows.push(if i < 25 { vec![t, t] } else { vec![1.0 - t, 1.0 + t] });
//! }
//! let data = Matrix::from_rows(rows)?;
//! let mut som = Som::from_data_sample(4, 4, &data, 7)?;
//! som.train_online(&data, &TrainParams::default())?;
//! // After training the map quantizes the data well.
//! assert!(som.quantization_error(&data)? < 0.35);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod labeling;
pub mod map;
pub mod neighborhood;
pub mod schedule;
pub mod topology;

pub use error::SomError;
pub use map::{BmuMatch, Som, TrainParams};
pub use neighborhood::NeighborhoodKind;
pub use schedule::DecaySchedule;
pub use topology::{GridLayout, GridTopology};
