//! Property-based tests for the SOM substrate.

use mathkit::Matrix;
use proptest::prelude::*;
use som::map::{Som, TrainParams};
use som::topology::{GridLayout, GridTopology};
use som::{DecaySchedule, NeighborhoodKind};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::from_flat(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen::<f64>()).collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Grid distance is a metric on the lattice: identity, symmetry, and
    /// triangle inequality (checked on sampled triples).
    #[test]
    fn grid_distance_is_a_metric(
        rows in 1usize..7, cols in 1usize..7,
        layout_idx in 0usize..2,
        a in 0usize..49, b in 0usize..49, c in 0usize..49
    ) {
        let layout = [GridLayout::Rectangular, GridLayout::Hexagonal][layout_idx];
        let g = GridTopology::new(rows, cols, layout).unwrap();
        let n = g.len();
        let (a, b, c) = (a % n, b % n, c % n);
        prop_assert_eq!(g.grid_distance(a, a), 0.0);
        prop_assert!((g.grid_distance(a, b) - g.grid_distance(b, a)).abs() < 1e-12);
        prop_assert!(
            g.grid_distance(a, b) <= g.grid_distance(a, c) + g.grid_distance(c, b) + 1e-9
        );
    }

    /// Neighbor lists are symmetric and each neighbor is at lattice
    /// distance exactly 1.
    #[test]
    fn neighbors_are_mutual_at_distance_one(
        rows in 1usize..7, cols in 1usize..7, layout_idx in 0usize..2
    ) {
        let layout = [GridLayout::Rectangular, GridLayout::Hexagonal][layout_idx];
        let g = GridTopology::new(rows, cols, layout).unwrap();
        for i in 0..g.len() {
            for n in g.neighbors(i) {
                prop_assert!(g.neighbors(n).contains(&i));
                prop_assert_eq!(g.grid_distance(i, n), 1.0);
            }
        }
    }

    /// The BMU really is the argmin over units for arbitrary inputs.
    #[test]
    fn bmu_is_globally_optimal(seed in 0u64..200, dim in 1usize..6) {
        let data = random_matrix(20, dim, seed);
        let som = Som::from_data_sample(3, 3, &data, seed).unwrap();
        let x: Vec<f64> = data.row(0).to_vec();
        let bmu = som.bmu(&x).unwrap();
        for u in 0..som.len() {
            let d = mathkit::distance::euclidean(&x, som.unit_weight(u));
            prop_assert!(bmu.distance <= d + 1e-12);
        }
    }

    /// Neighborhood kernels are bounded and peak at the center.
    #[test]
    fn kernels_are_bounded(d in 0.0f64..20.0, sigma in 0.01f64..10.0) {
        for k in NeighborhoodKind::ALL {
            let v = k.value(d, sigma);
            prop_assert!(v <= 1.0 + 1e-12, "{k} exceeded 1");
            prop_assert!(v >= -0.5, "{k} fell below the hat's lobe bound");
            prop_assert!(v <= k.value(0.0, sigma) + 1e-12, "{k} not peaked at 0");
        }
    }

    /// Schedules stay within [end, start] for any progress.
    #[test]
    fn schedules_stay_in_range(start in 0.01f64..2.0, frac in 0.01f64..1.0, t in -1.0f64..2.0) {
        let end = start * frac;
        for s in [
            DecaySchedule::Linear { start, end },
            DecaySchedule::Exponential { start, end },
        ] {
            let v = s.at(t);
            prop_assert!(v >= end - 1e-12 && v <= start + 1e-12, "{s:?} produced {v}");
        }
    }

    /// Online training never loses data: hit histograms always sum to the
    /// sample count, and weights remain finite.
    #[test]
    fn training_preserves_invariants(seed in 0u64..100) {
        let data = random_matrix(40, 3, seed);
        let mut som = Som::from_data_sample(3, 3, &data, seed).unwrap();
        som.train_online(
            &data,
            &TrainParams { epochs: 3, shuffle_seed: seed, ..Default::default() },
        )
        .unwrap();
        for u in 0..som.len() {
            prop_assert!(mathkit::vector::all_finite(som.unit_weight(u)));
        }
        let hits = som.hit_histogram(&data).unwrap();
        prop_assert_eq!(hits.iter().sum::<usize>(), 40);
        let (qe, uhits) = som.unit_quantization(&data).unwrap();
        prop_assert_eq!(uhits.iter().sum::<usize>(), 40);
        let total: f64 = qe.iter().sum();
        let mqe = som.quantization_error(&data).unwrap();
        prop_assert!((total / 40.0 - mqe).abs() < 1e-9);
    }

    /// Training with data inside the unit cube keeps weights inside a
    /// slightly inflated cube (convex updates cannot escape the hull by
    /// much, and sample-initialized weights start inside it).
    #[test]
    fn weights_stay_near_data_hull(seed in 0u64..100) {
        let data = random_matrix(30, 2, seed);
        let mut som = Som::from_data_sample(2, 3, &data, seed).unwrap();
        som.train_online(&data, &TrainParams::default()).unwrap();
        for u in 0..som.len() {
            for &w in som.unit_weight(u) {
                prop_assert!((-0.5..=1.5).contains(&w), "weight {w} escaped");
            }
        }
    }
}

/// Equivalence and cache-coherence properties of the batched BMU engine.
mod batched_bmu {
    use super::*;
    use mathkit::Metric;
    use som::topology::GridTopology;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// `bmu_batch` (Gram trick + chunked parallelism) returns exactly
        /// the unit indices of the naive scan and distances within 1e-9,
        /// for every metric. Sample counts straddle the parallel chunk
        /// size so both the single-chunk and multi-chunk code paths run.
        #[test]
        fn bmu_batch_matches_naive_scan(
            seed in 0u64..60,
            dim in 1usize..8,
            n in prop_oneof![Just(7usize), Just(100), Just(530)]
        ) {
            let data = random_matrix(n, dim, seed);
            let mut som = Som::from_data_sample(3, 3, &data, seed ^ 0xBEEF).unwrap();
            for metric in Metric::ALL {
                som.set_metric(metric);
                let batch = som.bmu_batch(&data).unwrap();
                prop_assert_eq!(batch.len(), n);
                for (x, m) in data.iter_rows().zip(&batch) {
                    let naive = som.bmu_scan(x).unwrap();
                    prop_assert_eq!(
                        m.unit, naive.unit,
                        "{metric}: batch unit {} != naive {}", m.unit, naive.unit
                    );
                    let tol = 1e-9 * naive.distance.abs().max(1.0);
                    prop_assert!(
                        (m.distance - naive.distance).abs() <= tol,
                        "{metric}: batch distance {} vs naive {}",
                        m.distance,
                        naive.distance
                    );
                    // The single-sample engine is bit-identical to batch.
                    let single = som.bmu(x).unwrap();
                    prop_assert_eq!(m.unit, single.unit);
                    prop_assert_eq!(m.distance.to_bits(), single.distance.to_bits());
                }
            }
        }

        /// Duplicate codebook rows: the batch engine resolves ties exactly
        /// like the naive scan — the lowest unit index wins.
        #[test]
        fn bmu_batch_breaks_ties_like_naive(seed in 0u64..60, dim in 1usize..6) {
            let data = random_matrix(12, dim, seed);
            // Codebook whose rows are all duplicated pairs of data rows.
            let mut rows = Vec::new();
            for i in 0..3 {
                rows.push(data.row(i).to_vec());
                rows.push(data.row(i).to_vec());
            }
            let weights = Matrix::from_rows(rows).unwrap();
            let som = Som::from_parts(
                GridTopology::rectangular(2, 3).unwrap(),
                weights,
                Metric::Euclidean,
            )
            .unwrap();
            let batch = som.bmu_batch(&data).unwrap();
            for (i, (x, m)) in data.iter_rows().zip(&batch).enumerate() {
                let naive = som.bmu_scan(x).unwrap();
                prop_assert_eq!(m.unit, naive.unit, "row {}", i);
                // Probing exactly a duplicated weight must land on the
                // lower of the two identical units with distance zero.
                if i < 3 {
                    prop_assert_eq!(m.unit, 2 * i);
                    prop_assert!(m.distance == 0.0, "distance {}", m.distance);
                }
            }
            let pairs = som.bmu_pair_batch(&data).unwrap();
            for (i, (first, second)) in pairs.iter().enumerate().take(3) {
                prop_assert_eq!(first.unit, 2 * i);
                prop_assert_eq!(second.unit, 2 * i + 1, "runner-up is the twin");
            }
        }

        /// The transposed-codebook/norm cache is refreshed after training
        /// mutates the weights: post-training batch results match a map
        /// rebuilt from the same weights with a cold cache.
        #[test]
        fn cached_norms_refresh_after_training(seed in 0u64..60) {
            let data = random_matrix(50, 3, seed);
            let mut som = Som::from_data_sample(3, 3, &data, seed).unwrap();
            // Prime the cache before training.
            let _ = som.bmu_batch(&data).unwrap();
            som.train_online(
                &data,
                &TrainParams { epochs: 2, shuffle_seed: seed, ..Default::default() },
            )
            .unwrap();
            let warm = som.bmu_batch(&data).unwrap();
            // A clone through parts shares the weights but starts cold.
            let cold_map = Som::from_parts(
                *som.topology(),
                som.weights().clone(),
                som.metric(),
            )
            .unwrap();
            let cold = cold_map.bmu_batch(&data).unwrap();
            for (w, c) in warm.iter().zip(&cold) {
                prop_assert_eq!(w.unit, c.unit);
                prop_assert_eq!(w.distance.to_bits(), c.distance.to_bits());
            }
            // And batch training refreshes per-epoch as well.
            let _ = som.bmu_batch(&data).unwrap(); // re-prime
            som.train_batch(
                &data,
                &TrainParams { epochs: 2, ..Default::default() },
            )
            .unwrap();
            let warm2 = som.bmu_batch(&data).unwrap();
            let cold2 = Som::from_parts(*som.topology(), som.weights().clone(), som.metric())
                .unwrap()
                .bmu_batch(&data)
                .unwrap();
            for (w, c) in warm2.iter().zip(&cold2) {
                prop_assert_eq!(w.unit, c.unit);
                prop_assert_eq!(w.distance.to_bits(), c.distance.to_bits());
            }
        }

        /// `bmu_pair_batch` agrees with the sequential two-best reference.
        #[test]
        fn bmu_pair_batch_matches_reference(seed in 0u64..40, dim in 1usize..6) {
            let data = random_matrix(40, dim, seed);
            let som = Som::from_data_sample(3, 3, &data, seed).unwrap();
            let pairs = som.bmu_pair_batch(&data).unwrap();
            for (x, (b1, b2)) in data.iter_rows().zip(&pairs) {
                prop_assert!(b1.distance <= b2.distance);
                prop_assert_ne!(b1.unit, b2.unit);
                // First of the pair is the BMU.
                let naive = som.bmu_scan(x).unwrap();
                prop_assert_eq!(b1.unit, naive.unit);
            }
        }
    }
}
