//! End-to-end engine benchmarks: the full record → vector → arena-walk →
//! verdict path behind the `Engine` facade, plus bundle load latency.
//!
//! Three groups:
//!
//! * `engine_throughput` — records/s through [`Engine::score_records`]
//!   (stateless batched verdicts) and [`Engine::observe_records`]
//!   (streaming with the adaptive threshold), on raw `ConnectionRecord`s
//!   — this includes the per-record feature transform the serving-plane
//!   benches (`serving.rs`) deliberately exclude.
//! * `engine_load` — bundle load latency: `cold` reads + decodes the
//!   whole artifact into an owned engine (`Engine::load`), `mmap_validate`
//!   maps the file and runs the zero-copy structural validation only
//!   (`MappedFile` + `SnapshotView::parse` — the page-cache-warm
//!   fast path a daemon uses to sanity-check artifacts), `mmap_load`
//!   decodes the engine out of the mapped bytes.
//! * `engine_single_record` — per-record latency of `score_record`
//!   (transform + one hierarchy traversal).
//!
//! Numbers land in `target/shim-criterion/engine.json`; the tracked
//! trajectory is `BENCH_3.json` at the repo root.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ghsom_core::GhsomConfig;
use ghsom_serve::{Engine, EngineConfig, MappedFile, SnapshotView};
use traffic::Dataset;

/// Records per streaming window (matches `serving.rs`).
const WINDOW: usize = 512;

fn fit_engine() -> (Engine, Dataset) {
    let (train, test) = traffic::synth::kdd_train_test(8_000, 6_000, 42).expect("data");
    let config = EngineConfig::default()
        .with_ghsom(
            GhsomConfig::default()
                .with_tau1(0.3)
                .with_tau2(0.03)
                .with_max_depth(4)
                .with_epochs(3, 3)
                .with_max_growth_rounds(16)
                .with_max_map_units(256)
                .with_max_total_units(2_000)
                .with_min_unit_samples(10)
                .with_seed(42),
        )
        .with_stream(4.0, 1_000);
    (Engine::fit(&config, &train).expect("engine fit"), test)
}

fn bench_throughput(c: &mut Criterion) {
    let (engine, test) = fit_engine();
    let records = test.records();

    let mut group = c.benchmark_group("engine_throughput");
    group.throughput(Throughput::Elements(records.len() as u64));
    std::env::set_var("GHSOM_THREADS", "1");
    group.bench_function("score_records", |b| {
        b.iter(|| black_box(engine.score_records(records).unwrap()));
    });
    group.bench_function("observe_records_512w", |b| {
        b.iter(|| {
            engine.reset_stream();
            let mut flagged = 0usize;
            for window in records.chunks(WINDOW) {
                flagged += engine
                    .observe_records(window)
                    .unwrap()
                    .iter()
                    .filter(|v| v.anomalous)
                    .count();
            }
            black_box(flagged)
        });
    });
    std::env::remove_var("GHSOM_THREADS");
    group.finish();
}

fn bench_load_latency(c: &mut Criterion) {
    let (engine, _) = fit_engine();
    let path = std::env::temp_dir().join("ghsom_engine_bench.bundle");
    engine.save(&path).expect("bundle save");
    let bundle_len = std::fs::metadata(&path).expect("metadata").len();

    let mut group = c.benchmark_group("engine_load");
    group.throughput(Throughput::Bytes(bundle_len));
    group.bench_function("cold_read_decode", |b| {
        b.iter(|| black_box(Engine::load(&path).unwrap().dim()));
    });
    group.bench_function("mmap_validate_zero_copy", |b| {
        b.iter(|| {
            let mapped = MappedFile::open(&path).unwrap();
            black_box(SnapshotView::parse(&mapped).unwrap().total_units())
        });
    });
    group.bench_function("mmap_decode_engine", |b| {
        b.iter(|| {
            let mapped = MappedFile::open(&path).unwrap();
            black_box(Engine::from_bytes(&mapped).unwrap().dim())
        });
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

fn bench_single_record(c: &mut Criterion) {
    let (engine, test) = fit_engine();
    let records = test.records();

    let mut group = c.benchmark_group("engine_single_record");
    group.throughput(Throughput::Elements(1));
    std::env::set_var("GHSOM_THREADS", "1");
    let mut i = 0usize;
    group.bench_function("score_record", |b| {
        b.iter(|| {
            i = (i + 1) % records.len();
            black_box(engine.score_record(&records[i]).unwrap())
        });
    });
    std::env::remove_var("GHSOM_THREADS");
    group.finish();
}

criterion_group!(
    benches,
    bench_throughput,
    bench_load_latency,
    bench_single_record
);
criterion_main!(benches);
