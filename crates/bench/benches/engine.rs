//! End-to-end engine benchmarks: the full record → vector → arena-walk →
//! verdict path behind the `Engine` facade, plus bundle load latency.
//!
//! Four groups:
//!
//! * `engine_transform` — records/s through the feature transform alone:
//!   `per_record` maps `KddPipeline::transform` (one `Vec` per record)
//!   over the slice, `batch` is `KddPipeline::transform_batch` into a
//!   reused `FeatureMatrix` (the zero-alloc columnar plane). The CI
//!   bench smoke job gates on `batch` never regressing below
//!   `per_record`.
//! * `engine_throughput` — records/s through [`Engine::score_records`]
//!   (stateless batched verdicts) and [`Engine::observe_records`]
//!   (streaming with the adaptive threshold), on raw `ConnectionRecord`s
//!   — the fused transform→walk serving path the serving-plane benches
//!   (`serving.rs`) deliberately exclude the transform from.
//! * `engine_load` — bundle load latency: `cold` reads + decodes the
//!   whole artifact into an owned engine (`Engine::load`), `mmap_validate`
//!   maps the file and runs the zero-copy structural validation only
//!   (`MappedFile` + `SnapshotView::parse` — the page-cache-warm
//!   fast path a daemon uses to sanity-check artifacts), `mmap_load`
//!   decodes the engine out of the mapped bytes.
//! * `engine_single_record` — per-record latency of `score_record`
//!   (thread-local scratch-row transform + one hierarchy traversal).
//!
//! Numbers land in one shim-criterion sidecar per group under the bench
//! package root (`crates/bench/target/shim-criterion/engine_*.json` —
//! the CI regression gate reads `engine_transform.json`); the tracked
//! trajectory is `BENCH_4.json` (end-to-end history in `BENCH_3.json`)
//! at the repo root.
//!
//! Set `ENGINE_BENCH_QUICK=1` to run on a small train/test split — the
//! CI smoke mode: fast enough for every push, still meaningful for the
//! batch-vs-per-record transform ratio the smoke job checks.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use featurize::FeatureMatrix;
use ghsom_bench::pin::PinnedThreads;
use ghsom_core::GhsomConfig;
use ghsom_serve::{Engine, EngineConfig, MappedFile, SnapshotView};
use traffic::Dataset;

/// Records per streaming window (matches `serving.rs`).
const WINDOW: usize = 512;

/// `true` when the CI smoke job asks for the quick, small-split mode.
fn quick_mode() -> bool {
    std::env::var("ENGINE_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn fit_engine() -> (Engine, Dataset) {
    let (n_train, n_test) = if quick_mode() {
        (1_500, 1_500)
    } else {
        (8_000, 6_000)
    };
    let (train, test) = traffic::synth::kdd_train_test(n_train, n_test, 42).expect("data");
    let config = EngineConfig::default()
        .with_ghsom(
            GhsomConfig::default()
                .with_tau1(0.3)
                .with_tau2(0.03)
                .with_max_depth(4)
                .with_epochs(3, 3)
                .with_max_growth_rounds(16)
                .with_max_map_units(256)
                .with_max_total_units(2_000)
                .with_min_unit_samples(10)
                .with_seed(42),
        )
        .with_stream(4.0, 1_000);
    (Engine::fit(&config, &train).expect("engine fit"), test)
}

fn bench_transform(c: &mut Criterion) {
    let (engine, test) = fit_engine();
    let records = test.records();
    let pipeline = engine.pipeline();

    let mut group = c.benchmark_group("engine_transform");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("per_record", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for rec in records {
                acc += pipeline.transform(rec).unwrap()[0];
            }
            black_box(acc)
        });
    });
    let mut buf = FeatureMatrix::new();
    group.bench_function("batch", |b| {
        b.iter(|| {
            pipeline.transform_batch(records, &mut buf).unwrap();
            black_box(buf.as_slice()[0])
        });
    });
    group.finish();
}

fn bench_throughput(c: &mut Criterion) {
    let (engine, test) = fit_engine();
    let records = test.records();

    let mut group = c.benchmark_group("engine_throughput");
    group.throughput(Throughput::Elements(records.len() as u64));
    let pin = PinnedThreads::single();
    group.bench_function("score_records", |b| {
        b.iter(|| black_box(engine.score_records(records).unwrap()));
    });
    group.bench_function("score_records_unfused_baseline", |b| {
        // The pre-fusion serving shape (PR 3): one `Vec` per record, an
        // owned `Matrix` materialization, then the owned-verdict path.
        // Kept as the within-host baseline the fused path is compared
        // against in BENCH_4.json.
        b.iter(|| {
            let rows: Vec<Vec<f64>> = records
                .iter()
                .map(|r| engine.pipeline().transform(r).unwrap())
                .collect();
            let m = mathkit::Matrix::from_rows(rows).unwrap();
            black_box(engine.detector().verdicts_all(&m).unwrap())
        });
    });
    group.bench_function("observe_records_512w", |b| {
        b.iter(|| {
            engine.reset_stream();
            let mut flagged = 0usize;
            for window in records.chunks(WINDOW) {
                flagged += engine
                    .observe_records(window)
                    .unwrap()
                    .iter()
                    .filter(|v| v.anomalous)
                    .count();
            }
            black_box(flagged)
        });
    });
    drop(pin);
    group.finish();
}

fn bench_load_latency(c: &mut Criterion) {
    let (engine, _) = fit_engine();
    let path = std::env::temp_dir().join("ghsom_engine_bench.bundle");
    engine.save(&path).expect("bundle save");
    let bundle_len = std::fs::metadata(&path).expect("metadata").len();

    let mut group = c.benchmark_group("engine_load");
    group.throughput(Throughput::Bytes(bundle_len));
    group.bench_function("cold_read_decode", |b| {
        b.iter(|| black_box(Engine::load(&path).unwrap().dim()));
    });
    group.bench_function("mmap_validate_zero_copy", |b| {
        b.iter(|| {
            let mapped = MappedFile::open(&path).unwrap();
            black_box(SnapshotView::parse(&mapped).unwrap().total_units())
        });
    });
    group.bench_function("mmap_decode_engine", |b| {
        b.iter(|| {
            let mapped = MappedFile::open(&path).unwrap();
            black_box(Engine::from_bytes(&mapped).unwrap().dim())
        });
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

fn bench_single_record(c: &mut Criterion) {
    let (engine, test) = fit_engine();
    let records = test.records();

    let mut group = c.benchmark_group("engine_single_record");
    group.throughput(Throughput::Elements(1));
    let _pin = PinnedThreads::single();
    let mut i = 0usize;
    group.bench_function("score_record", |b| {
        b.iter(|| {
            i = (i + 1) % records.len();
            black_box(engine.score_record(&records[i]).unwrap())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_transform,
    bench_throughput,
    bench_load_latency,
    bench_single_record
);
criterion_main!(benches);
