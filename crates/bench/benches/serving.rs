//! Serving-plane benchmarks: the compiled flat-arena walker vs the
//! training-time node tree, on the paths a deployed detector actually
//! runs.
//!
//! Three scenarios:
//!
//! * `batch_scoring` — the acceptance case: leaf-QE scoring of 10k
//!   dim-41 samples on a single 32×32 map (the BENCH_1 shape), tree
//!   (`GhsomModel::score_matrix`) vs compiled (`CompiledGhsom::score_all`)
//!   vs the zero-copy `SnapshotView`, all pinned to one thread. The
//!   acceptance bar is compiled ≥ 1.3× tree.
//! * `hierarchy_scoring` — the same comparison on a real trained
//!   hierarchy (many maps, frontier routing), where the tree walker also
//!   pays per-map submatrix materialization.
//! * `streaming` — end-to-end records/s through
//!   `StreamingDetector::observe_batch` over synthetic flow windows with
//!   the full hybrid detector (labels + QE threshold), tree vs compiled
//!   plane.
//!
//! Numbers land in `target/shim-criterion/serving.json`; the tracked
//! trajectory is `BENCH_2.json` at the repo root.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use detect::prelude::*;
use ghsom_bench::harness::{self, prepare, RunConfig};
use ghsom_bench::pin::PinnedThreads;
use ghsom_core::{GhsomConfig, GhsomModel, MapNode};
use ghsom_serve::{Compile, SnapshotView};
use mathkit::distance;
use som::map::Som;

/// Records per streaming window (a ~5 s flow window at typical rates).
const WINDOW: usize = 512;

/// Builds the acceptance-case model: one 32×32 map over the KDD-style
/// feature space, assembled directly so the shape is exact.
fn single_map_model(x: &mathkit::Matrix) -> GhsomModel {
    let som = Som::from_data_sample(32, 32, x, 9).unwrap();
    let units = som.len();
    let mean = x.col_means();
    let mqe0 = x
        .iter_rows()
        .map(|r| distance::euclidean(r, &mean))
        .sum::<f64>()
        / x.rows() as f64;
    let node = MapNode::new(
        som,
        1,
        None,
        vec![None; units],
        vec![0; units],
        vec![0.0; units],
    )
    .unwrap();
    GhsomModel::from_parts(GhsomConfig::default(), mean, mqe0, vec![node]).unwrap()
}

fn bench_batch_scoring(c: &mut Criterion) {
    let data = prepare(&RunConfig {
        n_train: 10_000,
        n_test: 10,
        seed: 5,
    })
    .expect("data generation");
    let x = &data.x_train;
    let model = single_map_model(x);
    let compiled = model.compile().unwrap();
    let snapshot = compiled.to_bytes();
    // Copy to a provably 8-byte-aligned position (a bare Vec<u8> has no
    // alignment guarantee).
    let mut aligned = vec![0u8; snapshot.len() + 8];
    let off = aligned.as_ptr().align_offset(8);
    aligned[off..off + snapshot.len()].copy_from_slice(&snapshot);
    let view = SnapshotView::parse(&aligned[off..off + snapshot.len()]).expect("valid snapshot");

    // Sanity: the three planes agree bit-for-bit before we time them.
    let tree_scores = model.score_matrix(x).unwrap();
    let flat_scores = compiled.score_all(x).unwrap();
    for (a, b) in tree_scores.iter().zip(&flat_scores) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    let mut group = c.benchmark_group("serving_batch_scoring");
    group.throughput(Throughput::Elements(x.rows() as u64));
    let _pin = PinnedThreads::single();
    group.bench_with_input(BenchmarkId::new("tree", "1024u"), &model, |b, model| {
        b.iter(|| black_box(model.score_matrix(x).unwrap()));
    });
    group.bench_with_input(
        BenchmarkId::new("compiled", "1024u"),
        &compiled,
        |b, compiled| {
            b.iter(|| black_box(compiled.score_all(x).unwrap()));
        },
    );
    group.bench_with_input(BenchmarkId::new("view", "1024u"), &view, |b, view| {
        b.iter(|| black_box(view.score_all(x).unwrap()));
    });
    group.finish();
}

fn bench_hierarchy_scoring(c: &mut Criterion) {
    let data = prepare(&RunConfig {
        n_train: 8_000,
        n_test: 6_000,
        seed: 42,
    })
    .expect("data generation");
    let model = harness::train_default_model(&data, 42).expect("training");
    let compiled = model.compile().unwrap();
    let x = &data.x_test;

    let mut group = c.benchmark_group("serving_hierarchy_scoring");
    group.throughput(Throughput::Elements(x.rows() as u64));
    let maps = format!("{}maps", model.map_count());
    let _pin = PinnedThreads::single();
    group.bench_with_input(BenchmarkId::new("tree", &maps), &model, |b, model| {
        b.iter(|| black_box(model.score_matrix(x).unwrap()));
    });
    group.bench_with_input(
        BenchmarkId::new("compiled", &maps),
        &compiled,
        |b, compiled| {
            b.iter(|| black_box(compiled.score_all(x).unwrap()));
        },
    );
    // The pre-fusion frontier walk (per-map pruned search on every
    // level): the within-host baseline the level-fused walk above is
    // gated against in CI.
    group.bench_with_input(
        BenchmarkId::new("compiled_unfused", &maps),
        &compiled,
        |b, compiled| {
            b.iter(|| black_box(compiled.score_all_view_unfused(x.view()).unwrap()));
        },
    );
    group.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let data = prepare(&RunConfig {
        n_train: 8_000,
        n_test: 6_000,
        seed: 42,
    })
    .expect("data generation");
    let model = harness::train_default_model(&data, 42).expect("training");
    let hybrid = HybridGhsomDetector::fit(
        model,
        &data.x_train,
        &data.train_categories,
        harness::CALIBRATION_PERCENTILE,
    )
    .expect("detector fit");
    let served = harness::compile_detector(&hybrid).expect("compile");
    let x = &data.x_test;
    let windows: Vec<mathkit::Matrix> = (0..x.rows())
        .step_by(WINDOW)
        .map(|start| {
            let end = (start + WINDOW).min(x.rows());
            mathkit::Matrix::from_rows((start..end).map(|i| x.row(i).to_vec()).collect()).unwrap()
        })
        .collect();

    let mut group = c.benchmark_group("serving_streaming");
    group.throughput(Throughput::Elements(x.rows() as u64));
    let _pin = PinnedThreads::single();
    group.bench_function("tree_observe_batch", |b| {
        let stream = StreamingDetector::new(hybrid.clone(), 4.0, 1_000);
        b.iter(|| {
            stream.reset();
            let mut flagged = 0usize;
            for w in &windows {
                flagged += stream
                    .observe_batch(w)
                    .unwrap()
                    .iter()
                    .filter(|v| v.anomalous)
                    .count();
            }
            black_box(flagged)
        });
    });
    group.bench_function("compiled_observe_batch", |b| {
        let stream = StreamingDetector::new(served.clone(), 4.0, 1_000);
        b.iter(|| {
            stream.reset();
            let mut flagged = 0usize;
            for w in &windows {
                flagged += stream
                    .observe_batch(w)
                    .unwrap()
                    .iter()
                    .filter(|v| v.anomalous)
                    .count();
            }
            black_box(flagged)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_scoring,
    bench_hierarchy_scoring,
    bench_streaming
);
criterion_main!(benches);
