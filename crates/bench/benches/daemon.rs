//! End-to-end daemon throughput (ISSUE 9): records/s through the real
//! TCP serving front-end — loopback socket, length-prefixed GHSD
//! frames, per-tenant admission, registry lookup per batch — against
//! the in-process `Engine::score_records` ceiling the protocol wraps.
//!
//! Three scenarios, all single-client and (on a 1-core host)
//! single-core:
//!
//! * `engine_direct` — `Engine::score_records` called in-process on the
//!   same batches: the no-protocol ceiling.
//! * `tcp_lock_step` — one 512-record batch per round trip, the
//!   latency-bound worst case for a feeder that never pipelines. The
//!   ISSUE 9 acceptance bar (≥200k records/s single-client) is measured
//!   here.
//! * `tcp_pipelined_x8` — eight batches in flight before draining,
//!   the shape a real feeder uses; amortizes the round trip.
//!
//! Numbers land in `target/shim-criterion/daemon.json`; the tracked
//! trajectory is `BENCH_6.json` at the repo root.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ghsom_core::GhsomConfig;
use ghsom_daemon::protocol::Response;
use ghsom_daemon::{Daemon, DaemonClient, DaemonConfig};
use ghsom_serve::{Engine, EngineConfig};
use traffic::ConnectionRecord;

/// Records per batch: a ~5 s flow window at typical rates, and big
/// enough that framing overhead is honest rather than dominant.
const BATCH: usize = 512;
/// Batches in flight for the pipelined case.
const PIPELINE: usize = 8;

fn trained_engine(seed: u64) -> (Engine, Vec<ConnectionRecord>) {
    let (train, test) = traffic::synth::kdd_train_test(4_000, 2_048, seed).unwrap();
    // A deployment-shaped detector: coarse breadth threshold and a
    // depth-2 hierarchy, the operating point ROADMAP targets for edge
    // serving (the deep-hierarchy regime is covered by shard_scaling).
    let config = EngineConfig::default()
        .with_ghsom(
            GhsomConfig::default()
                .with_tau1(0.5)
                .with_max_depth(2)
                .with_epochs(2, 2)
                .with_seed(seed),
        )
        .with_stream(4.0, 100);
    (
        Engine::fit(&config, &train).unwrap(),
        test.records().to_vec(),
    )
}

fn bench_daemon(c: &mut Criterion) {
    let (engine, records) = trained_engine(9);
    let batch = &records[..BATCH];

    // The daemon under test: default queue capacity (64) so the
    // pipelined case is never load-shed, ephemeral loopback ports.
    let spool = std::env::temp_dir().join(format!("ghsom_daemon_bench_{}", std::process::id()));
    std::fs::remove_dir_all(&spool).ok();
    std::fs::create_dir_all(&spool).unwrap();
    std::fs::write(spool.join("prod.bundle"), engine.to_bytes()).unwrap();
    let daemon =
        Daemon::start(DaemonConfig::new(&spool).with_poll_interval(Duration::from_millis(500)))
            .unwrap();
    let mut client = DaemonClient::connect(daemon.ingest_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Warm the tenant lane (worker thread, connection, caches).
    client.score("prod", batch).unwrap();

    let mut group = c.benchmark_group("daemon_tcp");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("engine_direct_512", |b| {
        b.iter(|| engine.score_records(black_box(batch)).unwrap())
    });
    group.bench_function("tcp_lock_step_512", |b| {
        b.iter(|| client.score("prod", black_box(batch)).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("daemon_tcp_pipelined");
    group.throughput(Throughput::Elements((PIPELINE * BATCH) as u64));
    group.bench_function("tcp_pipelined_x8_512", |b| {
        b.iter(|| {
            for _ in 0..PIPELINE {
                client.send_score_batch("prod", black_box(batch)).unwrap();
            }
            for _ in 0..PIPELINE {
                match client.recv_response().unwrap() {
                    Response::Verdicts { verdicts, .. } => {
                        assert_eq!(verdicts.len(), BATCH);
                    }
                    other => panic!("pipelined batch answered with {other:?}"),
                }
            }
        })
    });
    group.finish();

    daemon.shutdown();
    std::fs::remove_dir_all(&spool).ok();
}

criterion_group!(benches, bench_daemon);
criterion_main!(benches);
