//! E9/Table 5 (part): SOM training throughput — online vs batch, by map
//! size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ghsom_bench::harness::{prepare, RunConfig};
use som::map::{Som, TrainParams};

fn bench_som_training(c: &mut Criterion) {
    let data = prepare(&RunConfig {
        n_train: 1_000,
        n_test: 10,
        seed: 1,
    })
    .expect("data generation");
    let x = &data.x_train;

    let mut group = c.benchmark_group("som_training");
    group.sample_size(10);
    for side in [4usize, 8, 12] {
        group.bench_with_input(
            BenchmarkId::new("online", format!("{side}x{side}")),
            &side,
            |b, &side| {
                b.iter(|| {
                    let mut som = Som::from_data_sample(side, side, x, 7).unwrap();
                    som.train_online(
                        x,
                        &TrainParams {
                            epochs: 3,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    black_box(som)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch", format!("{side}x{side}")),
            &side,
            |b, &side| {
                b.iter(|| {
                    let mut som = Som::from_data_sample(side, side, x, 7).unwrap();
                    som.train_batch(
                        x,
                        &TrainParams {
                            epochs: 3,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    black_box(som)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_som_training);
criterion_main!(benches);
