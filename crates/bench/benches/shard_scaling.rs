//! The multi-core serving plane: `ShardedEngine` throughput at 1/2/4/8
//! shards, and the level-fused frontier walk on a deep hierarchy.
//!
//! Two groups:
//!
//! * `shard_scaling` — records/s through
//!   `ShardedEngine::score_records` on the acceptance corpus at shard
//!   widths 1, 2, 4 and 8, plus the streaming path (`observe_records`,
//!   whose threshold fold is sequential by design) at widths 1 and 4.
//!   The width-1 case runs inline on the calling thread — the
//!   single-core baseline every BENCH_*.json number is pinned to; wider
//!   cases spawn their own scoped workers (each internally capped to one
//!   kernel thread), so scaling is governed by the shard width alone,
//!   not `GHSOM_THREADS`. Per-core efficiency = speedup ÷ min(shards,
//!   cores); BENCH_5.json tracks both.
//! * `fused_hierarchy` — leaf scoring on a synthetic 49-map, depth-3
//!   hierarchy (one 4×4 root, a 3×3 child per root unit, two 2×2
//!   grandchildren per child map): exactly the many-tiny-sibling-maps
//!   regime where per-map norm-pruning has nothing to prune. `fused` is
//!   the level-fused frontier walk (all sibling maps of a depth searched
//!   as one padded slab), `unfused` the per-map pruned walk it replaced,
//!   `tree` the training-side hierarchy. The CI smoke gate requires
//!   `fused` to never regress below `unfused`.
//!
//! Set `SHARD_BENCH_QUICK=1` for the CI smoke mode (small train/test
//! split); full-size numbers are tracked in `BENCH_5.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ghsom_bench::harness::{prepare, RunConfig};
use ghsom_bench::pin::PinnedThreads;
use ghsom_core::{GhsomConfig, GhsomModel, MapNode};
use ghsom_serve::{Compile, Engine, EngineConfig, ShardedEngine};
use mathkit::{distance, Matrix};
use som::map::Som;
use traffic::Dataset;

/// `true` when the CI smoke job asks for the quick, small-split mode.
fn quick_mode() -> bool {
    std::env::var("SHARD_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// The acceptance-corpus engine (the `engine.rs` fixture, same seed and
/// GHSOM shape, so BENCH_4 and BENCH_5 numbers are host-comparable).
fn fit_engine() -> (Engine, Dataset) {
    let (n_train, n_test) = if quick_mode() {
        (1_500, 1_500)
    } else {
        (8_000, 6_000)
    };
    let (train, test) = traffic::synth::kdd_train_test(n_train, n_test, 42).expect("data");
    let config = EngineConfig::default()
        .with_ghsom(
            GhsomConfig::default()
                .with_tau1(0.3)
                .with_tau2(0.03)
                .with_max_depth(4)
                .with_epochs(3, 3)
                .with_max_growth_rounds(16)
                .with_max_map_units(256)
                .with_max_total_units(2_000)
                .with_min_unit_samples(10)
                .with_seed(42),
        )
        .with_stream(4.0, 1_000);
    (Engine::fit(&config, &train).expect("engine fit"), test)
}

/// Builds a deep many-small-maps hierarchy directly (no training): a 4×4
/// root where every unit expands into a 3×3 child map, and each child
/// map's first two units expand into 2×2 grandchildren — 49 maps, 288
/// units, depth 3, with 16 fusable siblings at depth 2 and 32 at depth 3.
fn deep_model(x: &Matrix) -> GhsomModel {
    let mean = x.col_means();
    let mqe0 = x
        .iter_rows()
        .map(|r| distance::euclidean(r, &mean))
        .sum::<f64>()
        / x.rows() as f64;

    // BFS layout: node 0 = root, nodes 1..=16 = children, 17.. = leaves.
    let mut nodes = Vec::with_capacity(49);
    let root_som = Som::from_data_sample(4, 4, x, 9).unwrap();
    let root_children: Vec<Option<usize>> = (1..=16).map(Some).collect();
    nodes.push(MapNode::new(root_som, 1, None, root_children, vec![0; 16], vec![0.0; 16]).unwrap());

    let mut next_leaf = 17usize;
    for parent_unit in 0..16 {
        let som = Som::from_data_sample(3, 3, x, 10 + parent_unit as u64).unwrap();
        let mut children = vec![None; 9];
        children[0] = Some(next_leaf);
        children[1] = Some(next_leaf + 1);
        next_leaf += 2;
        nodes.push(
            MapNode::new(
                som,
                2,
                Some((0, parent_unit)),
                children,
                vec![0; 9],
                vec![0.0; 9],
            )
            .unwrap(),
        );
    }
    for (i, parent_node) in (1..=16).flat_map(|n| [n, n]).enumerate() {
        let som = Som::from_data_sample(2, 2, x, 100 + i as u64).unwrap();
        nodes.push(
            MapNode::new(
                som,
                3,
                Some((parent_node, i % 2)),
                vec![None; 4],
                vec![0; 4],
                vec![0.0; 4],
            )
            .unwrap(),
        );
    }
    GhsomModel::from_parts(GhsomConfig::default(), mean, mqe0, nodes).unwrap()
}

fn bench_shard_scaling(c: &mut Criterion) {
    let (engine, test) = fit_engine();
    let records = test.records().to_vec();
    let sharded = ShardedEngine::new(engine, 1);

    // Sanity before timing: every width serves bit-identical verdicts.
    let baseline = sharded.score_records(&records).unwrap();
    for shards in [2usize, 4, 8] {
        let wide = ShardedEngine::from_shared(sharded.engine().clone(), shards);
        let got = wide.score_records(&records).unwrap();
        assert_eq!(got.len(), baseline.len());
        for (g, b) in got.iter().zip(&baseline) {
            assert_eq!(g.score.to_bits(), b.score.to_bits());
            assert_eq!(g.anomalous, b.anomalous);
        }
    }

    let mut group = c.benchmark_group("shard_scaling");
    group.throughput(Throughput::Elements(records.len() as u64));
    // Pin the *kernel* thread count so the width-1 inline case is the
    // single-core baseline; sharded widths spawn their own workers and
    // are unaffected (each worker is capped to one kernel thread).
    let _pin = PinnedThreads::single();
    for shards in [1usize, 2, 4, 8] {
        let view = ShardedEngine::from_shared(sharded.engine().clone(), shards);
        group.bench_with_input(
            BenchmarkId::new("score_records", shards),
            &view,
            |b, view| {
                b.iter(|| black_box(view.score_records(&records).unwrap()));
            },
        );
    }
    for shards in [1usize, 4] {
        let view = ShardedEngine::from_shared(sharded.engine().clone(), shards);
        group.bench_with_input(
            BenchmarkId::new("observe_records", shards),
            &view,
            |b, view| {
                b.iter(|| {
                    view.reset_stream();
                    black_box(view.observe_records(&records).unwrap())
                });
            },
        );
    }
    group.finish();
}

fn bench_fused_hierarchy(c: &mut Criterion) {
    let n_train = if quick_mode() { 2_000 } else { 8_000 };
    let data = prepare(&RunConfig {
        n_train,
        n_test: 10,
        seed: 5,
    })
    .expect("data generation");
    let x = &data.x_train;
    let model = deep_model(x);
    let compiled = model.compile().unwrap();

    // Sanity before timing: all three walks agree bit-for-bit.
    let tree = model.score_matrix(x).unwrap();
    let fused = compiled.score_all_view(x.view()).unwrap();
    let unfused = compiled.score_all_view_unfused(x.view()).unwrap();
    for ((a, b), c2) in tree.iter().zip(&fused).zip(&unfused) {
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(a.to_bits(), c2.to_bits());
    }

    let mut group = c.benchmark_group("fused_hierarchy");
    group.throughput(Throughput::Elements(x.rows() as u64));
    let _pin = PinnedThreads::single();
    group.bench_with_input(BenchmarkId::new("tree", "49maps"), &model, |b, model| {
        b.iter(|| black_box(model.score_matrix(x).unwrap()));
    });
    group.bench_with_input(
        BenchmarkId::new("fused", "49maps"),
        &compiled,
        |b, compiled| {
            b.iter(|| black_box(compiled.score_all_view(x.view()).unwrap()));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("unfused", "49maps"),
        &compiled,
        |b, compiled| {
            b.iter(|| black_box(compiled.score_all_view_unfused(x.view()).unwrap()));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_shard_scaling, bench_fused_hierarchy);
criterion_main!(benches);
