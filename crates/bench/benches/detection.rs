//! E9/Table 5 (part): per-record detection throughput of every detector.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use detect::prelude::*;
use ghsom_bench::harness::{fit_all_detectors, prepare, train_default_model, RunConfig};

fn bench_detection(c: &mut Criterion) {
    let data = prepare(&RunConfig {
        n_train: 2_000,
        n_test: 1_000,
        seed: 3,
    })
    .expect("data generation");
    let model = train_default_model(&data, 3).expect("training");
    let detectors = fit_all_detectors(&data, model).expect("detector fitting");

    let mut group = c.benchmark_group("detection_throughput");
    group.throughput(Throughput::Elements(data.x_test.rows() as u64));
    group.sample_size(10);

    let all: [(&str, &dyn Detector); 5] = [
        ("ghsom-hybrid", &detectors.ghsom),
        ("growing-grid", &detectors.growing),
        ("flat-som", &detectors.flat_som),
        ("kmeans", &detectors.kmeans),
        ("pca-residual", &detectors.pca),
    ];
    for (name, det) in all {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut flagged = 0usize;
                for x in data.x_test.iter_rows() {
                    if det.is_anomalous(x).unwrap() {
                        flagged += 1;
                    }
                }
                black_box(flagged)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
