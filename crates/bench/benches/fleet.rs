//! Fleet-plane throughput (ISSUE 10): what the distribution layer
//! costs on top of a single daemon — GHSF bundle replication into a
//! node spool, and GHSD record fan-out through the `FleetClient`
//! router — all on loopback, all single-core on a 1-core host.
//!
//! Scoring scenarios:
//!
//! * `engine_direct_512` — in-process `Engine::score_records`, the
//!   no-protocol ceiling (same shape as BENCH_6 for comparability).
//! * `fleet_single_node_512` — a `FleetClient` over ONE daemon: the
//!   router's bookkeeping (health check, chunk plan, ordered concat)
//!   on top of the plain `DaemonClient` lock-step path.
//! * `fleet_x3_1536` — a `FleetClient` over THREE daemons, 1536-record
//!   batches split into three contiguous 512-record chunks. The router
//!   is synchronous — chunks go out one at a time — so on a 1-core
//!   host this measures routing + protocol overhead, not scale-out;
//!   real speedup needs multi-core (or the pipelined feeder shape).
//!
//! Replication scenarios (standalone `FleetNode`, 4 MiB payload):
//!
//! * `replicate_4mib_changed` — full transfer: offer, 16 chunk frames,
//!   checksum verify on commit, atomic rename. Bytes/s is the honest
//!   deploy-speed number.
//! * `replicate_4mib_converged` — same bundle again: offer answered
//!   with `have == total`, commit, no payload bytes. This is the
//!   steady-state cost of one publisher poll per node per tenant.
//!
//! Numbers land in `target/shim-criterion/fleet_scoring.json`,
//! `fleet_scoring_x3.json` and `fleet_replication.json`; the tracked
//! trajectory is `BENCH_7.json` at the repo root. `FLEET_BENCH_QUICK=1`
//! shrinks the training corpus and the replicated bundle for CI smoke.

use std::net::SocketAddr;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ghsom_comms::{FleetNode, FleetNodeConfig, Replicator};
use ghsom_core::GhsomConfig;
use ghsom_daemon::{Daemon, DaemonConfig, FleetClient, FleetEndpoint};
use ghsom_serve::{Engine, EngineConfig};
use traffic::ConnectionRecord;

const BATCH: usize = 512;
const NODES: usize = 3;

fn quick() -> bool {
    std::env::var("FLEET_BENCH_QUICK").is_ok()
}

fn bundle_len() -> usize {
    if quick() {
        1 << 20
    } else {
        4 << 20
    }
}

fn trained_engine(seed: u64) -> (Engine, Vec<ConnectionRecord>) {
    let train_n = if quick() { 800 } else { 4_000 };
    let (train, test) = traffic::synth::kdd_train_test(train_n, 2_048, seed).unwrap();
    let config = EngineConfig::default()
        .with_ghsom(
            GhsomConfig::default()
                .with_tau1(0.5)
                .with_max_depth(2)
                .with_epochs(2, 2)
                .with_seed(seed),
        )
        .with_stream(4.0, 100);
    (
        Engine::fit(&config, &train).unwrap(),
        test.records().to_vec(),
    )
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ghsom_fleet_bench_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_node(spool: &std::path::Path, bundle: &[u8]) -> Daemon {
    std::fs::write(spool.join("prod.bundle"), bundle).unwrap();
    Daemon::start(DaemonConfig::new(spool).with_poll_interval(Duration::from_millis(500))).unwrap()
}

fn bench_fleet_scoring(c: &mut Criterion) {
    let (engine, records) = trained_engine(9);
    let bundle = engine.to_bytes();
    let batch = &records[..BATCH];
    // 1536 records: three full 512-record chunks across three nodes.
    let mut wide = records.clone();
    while wide.len() < NODES * BATCH {
        wide.extend_from_slice(&records);
    }
    let wide = &wide[..NODES * BATCH];

    let spools: Vec<_> = (0..NODES).map(|i| scratch(&format!("node{i}"))).collect();
    let daemons: Vec<_> = spools.iter().map(|s| start_node(s, &bundle)).collect();
    let endpoints: Vec<FleetEndpoint> = daemons
        .iter()
        .map(|d| FleetEndpoint::ingest_only(d.ingest_addr()))
        .collect();

    let mut single = FleetClient::new(endpoints[..1].to_vec()).unwrap();
    let mut fleet = FleetClient::new(endpoints).unwrap();
    // Warm every tenant lane (worker thread, connection, caches).
    single.score("prod", batch).unwrap();
    fleet.score("prod", wide).unwrap();

    let mut group = c.benchmark_group("fleet_scoring");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("engine_direct_512", |b| {
        b.iter(|| engine.score_records(black_box(batch)).unwrap())
    });
    group.bench_function("fleet_single_node_512", |b| {
        b.iter(|| single.score("prod", black_box(batch)).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("fleet_scoring_x3");
    group.throughput(Throughput::Elements((NODES * BATCH) as u64));
    group.bench_function("fleet_x3_1536", |b| {
        b.iter(|| {
            let verdicts = fleet.score("prod", black_box(wide)).unwrap();
            assert_eq!(verdicts.len(), NODES * BATCH);
        })
    });
    group.finish();

    for daemon in daemons {
        daemon.shutdown();
    }
    for s in &spools {
        std::fs::remove_dir_all(s).ok();
    }
}

fn bench_fleet_replication(c: &mut Criterion) {
    let spool = scratch("repl");
    let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let mut node = FleetNode::start(
        FleetNodeConfig::new(addr, &spool),
        std::sync::Arc::new(|_: &str| None),
        std::sync::Arc::new(|_: &ghsom_comms::NodeEvent| {}),
    )
    .unwrap();
    let node_addr = node.local_addr();

    // Deterministic compressible-but-not-constant payload.
    let len = bundle_len();
    let mut bundle: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
    let mut rep = Replicator::connect(node_addr).unwrap();

    let mut group = c.benchmark_group("fleet_replication");
    group.throughput(Throughput::Bytes(len as u64));
    let mut round: u8 = 0;
    group.bench_function("replicate_4mib_changed", |b| {
        b.iter(|| {
            // Mutate one byte so every iteration is a full transfer.
            round = round.wrapping_add(1);
            bundle[0] = round;
            let report = rep.replicate("prod", black_box(&bundle)).unwrap();
            assert!(!report.already_current);
            assert_eq!(report.bytes_sent, len as u64);
        })
    });
    group.bench_function("replicate_4mib_converged", |b| {
        b.iter(|| {
            let report = rep.replicate("prod", black_box(&bundle)).unwrap();
            assert!(report.already_current);
            assert_eq!(report.bytes_sent, 0);
        })
    });
    group.finish();

    drop(rep);
    node.stop_and_join();
    std::fs::remove_dir_all(&spool).ok();
}

criterion_group!(benches, bench_fleet_scoring, bench_fleet_replication);
criterion_main!(benches);
