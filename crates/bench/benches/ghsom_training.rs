//! E2/Table 2 cost side: GHSOM end-to-end training time as a function of
//! the breadth/depth thresholds and of the record count.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ghsom_bench::harness::{experiment_config, prepare, RunConfig};
use ghsom_core::GhsomModel;

fn bench_ghsom_training(c: &mut Criterion) {
    let data = prepare(&RunConfig {
        n_train: 2_000,
        n_test: 10,
        seed: 2,
    })
    .expect("data generation");

    let mut group = c.benchmark_group("ghsom_training");
    group.sample_size(10);

    for (tau1, tau2) in [(0.6, 0.1), (0.3, 0.03), (0.1, 0.01)] {
        group.bench_with_input(
            BenchmarkId::new("tau", format!("t1={tau1},t2={tau2}")),
            &(tau1, tau2),
            |b, &(tau1, tau2)| {
                let config = experiment_config(tau1, tau2, 42);
                b.iter(|| black_box(GhsomModel::train(&config, &data.x_train).unwrap()));
            },
        );
    }

    // Scaling in record count at the default taus.
    for n in [500usize, 1_000, 2_000] {
        let sub = mathkit::Matrix::from_rows(
            data.x_train
                .iter_rows()
                .take(n)
                .map(|r| r.to_vec())
                .collect(),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("records", n), &n, |b, _| {
            let config = experiment_config(0.3, 0.03, 42);
            b.iter(|| black_box(GhsomModel::train(&config, &sub).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ghsom_training);
criterion_main!(benches);
