//! Best-matching-unit search scaling: cost per lookup as the codebook
//! grows (the inner loop of both training and detection).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ghsom_bench::harness::{prepare, RunConfig};
use som::map::Som;

fn bench_bmu_scaling(c: &mut Criterion) {
    let data = prepare(&RunConfig {
        n_train: 512,
        n_test: 10,
        seed: 5,
    })
    .expect("data generation");
    let x = &data.x_train;

    let mut group = c.benchmark_group("bmu_scaling");
    group.throughput(Throughput::Elements(x.rows() as u64));
    for side in [4usize, 8, 16, 32] {
        let som = Som::from_data_sample(side, side, x, 9).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}u", side * side)),
            &som,
            |b, som| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for row in x.iter_rows() {
                        acc += som.bmu(row).unwrap().distance;
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bmu_scaling);
criterion_main!(benches);
