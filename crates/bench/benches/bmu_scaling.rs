//! Best-matching-unit search scaling: cost per lookup as the codebook
//! grows (the inner loop of both training and detection).
//!
//! Four engines are compared on identical data and codebooks:
//!
//! * `naive`    — the seed implementation, reproduced verbatim: one
//!   enum-dispatched `Metric::eval` per codebook row, with the original
//!   sequential-reduction distance kernel (a loop-carried FP dependency
//!   chain, so it cannot vectorize).
//! * `scan`     — [`Som::bmu_scan`]: the same per-row loop over today's
//!   chunked, four-accumulator distance kernels (satellite fix: metric
//!   resolved once, kernels vectorizable).
//! * `batch`    — the Gram-trick batched engine ([`Som::bmu_batch`]),
//!   pinned to one thread via `GHSOM_THREADS=1`.
//! * `parallel` — the same batched engine with the thread cap lifted
//!   (identical to `batch` on single-core machines).
//!
//! The acceptance bar for the batched engine is ≥ 5× over the naive loop
//! on a 32×32 map at dim 41 with 10k samples, single-threaded. Numbers
//! land in `target/shim-criterion/bmu_scaling.json` (see `BENCH_1.json`
//! for the tracked trajectory).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ghsom_bench::harness::{prepare, RunConfig};
use ghsom_bench::pin::PinnedThreads;
use mathkit::Metric;
use som::map::Som;

/// The seed's distance kernel: iterator map + sequential `sum()`, whose
/// fixed reduction order forbids vectorization. Kept verbatim as the
/// benchmark baseline.
fn seed_sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// The seed's BMU loop: per-row metric dispatch over the seed kernel.
fn seed_bmu(som: &Som, x: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for u in 0..som.len() {
        let w = som.unit_weight(u);
        let d = match som.metric() {
            Metric::Euclidean => seed_sq_euclidean(x, w).sqrt(),
            _ => unreachable!("benchmark maps use the Euclidean metric"),
        };
        if d < best.1 {
            best = (u, d);
        }
    }
    best
}

fn bench_bmu_scaling(c: &mut Criterion) {
    let data = prepare(&RunConfig {
        n_train: 10_000,
        n_test: 10,
        seed: 5,
    })
    .expect("data generation");
    let x = &data.x_train;

    let mut group = c.benchmark_group("bmu_scaling");
    group.throughput(Throughput::Elements(x.rows() as u64));
    for side in [4usize, 8, 16, 32] {
        let som = Som::from_data_sample(side, side, x, 9).unwrap();
        let units = side * side;

        group.bench_with_input(
            BenchmarkId::new("naive", format!("{units}u")),
            &som,
            |b, som| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for row in x.iter_rows() {
                        acc += seed_bmu(som, row).1;
                    }
                    black_box(acc)
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("scan", format!("{units}u")),
            &som,
            |b, som| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for row in x.iter_rows() {
                        acc += som.bmu_scan(row).unwrap().distance;
                    }
                    black_box(acc)
                });
            },
        );

        {
            let _pin = PinnedThreads::single();
            group.bench_with_input(
                BenchmarkId::new("batch", format!("{units}u")),
                &som,
                |b, som| {
                    b.iter(|| {
                        let matches = som.bmu_batch(x).unwrap();
                        let acc: f64 = matches.iter().map(|m| m.distance).sum();
                        black_box(acc)
                    });
                },
            );
        }

        group.bench_with_input(
            BenchmarkId::new("parallel", format!("{units}u")),
            &som,
            |b, som| {
                b.iter(|| {
                    let matches = som.bmu_batch(x).unwrap();
                    let acc: f64 = matches.iter().map(|m| m.distance).sum();
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bmu_scaling);
criterion_main!(benches);
