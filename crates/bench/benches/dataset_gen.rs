//! E1 cost side: synthetic record generation, CSV round-trip, raw-flow
//! simulation and window aggregation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use traffic::flows::{AttackEpisode, EpisodeKind, FlowSimConfig, FlowSimulator};
use traffic::synth::{MixSpec, TrafficGenerator};
use traffic::window::derive_dataset;

fn bench_dataset_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_gen");
    group.throughput(Throughput::Elements(5_000));
    group.bench_function("synth_records_5k", |b| {
        b.iter(|| {
            let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), 1).unwrap();
            black_box(gen.generate(5_000))
        });
    });

    group.bench_function("csv_roundtrip_5k", |b| {
        let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), 2).unwrap();
        let ds = gen.generate(5_000);
        b.iter(|| {
            let mut buf = Vec::new();
            traffic::csv::write_dataset(&ds, &mut buf).unwrap();
            black_box(traffic::csv::read_dataset(buf.as_slice()).unwrap())
        });
    });

    let sim_config = FlowSimConfig {
        duration_secs: 60.0,
        background_rate: 60.0,
        server_count: 32,
        client_count: 128,
        episodes: vec![AttackEpisode {
            kind: EpisodeKind::SynFlood {
                target: 0xC0A8_0001,
            },
            start: 20.0,
            duration: 20.0,
            rate: 100.0,
        }],
    };
    group.bench_function("flow_simulation_60s", |b| {
        b.iter(|| {
            let mut sim = FlowSimulator::new(sim_config.clone(), 3);
            black_box(sim.generate())
        });
    });

    let mut sim = FlowSimulator::new(sim_config, 4);
    let flows = sim.generate();
    group.throughput(Throughput::Elements(flows.len() as u64));
    group.bench_function("window_aggregation", |b| {
        b.iter(|| black_box(derive_dataset(&flows)));
    });
    group.finish();
}

criterion_group!(benches, bench_dataset_gen);
criterion_main!(benches);
