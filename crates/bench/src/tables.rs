//! Tables 1–4 of the reconstructed evaluation.

use evalkit::report::{cell, Table};
use traffic::AttackCategory;

use crate::harness::{
    evaluate_binary, evaluate_per_category, experiment_config, fit_all_detectors, prepare,
    ExperimentData, FittedDetectors, RunConfig,
};

/// Table 1 — dataset composition: record counts per class for train and
/// test (test includes attack types unseen in training).
pub fn table1(data: &ExperimentData) -> Table {
    let mut table = Table::new(vec![
        "class",
        "category",
        "train",
        "test",
        "unseen-in-train",
    ]);
    let train_counts = data.train.counts_by_type();
    let test_counts = data.test.counts_by_type();
    let mut classes: Vec<traffic::AttackType> = train_counts
        .keys()
        .chain(test_counts.keys())
        .copied()
        .collect();
    classes.sort();
    classes.dedup();
    for ty in classes {
        table.add_row(vec![
            ty.to_string(),
            ty.category().to_string(),
            train_counts.get(&ty).copied().unwrap_or(0).to_string(),
            test_counts.get(&ty).copied().unwrap_or(0).to_string(),
            if ty.is_test_only() { "yes" } else { "" }.to_string(),
        ]);
    }
    table.add_row(vec![
        "TOTAL".into(),
        String::new(),
        data.train.len().to_string(),
        data.test.len().to_string(),
        String::new(),
    ]);
    table
}

/// Table 2 — GHSOM topology vs (τ₁, τ₂): maps, units, depth, layer
/// breakdown and wall-clock training time.
///
/// # Errors
///
/// Training errors propagate.
pub fn table2(data: &ExperimentData) -> Result<Table, Box<dyn std::error::Error>> {
    let mut table = Table::new(vec![
        "tau1",
        "tau2",
        "maps",
        "units",
        "depth",
        "layer breakdown",
        "train (s)",
    ]);
    for &tau1 in &[0.6, 0.3, 0.1] {
        for &tau2 in &[0.1, 0.03, 0.01] {
            let config = experiment_config(tau1, tau2, 42);
            let start = std::time::Instant::now();
            let model = ghsom_core::GhsomModel::train(&config, &data.x_train)?;
            let elapsed = start.elapsed().as_secs_f64();
            let stats = model.topology_stats();
            let breakdown = stats
                .per_layer
                .iter()
                .map(|l| format!("L{}:{}m/{}u", l.depth, l.maps, l.units))
                .collect::<Vec<_>>()
                .join(" ");
            table.add_row(vec![
                cell(tau1),
                cell(tau2),
                stats.maps.to_string(),
                stats.total_units.to_string(),
                stats.max_depth.to_string(),
                breakdown,
                cell(elapsed),
            ]);
        }
    }
    Ok(table)
}

/// Table 3 — overall detection comparison: DR, FPR, precision, F1,
/// accuracy for every detector on the held-out test set.
///
/// # Errors
///
/// Evaluation errors propagate.
pub fn table3(
    data: &ExperimentData,
    detectors: &FittedDetectors,
) -> Result<Table, Box<dyn std::error::Error>> {
    let mut table = Table::new(vec!["detector", "DR", "FPR", "precision", "F1", "accuracy"]);
    let all: [&dyn detect::Detector; 5] = [
        &detectors.ghsom,
        &detectors.growing,
        &detectors.flat_som,
        &detectors.kmeans,
        &detectors.pca,
    ];
    for det in all {
        let m = evaluate_binary(det, data)?;
        table.add_row(vec![
            det.name().to_string(),
            cell(m.detection_rate()),
            cell(m.false_positive_rate()),
            cell(m.precision()),
            cell(m.f1()),
            cell(m.accuracy()),
        ]);
    }
    Ok(table)
}

/// Table 4 — per-category detection rate (fraction flagged) per detector;
/// the `normal` column is the false-positive rate.
///
/// # Errors
///
/// Evaluation errors propagate.
pub fn table4(
    data: &ExperimentData,
    detectors: &FittedDetectors,
) -> Result<Table, Box<dyn std::error::Error>> {
    let mut headers = vec!["detector".to_string()];
    for cat in AttackCategory::ALL {
        let label = if cat == AttackCategory::Normal {
            "normal (FPR)".to_string()
        } else {
            cat.to_string()
        };
        headers.push(label);
    }
    let mut table = Table::new(headers);
    let all: [&dyn detect::Detector; 5] = [
        &detectors.ghsom,
        &detectors.growing,
        &detectors.flat_som,
        &detectors.kmeans,
        &detectors.pca,
    ];
    for det in all {
        let rows = evaluate_per_category(det, data)?;
        let mut cells = vec![det.name().to_string()];
        for (_, rate, total) in rows {
            cells.push(if total == 0 {
                "n/a".to_string()
            } else {
                cell(rate)
            });
        }
        table.add_row(cells);
    }
    Ok(table)
}

/// Table 6 — fine-grained attack-type classification: per-type recall of
/// the typed GHSOM classifier on the test set (types with ≥ 10 test
/// records).
///
/// # Errors
///
/// Fitting/evaluation errors propagate.
pub fn table6(
    data: &ExperimentData,
    model: ghsom_core::GhsomModel,
) -> Result<Table, Box<dyn std::error::Error>> {
    use detect::typed::TypedGhsomClassifier;
    let train_types: Vec<traffic::AttackType> = data.train.iter().map(|r| r.label).collect();
    let clf = TypedGhsomClassifier::fit(model, &data.x_train, &train_types)?;

    let mut table = Table::new(vec![
        "type",
        "category",
        "test records",
        "correct",
        "recall",
        "seen in train",
    ]);
    let test_counts = data.test.counts_by_type();
    for (&ty, &total) in &test_counts {
        if total < 10 {
            continue;
        }
        let mut correct = 0usize;
        for (x, rec) in data.x_test.iter_rows().zip(data.test.iter()) {
            if rec.label == ty && clf.classify(x)? == Some(ty) {
                correct += 1;
            }
        }
        table.add_row(vec![
            ty.to_string(),
            ty.category().to_string(),
            total.to_string(),
            correct.to_string(),
            cell(correct as f64 / total as f64),
            if ty.is_test_only() { "no" } else { "yes" }.to_string(),
        ]);
    }
    Ok(table)
}

/// Runs tables 1–4 end to end with the given run configuration (the path
/// the repro binary drives).
///
/// # Errors
///
/// All preparation/training/evaluation errors propagate.
pub fn run_all(run: &RunConfig) -> Result<Vec<(String, Table)>, Box<dyn std::error::Error>> {
    let data = prepare(run)?;
    let model = crate::harness::train_default_model(&data, run.seed)?;
    let detectors = fit_all_detectors(&data, model)?;
    Ok(vec![
        ("Table 1 — dataset composition".into(), table1(&data)),
        (
            "Table 2 — GHSOM topology vs (tau1, tau2)".into(),
            table2(&data)?,
        ),
        (
            "Table 3 — overall detection comparison".into(),
            table3(&data, &detectors)?,
        ),
        (
            "Table 4 — per-category detection rate".into(),
            table4(&data, &detectors)?,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_data() -> ExperimentData {
        prepare(&RunConfig {
            n_train: 500,
            n_test: 300,
            seed: 11,
        })
        .unwrap()
    }

    #[test]
    fn table1_totals_match_dataset() {
        let data = small_data();
        let t = table1(&data);
        let text = t.to_string();
        assert!(text.contains("TOTAL"));
        assert!(text.contains("500"));
        assert!(text.contains("300"));
        assert!(text.contains("smurf"));
    }

    #[test]
    fn table3_has_five_detectors() {
        let data = small_data();
        let model = crate::harness::train_default_model(&data, 1).unwrap();
        let detectors = fit_all_detectors(&data, model).unwrap();
        let t = table3(&data, &detectors).unwrap();
        assert_eq!(t.len(), 5);
        let text = t.to_string();
        for name in [
            "ghsom-hybrid",
            "growing-grid",
            "flat-som",
            "kmeans",
            "pca-residual",
        ] {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn table6_reports_dominant_types() {
        let data = small_data();
        let model = crate::harness::train_default_model(&data, 1).unwrap();
        let t = table6(&data, model).unwrap();
        let text = t.to_string();
        assert!(text.contains("smurf"));
        assert!(text.contains("neptune"));
        assert!(text.contains("normal"));
    }

    #[test]
    fn table4_has_category_columns() {
        let data = small_data();
        let model = crate::harness::train_default_model(&data, 1).unwrap();
        let detectors = fit_all_detectors(&data, model).unwrap();
        let t = table4(&data, &detectors).unwrap();
        let text = t.to_string();
        assert!(text.contains("normal (FPR)"));
        assert!(text.contains("dos"));
        assert!(text.contains("u2r"));
    }
}
