//! Shared experiment setup: data, pipelines, models and detectors, all
//! deterministic under a fixed master seed.

use detect::prelude::*;
use featurize::{KddPipeline, PipelineConfig};
use ghsom_core::{GhsomConfig, GhsomModel};
use mathkit::Matrix;
use traffic::synth;
use traffic::{AttackCategory, Dataset};

/// Size/seed knobs of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Training records (KDD training mix).
    pub n_train: usize,
    /// Test records (KDD corrected-test mix, incl. unseen attacks).
    pub n_test: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for RunConfig {
    /// The paper-scale default used by the repro binary.
    fn default() -> Self {
        RunConfig {
            n_train: 8_000,
            n_test: 6_000,
            seed: 42,
        }
    }
}

/// Prepared experiment data: raw datasets plus transformed matrices.
pub struct ExperimentData {
    /// Raw labelled training records.
    pub train: Dataset,
    /// Raw labelled test records.
    pub test: Dataset,
    /// The fitted feature pipeline.
    pub pipeline: KddPipeline,
    /// Transformed training matrix.
    pub x_train: Matrix,
    /// Transformed test matrix.
    pub x_test: Matrix,
    /// Training ground-truth categories, row-aligned with `x_train`.
    pub train_categories: Vec<AttackCategory>,
    /// Test ground-truth categories, row-aligned with `x_test`.
    pub test_categories: Vec<AttackCategory>,
    /// Test binary truth (`true` = attack), row-aligned with `x_test`.
    pub test_truth: Vec<bool>,
}

/// Generates and transforms the experiment datasets.
///
/// # Errors
///
/// Generation and pipeline errors propagate as boxed errors (the repro
/// binary reports and exits).
pub fn prepare(run: &RunConfig) -> Result<ExperimentData, Box<dyn std::error::Error>> {
    let (train, test) = synth::kdd_train_test(run.n_train, run.n_test, run.seed)?;
    prepare_from(train, test)
}

/// Transforms externally supplied datasets (e.g. real KDD CSV files loaded
/// via `traffic::csv`) with the standard pipeline.
///
/// # Errors
///
/// Pipeline errors propagate.
pub fn prepare_from(
    train: Dataset,
    test: Dataset,
) -> Result<ExperimentData, Box<dyn std::error::Error>> {
    let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train)?;
    let x_train = pipeline.transform_dataset(&train)?;
    let x_test = pipeline.transform_dataset(&test)?;
    let train_categories: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
    let test_categories: Vec<AttackCategory> = test.iter().map(|r| r.category()).collect();
    let test_truth: Vec<bool> = test.iter().map(|r| r.is_attack()).collect();
    Ok(ExperimentData {
        train,
        test,
        pipeline,
        x_train,
        x_test,
        train_categories,
        test_categories,
        test_truth,
    })
}

/// The GHSOM configuration used by the experiments, parameterized on the
/// two scientific knobs.
pub fn experiment_config(tau1: f64, tau2: f64, seed: u64) -> GhsomConfig {
    GhsomConfig::default()
        .with_tau1(tau1)
        .with_tau2(tau2)
        .with_max_depth(4)
        .with_epochs(3, 3)
        .with_max_growth_rounds(16)
        .with_max_map_units(256)
        .with_max_total_units(2_000)
        .with_min_unit_samples(10)
        .with_seed(seed)
}

/// The default (τ₁ = 0.3, τ₂ = 0.03) experiment model.
///
/// # Errors
///
/// Training errors propagate.
pub fn train_default_model(
    data: &ExperimentData,
    seed: u64,
) -> Result<GhsomModel, ghsom_core::GhsomError> {
    GhsomModel::train(&experiment_config(0.3, 0.03, seed), &data.x_train)
}

/// Every detector of the comparison table, fitted on the same data.
pub struct FittedDetectors {
    /// GHSOM with labels + QE threshold (the paper's detector).
    pub ghsom: HybridGhsomDetector,
    /// Flat SOM baseline of comparable unit budget.
    pub flat_som: FlatSomDetector,
    /// k-means++ baseline.
    pub kmeans: KMeansDetector,
    /// Single-layer growing grid (hierarchy ablation).
    pub growing: GrowingGridDetector,
    /// PCA-residual baseline.
    pub pca: PcaDetector,
}

/// The calibration percentile shared by all threshold-bearing detectors.
pub const CALIBRATION_PERCENTILE: f64 = 0.99;

/// Fits all detectors.
///
/// Baseline budgets: the flat SOM gets a square grid whose unit count is
/// closest to the GHSOM's total (capped at 16×16); k-means gets
/// `min(64, ghsom units)` centroids. Caps keep the baselines within the
/// same order of training cost while staying faithful to how the
/// comparison is done in the GHSOM-IDS literature.
///
/// # Errors
///
/// Fitting errors propagate.
pub fn fit_all_detectors(
    data: &ExperimentData,
    model: GhsomModel,
) -> Result<FittedDetectors, Box<dyn std::error::Error>> {
    let seed = model.config().seed;
    let units = model.total_units();
    let side = ((units as f64).sqrt().round() as usize).clamp(4, 16);
    let k = units.clamp(8, 64);

    let ghsom = HybridGhsomDetector::fit(
        model,
        &data.x_train,
        &data.train_categories,
        CALIBRATION_PERCENTILE,
    )?;
    let flat_som = FlatSomDetector::fit(
        &data.x_train,
        &data.train_categories,
        side,
        side,
        CALIBRATION_PERCENTILE,
        seed ^ 0x01,
    )?;
    let kmeans = KMeansDetector::fit(
        &data.x_train,
        &data.train_categories,
        k,
        CALIBRATION_PERCENTILE,
        seed ^ 0x02,
    )?;
    let growing = GrowingGridDetector::fit(
        &data.x_train,
        &data.train_categories,
        0.3,
        CALIBRATION_PERCENTILE,
        seed ^ 0x03,
    )?;
    // PCA is fitted on normal traffic only (classical subspace method).
    let normal_rows: Vec<Vec<f64>> = data
        .x_train
        .iter_rows()
        .zip(&data.train_categories)
        .filter(|(_, &c)| c == AttackCategory::Normal)
        .map(|(r, _)| r.to_vec())
        .collect();
    let x_normal = Matrix::from_rows(normal_rows)?;
    let k_pca = 10.min(x_normal.cols() - 1).max(1);
    let pca = PcaDetector::fit(&x_normal, k_pca, CALIBRATION_PERCENTILE, seed ^ 0x04)?;

    Ok(FittedDetectors {
        ghsom,
        flat_som,
        kmeans,
        growing,
        pca,
    })
}

/// Moves a fitted hybrid detector onto the compiled serving plane
/// (labels and threshold transfer unchanged; projections are
/// bit-identical).
///
/// # Errors
///
/// Compilation errors propagate.
pub fn compile_detector(
    detector: &HybridGhsomDetector,
) -> Result<HybridGhsomDetector<ghsom_serve::CompiledGhsom>, ghsom_serve::ServeError> {
    use ghsom_serve::Compile;
    Ok(detector.with_scorer(detector.labeled().model().compile()?))
}

/// Binary evaluation of one detector on the test set, through the batched
/// verdict path ([`Detector::is_anomalous_all`] — one grouped hierarchy
/// traversal for GHSOM-backed detectors instead of a projection per row).
///
/// # Errors
///
/// Scoring errors propagate.
pub fn evaluate_binary(
    detector: &dyn Detector,
    data: &ExperimentData,
) -> Result<evalkit::BinaryMetrics, DetectError> {
    let verdicts = detector.is_anomalous_all(&data.x_test)?;
    Ok(evalkit::BinaryMetrics::from_pairs(
        data.test_truth.iter().copied().zip(verdicts),
    ))
}

/// Per-category detection rates of one detector (recall per attack
/// category + FPR on normal).
///
/// # Errors
///
/// Scoring errors propagate.
pub fn evaluate_per_category(
    detector: &dyn Detector,
    data: &ExperimentData,
) -> Result<Vec<(AttackCategory, f64, usize)>, DetectError> {
    let mut out = Vec::new();
    for cat in AttackCategory::ALL {
        let mut flagged = 0usize;
        let mut total = 0usize;
        for (x, &c) in data.x_test.iter_rows().zip(&data.test_categories) {
            if c != cat {
                continue;
            }
            total += 1;
            if detector.is_anomalous(x)? {
                flagged += 1;
            }
        }
        let rate = if total == 0 {
            0.0
        } else {
            flagged as f64 / total as f64
        };
        out.push((cat, rate, total));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run() -> RunConfig {
        RunConfig {
            n_train: 600,
            n_test: 400,
            seed: 7,
        }
    }

    #[test]
    fn prepare_shapes_are_consistent() {
        let data = prepare(&small_run()).unwrap();
        assert_eq!(data.x_train.rows(), 600);
        assert_eq!(data.x_test.rows(), 400);
        assert_eq!(data.x_train.cols(), data.pipeline.output_dim());
        assert_eq!(data.train_categories.len(), 600);
        assert_eq!(data.test_truth.len(), 400);
    }

    #[test]
    fn default_model_trains_and_detects() {
        let data = prepare(&small_run()).unwrap();
        let model = train_default_model(&data, 1).unwrap();
        assert!(model.total_units() >= 4);
        let detectors = fit_all_detectors(&data, model).unwrap();
        let m = evaluate_binary(&detectors.ghsom, &data).unwrap();
        assert_eq!(m.total(), 400);
        // On well-separated synthetic KDD data the GHSOM should beat coin
        // flipping comfortably.
        assert!(m.accuracy() > 0.7, "accuracy {}", m.accuracy());
    }

    #[test]
    fn per_category_covers_all_categories() {
        let data = prepare(&small_run()).unwrap();
        let model = train_default_model(&data, 1).unwrap();
        let detectors = fit_all_detectors(&data, model).unwrap();
        let rows = evaluate_per_category(&detectors.ghsom, &data).unwrap();
        assert_eq!(rows.len(), 5);
        let total: usize = rows.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn compiled_detector_reproduces_tree_metrics() {
        let data = prepare(&small_run()).unwrap();
        let model = train_default_model(&data, 1).unwrap();
        let det = HybridGhsomDetector::fit(
            model,
            &data.x_train,
            &data.train_categories,
            CALIBRATION_PERCENTILE,
        )
        .unwrap();
        let served = compile_detector(&det).unwrap();
        let tree = evaluate_binary(&det, &data).unwrap();
        let flat = evaluate_binary(&served, &data).unwrap();
        // The serving plane is bit-identical: every confusion cell agrees.
        assert_eq!(tree, flat);
    }

    #[test]
    fn preparation_is_deterministic() {
        let a = prepare(&small_run()).unwrap();
        let b = prepare(&small_run()).unwrap();
        assert_eq!(a.train.records(), b.train.records());
        assert_eq!(a.x_test, b.x_test);
    }
}
