//! Ablations A1–A3: the design choices `DESIGN.md` calls out.

use detect::prelude::*;
use evalkit::report::{cell, Table};
use featurize::{KddPipeline, PipelineConfig, ScalingKind};
use traffic::AttackCategory;

use crate::harness::{
    evaluate_binary, experiment_config, ExperimentData, RunConfig, CALIBRATION_PERCENTILE,
};

/// A1 — hierarchy: full GHSOM vs single-layer growing grid vs fixed SOM,
/// across a τ₂ sweep. Isolates what depth buys.
///
/// # Errors
///
/// Training/evaluation errors propagate.
pub fn ablation_hierarchy(data: &ExperimentData) -> Result<Table, Box<dyn std::error::Error>> {
    let mut table = Table::new(vec![
        "variant", "tau2", "maps", "units", "depth", "DR", "FPR", "F1",
    ]);
    for &tau2 in &[0.1, 0.03, 0.01] {
        let config = experiment_config(0.3, tau2, 42);
        let model = ghsom_core::GhsomModel::train(&config, &data.x_train)?;
        let stats = model.topology_stats();
        let det = HybridGhsomDetector::fit(
            model,
            &data.x_train,
            &data.train_categories,
            CALIBRATION_PERCENTILE,
        )?;
        let m = evaluate_binary(&det, data)?;
        table.add_row(vec![
            "ghsom".into(),
            cell(tau2),
            stats.maps.to_string(),
            stats.total_units.to_string(),
            stats.max_depth.to_string(),
            cell(m.detection_rate()),
            cell(m.false_positive_rate()),
            cell(m.f1()),
        ]);
    }
    // Hierarchy off.
    let gg = GrowingGridDetector::fit(
        &data.x_train,
        &data.train_categories,
        0.3,
        CALIBRATION_PERCENTILE,
        42,
    )?;
    let m = evaluate_binary(&gg, data)?;
    table.add_row(vec![
        "growing-grid (no hierarchy)".into(),
        "-".into(),
        "1".into(),
        gg.unit_count().to_string(),
        "1".into(),
        cell(m.detection_rate()),
        cell(m.false_positive_rate()),
        cell(m.f1()),
    ]);
    Ok(table)
}

/// A2 — labeling strategy: QE threshold only vs unit labels only vs
/// hybrid, all on the same trained model.
///
/// # Errors
///
/// Training/evaluation errors propagate.
pub fn ablation_labeling(data: &ExperimentData) -> Result<Table, Box<dyn std::error::Error>> {
    let config = experiment_config(0.3, 0.03, 42);
    let model = ghsom_core::GhsomModel::train(&config, &data.x_train)?;

    let normal_rows: Vec<Vec<f64>> = data
        .x_train
        .iter_rows()
        .zip(&data.train_categories)
        .filter(|(_, &c)| c == AttackCategory::Normal)
        .map(|(r, _)| r.to_vec())
        .collect();
    let x_normal = mathkit::Matrix::from_rows(normal_rows)?;

    let qe = QeThresholdDetector::fit(model.clone(), &x_normal, CALIBRATION_PERCENTILE)?;
    let labeled = LabeledGhsomDetector::fit(model.clone(), &data.x_train, &data.train_categories)?;
    let hybrid = HybridGhsomDetector::fit(
        model,
        &data.x_train,
        &data.train_categories,
        CALIBRATION_PERCENTILE,
    )?;

    let mut table = Table::new(vec!["strategy", "DR", "FPR", "precision", "F1"]);
    let all: [(&str, &dyn Detector); 3] = [
        ("qe-threshold only", &qe),
        ("unit labels only", &labeled),
        ("hybrid (labels + qe)", &hybrid),
    ];
    for (name, det) in all {
        let m = evaluate_binary(det, data)?;
        table.add_row(vec![
            name.into(),
            cell(m.detection_rate()),
            cell(m.false_positive_rate()),
            cell(m.precision()),
            cell(m.f1()),
        ]);
    }
    Ok(table)
}

/// A3 — feature scaling: min–max vs z-score vs log1p+min–max, identical
/// model/detector settings.
///
/// # Errors
///
/// Pipeline/training/evaluation errors propagate.
pub fn ablation_scaling(run: &RunConfig) -> Result<Table, Box<dyn std::error::Error>> {
    let (train, test) = traffic::synth::kdd_train_test(run.n_train, run.n_test, run.seed)?;
    let mut table = Table::new(vec!["scaling", "DR", "FPR", "F1", "accuracy"]);
    for scaling in [
        ScalingKind::MinMax,
        ScalingKind::ZScore,
        ScalingKind::Log1pMinMax,
    ] {
        let pipe_config = PipelineConfig::default().with_scaling(scaling);
        let pipeline = KddPipeline::fit(&pipe_config, &train)?;
        let x_train = pipeline.transform_dataset(&train)?;
        let x_test = pipeline.transform_dataset(&test)?;
        let train_categories: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
        let config = experiment_config(0.3, 0.03, run.seed);
        let model = ghsom_core::GhsomModel::train(&config, &x_train)?;
        let det =
            HybridGhsomDetector::fit(model, &x_train, &train_categories, CALIBRATION_PERCENTILE)?;
        let mut m = evalkit::BinaryMetrics::new();
        for (x, rec) in x_test.iter_rows().zip(test.iter()) {
            m.record(rec.is_attack(), det.is_anomalous(x)?);
        }
        table.add_row(vec![
            scaling.to_string(),
            cell(m.detection_rate()),
            cell(m.false_positive_rate()),
            cell(m.f1()),
            cell(m.accuracy()),
        ]);
    }
    Ok(table)
}

/// A4 — training mode: online Kohonen updates vs batch updates, identical
/// τ settings.
///
/// # Errors
///
/// Training/evaluation errors propagate.
pub fn ablation_training_mode(data: &ExperimentData) -> Result<Table, Box<dyn std::error::Error>> {
    let mut table = Table::new(vec![
        "mode",
        "maps",
        "units",
        "train (s)",
        "DR",
        "FPR",
        "F1",
    ]);
    for mode in [
        ghsom_core::TrainingMode::Online,
        ghsom_core::TrainingMode::Batch,
    ] {
        let config = experiment_config(0.3, 0.03, 42).with_training(mode);
        let start = std::time::Instant::now();
        let model = ghsom_core::GhsomModel::train(&config, &data.x_train)?;
        let elapsed = start.elapsed().as_secs_f64();
        let stats = model.topology_stats();
        let det = HybridGhsomDetector::fit(
            model,
            &data.x_train,
            &data.train_categories,
            CALIBRATION_PERCENTILE,
        )?;
        let m = evaluate_binary(&det, data)?;
        table.add_row(vec![
            mode.to_string(),
            stats.maps.to_string(),
            stats.total_units.to_string(),
            cell(elapsed),
            cell(m.detection_rate()),
            cell(m.false_positive_rate()),
            cell(m.f1()),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::prepare;

    fn small_data() -> ExperimentData {
        prepare(&RunConfig {
            n_train: 500,
            n_test: 300,
            seed: 17,
        })
        .unwrap()
    }

    #[test]
    fn hierarchy_ablation_has_all_variants() {
        let data = small_data();
        let t = ablation_hierarchy(&data).unwrap();
        assert_eq!(t.len(), 4);
        assert!(t.to_string().contains("no hierarchy"));
    }

    #[test]
    fn labeling_ablation_has_three_strategies() {
        let data = small_data();
        let t = ablation_labeling(&data).unwrap();
        assert_eq!(t.len(), 3);
        let text = t.to_string();
        assert!(text.contains("qe-threshold only"));
        assert!(text.contains("hybrid"));
    }

    #[test]
    fn training_mode_ablation_has_both_modes() {
        let data = small_data();
        let t = ablation_training_mode(&data).unwrap();
        assert_eq!(t.len(), 2);
        let text = t.to_string();
        assert!(text.contains("online"));
        assert!(text.contains("batch"));
    }

    #[test]
    fn scaling_ablation_covers_all_scalers() {
        let run = RunConfig {
            n_train: 400,
            n_test: 200,
            seed: 19,
        };
        let t = ablation_scaling(&run).unwrap();
        assert_eq!(t.len(), 3);
        let text = t.to_string();
        assert!(text.contains("z-score"));
        assert!(text.contains("log1p+min-max"));
    }
}
