//! `repro` — regenerates every table and figure of the reconstructed
//! evaluation (see `DESIGN.md` §4 for the experiment index).
//!
//! ```text
//! repro --all                  # everything at the default scale
//! repro --table 3              # one table
//! repro --figure 1             # one figure
//! repro --ablation hierarchy   # one ablation (hierarchy|labeling|scaling)
//! repro --train 8000 --test 6000 --seed 42   # scale/seed overrides
//! ```

use ghsom_bench::harness::{fit_all_detectors, prepare, train_default_model, RunConfig};
use ghsom_bench::{ablations, figures, tables};

struct Args {
    run: RunConfig,
    table: Option<usize>,
    figure: Option<usize>,
    ablation: Option<String>,
    all: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        run: RunConfig::default(),
        table: None,
        figure: None,
        ablation: None,
        all: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = || -> Result<String, String> {
            argv.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("missing value after `{}`", argv[i]))
        };
        match argv[i].as_str() {
            "--all" => {
                args.all = true;
                i += 1;
            }
            "--table" => {
                args.table = Some(
                    value()?
                        .parse()
                        .map_err(|_| "`--table` expects a number".to_string())?,
                );
                i += 2;
            }
            "--figure" => {
                args.figure = Some(
                    value()?
                        .parse()
                        .map_err(|_| "`--figure` expects a number".to_string())?,
                );
                i += 2;
            }
            "--ablation" => {
                args.ablation = Some(value()?);
                i += 2;
            }
            "--train" => {
                args.run.n_train = value()?
                    .parse()
                    .map_err(|_| "`--train` expects a number".to_string())?;
                i += 2;
            }
            "--test" => {
                args.run.n_test = value()?
                    .parse()
                    .map_err(|_| "`--test` expects a number".to_string())?;
                i += 2;
            }
            "--seed" => {
                args.run.seed = value()?
                    .parse()
                    .map_err(|_| "`--seed` expects a number".to_string())?;
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--all] [--table N] [--figure N] \
                     [--ablation hierarchy|labeling|scaling|training] \
                     [--train N] [--test N] [--seed N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !args.all && args.table.is_none() && args.figure.is_none() && args.ablation.is_none() {
        args.all = true;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let run = &args.run;
    eprintln!(
        "# preparing data: {} train / {} test records (seed {})",
        run.n_train, run.n_test, run.seed
    );
    let data = prepare(run)?;

    let want_table = |n: usize| args.all || args.table == Some(n);
    let want_figure = |n: usize| args.all || args.figure == Some(n);
    let want_ablation = |name: &str| args.all || args.ablation.as_deref() == Some(name);

    // Detectors are needed by tables 3-4/6 and figures 1-3.
    let need_detectors = want_table(3)
        || want_table(4)
        || want_table(6)
        || want_figure(1)
        || want_figure(2)
        || want_figure(3);
    let fitted = if need_detectors {
        eprintln!("# training GHSOM (tau1=0.3, tau2=0.03) and baselines …");
        let model = train_default_model(&data, run.seed)?;
        let model_for_fig2 = model.clone();
        Some((fit_all_detectors(&data, model)?, model_for_fig2))
    } else {
        None
    };

    if want_table(1) {
        print_section(
            "Table 1 — dataset composition",
            &tables::table1(&data).to_string(),
        );
    }
    if want_table(2) {
        eprintln!("# sweeping tau grid for Table 2 …");
        print_section(
            "Table 2 — GHSOM topology vs (tau1, tau2)",
            &tables::table2(&data)?.to_string(),
        );
    }
    if let Some((detectors, model)) = fitted.as_ref() {
        if want_table(3) {
            print_section(
                "Table 3 — overall detection comparison",
                &tables::table3(&data, detectors)?.to_string(),
            );
        }
        if want_table(4) {
            print_section(
                "Table 4 — per-category detection rate",
                &tables::table4(&data, detectors)?.to_string(),
            );
        }
        if want_table(6) {
            print_section(
                "Table 6 — per-type classification (typed GHSOM)",
                &tables::table6(&data, model.clone())?.to_string(),
            );
        }
        if want_figure(1) {
            let fig = figures::figure1(&data, detectors)?;
            print_section(&fig.title, &fig.chart);
        }
        if want_figure(2) {
            let fig = figures::figure2(model);
            print_section(&fig.title, &fig.chart);
        }
        if want_figure(3) {
            let fig = figures::figure3(&data, detectors)?;
            print_section(&fig.title, &fig.chart);
        }
    }
    if want_figure(4) {
        eprintln!("# sweeping tau grid for Figure 4 …");
        let fig = figures::figure4(&data)?;
        print_section(&fig.title, &fig.chart);
    }
    if want_ablation("hierarchy") {
        print_section(
            "Ablation A1 — hierarchy",
            &ablations::ablation_hierarchy(&data)?.to_string(),
        );
    }
    if want_ablation("labeling") {
        print_section(
            "Ablation A2 — labeling strategy",
            &ablations::ablation_labeling(&data)?.to_string(),
        );
    }
    if want_ablation("scaling") {
        print_section(
            "Ablation A3 — feature scaling",
            &ablations::ablation_scaling(run)?.to_string(),
        );
    }
    if want_ablation("training") {
        print_section(
            "Ablation A4 — training mode (online vs batch)",
            &ablations::ablation_training_mode(&data)?.to_string(),
        );
    }
    Ok(())
}

fn print_section(title: &str, body: &str) {
    println!("\n## {title}\n");
    println!("{body}");
}
