//! RAII pinning of the `GHSOM_THREADS` knob for benchmarks.
//!
//! Single-core baselines pin the kernel thread count by setting the
//! `GHSOM_THREADS` environment variable around the timed section. Doing
//! that with bare `set_var`/`remove_var` pairs has two failure modes the
//! copy-pasted blocks this module replaces actually had: an early return
//! or panic skips the cleanup and leaks the pin into every later
//! benchmark, and unconditional `remove_var` clobbers a value the *user*
//! had exported (pinning a whole run from the shell). [`PinnedThreads`]
//! scopes the pin and restores whatever was there before, on drop —
//! panic included.
//!
//! Environment mutation is inherently process-global: concurrent threads
//! reading `GHSOM_THREADS` mid-scope see the pinned value. Criterion
//! benches run groups sequentially on the main thread, so the guard is
//! race-free there; for *per-thread* budgets inside concurrent code use
//! `mathkit::parallel::with_thread_cap` instead, which this crate's
//! sharded benches rely on.

/// Scoped `GHSOM_THREADS` pin: sets the variable on construction and
/// restores the previous state (prior value, or unset) when dropped.
///
/// ```
/// use ghsom_bench::pin::PinnedThreads;
///
/// std::env::set_var("GHSOM_THREADS", "6");
/// {
///     let _pin = PinnedThreads::single();
///     assert_eq!(std::env::var("GHSOM_THREADS").unwrap(), "1");
/// }
/// // The pre-existing value is back, not removed.
/// assert_eq!(std::env::var("GHSOM_THREADS").unwrap(), "6");
/// std::env::remove_var("GHSOM_THREADS");
/// ```
#[must_use = "dropping the guard immediately unpins the thread count"]
#[derive(Debug)]
pub struct PinnedThreads {
    previous: Option<String>,
}

impl PinnedThreads {
    /// Pins kernel parallelism to `threads` worker threads until the
    /// guard drops.
    pub fn new(threads: usize) -> Self {
        let previous = std::env::var("GHSOM_THREADS").ok();
        std::env::set_var("GHSOM_THREADS", threads.to_string());
        PinnedThreads { previous }
    }

    /// Pins to one thread — the single-core baseline every BENCH_*.json
    /// number is reported under.
    pub fn single() -> Self {
        PinnedThreads::new(1)
    }
}

impl Drop for PinnedThreads {
    fn drop(&mut self) {
        match self.previous.take() {
            Some(value) => std::env::set_var("GHSOM_THREADS", value),
            None => std::env::remove_var("GHSOM_THREADS"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises every case: the env var is process-global, so
    // independent #[test] functions would race each other.
    #[test]
    fn pin_sets_and_restores_in_every_case() {
        std::env::remove_var("GHSOM_THREADS");

        // Unset before → unset after.
        {
            let _pin = PinnedThreads::single();
            assert_eq!(std::env::var("GHSOM_THREADS").unwrap(), "1");
        }
        assert!(std::env::var("GHSOM_THREADS").is_err());

        // Pre-existing value → restored, not removed.
        std::env::set_var("GHSOM_THREADS", "5");
        {
            let _pin = PinnedThreads::new(2);
            assert_eq!(std::env::var("GHSOM_THREADS").unwrap(), "2");
        }
        assert_eq!(std::env::var("GHSOM_THREADS").unwrap(), "5");

        // Nested pins unwind in LIFO order.
        {
            let _outer = PinnedThreads::single();
            {
                let _inner = PinnedThreads::new(3);
                assert_eq!(std::env::var("GHSOM_THREADS").unwrap(), "3");
            }
            assert_eq!(std::env::var("GHSOM_THREADS").unwrap(), "1");
        }
        assert_eq!(std::env::var("GHSOM_THREADS").unwrap(), "5");

        // Restored across a panic.
        let caught = std::panic::catch_unwind(|| {
            let _pin = PinnedThreads::new(7);
            panic!("boom");
        });
        assert!(caught.is_err());
        assert_eq!(std::env::var("GHSOM_THREADS").unwrap(), "5");

        std::env::remove_var("GHSOM_THREADS");
    }
}
