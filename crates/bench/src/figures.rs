//! Figures 1–4 of the reconstructed evaluation, rendered as ASCII charts
//! plus the raw CSV series (so the data can be re-plotted elsewhere).

use detect::Detector;
use evalkit::report::{ascii_chart, ascii_histogram, cell};
use evalkit::sweep::SweepGrid;
use evalkit::RocCurve;
use mathkit::Histogram;

use crate::harness::{
    evaluate_binary, experiment_config, fit_all_detectors, ExperimentData, FittedDetectors,
};

/// A rendered figure: chart text plus the raw series as CSV lines.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure caption.
    pub title: String,
    /// ASCII rendering for the terminal.
    pub chart: String,
    /// `name,x,y` CSV rows of every series in the figure.
    pub csv: String,
}

/// Figure 1 — ROC curves (and AUC) of every detector.
///
/// # Errors
///
/// Scoring errors propagate.
pub fn figure1(
    data: &ExperimentData,
    detectors: &FittedDetectors,
) -> Result<Figure, Box<dyn std::error::Error>> {
    let all: [&dyn Detector; 5] = [
        &detectors.ghsom,
        &detectors.growing,
        &detectors.flat_som,
        &detectors.kmeans,
        &detectors.pca,
    ];
    let mut chart = String::new();
    let mut csv = String::from("detector,fpr,tpr\n");
    for det in all {
        let scores = det.score_all(&data.x_test)?;
        let roc = RocCurve::from_scores(&scores, &data.test_truth)?;
        chart.push_str(&format!("\n{} (AUC = {}):\n", det.name(), cell(roc.auc())));
        let pts: Vec<(f64, f64)> = roc.sampled(64).iter().map(|p| (p.fpr, p.tpr)).collect();
        chart.push_str(&ascii_chart(&pts, 56, 14));
        for p in roc.sampled(128) {
            csv.push_str(&format!("{},{},{}\n", det.name(), p.fpr, p.tpr));
        }
    }
    Ok(Figure {
        title: "Figure 1 — ROC curves (TPR vs FPR), QE/score threshold sweep".into(),
        chart,
        csv,
    })
}

/// Figure 2 — GHSOM growth: cumulative unit count after each growth event.
pub fn figure2(model: &ghsom_core::GhsomModel) -> Figure {
    let timeline = model.growth_log().unit_timeline();
    let peak = timeline.iter().copied().max().unwrap_or(1).max(1) as f64;
    let pts: Vec<(f64, f64)> = timeline
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            (
                i as f64 / (timeline.len().max(2) - 1) as f64,
                u as f64 / peak,
            )
        })
        .collect();
    let mut chart = format!(
        "growth events: {} (insertions: {}, maps: {}); final units: {}\n",
        timeline.len(),
        model.growth_log().insertion_count(),
        model.growth_log().map_count(),
        model.total_units()
    );
    chart.push_str(&ascii_chart(&pts, 56, 12));
    let mut csv = String::from("event,total_units\n");
    for (i, &u) in timeline.iter().enumerate() {
        csv.push_str(&format!("{i},{u}\n"));
    }
    Figure {
        title: "Figure 2 — map growth over training (units per growth event)".into(),
        chart,
        csv,
    }
}

/// Figure 3 — leaf quantization-error distributions: normal vs attack test
/// records, measured against a GHSOM trained on **normal traffic only**.
///
/// Raw QE is only an anomaly signal for a normal-only-trained model: a
/// model trained on the attack-dominated mix quantizes the tight DoS
/// clusters *better* than diverse normal traffic, inverting the ranking.
/// This figure demonstrates the meaningful setting (and the labeling
/// ablation documents the inverted one).
///
/// # Errors
///
/// Training/scoring errors propagate.
pub fn figure3(
    data: &ExperimentData,
    _detectors: &FittedDetectors,
) -> Result<Figure, Box<dyn std::error::Error>> {
    use traffic::AttackCategory;
    let normal_rows: Vec<Vec<f64>> = data
        .x_train
        .iter_rows()
        .zip(&data.train_categories)
        .filter(|(_, &c)| c == AttackCategory::Normal)
        .map(|(r, _)| r.to_vec())
        .collect();
    let x_normal = mathkit::Matrix::from_rows(normal_rows)?;
    let model = ghsom_core::GhsomModel::train(&experiment_config(0.3, 0.03, 4242), &x_normal)?;
    let scores = model.score_matrix(&data.x_test)?;
    let max = scores.iter().cloned().fold(0.0, f64::max).max(1e-9);
    let nbins = 16;
    let mut normal_hist = Histogram::new(0.0, max, nbins)?;
    let mut attack_hist = Histogram::new(0.0, max, nbins)?;
    for (&s, &attack) in scores.iter().zip(&data.test_truth) {
        if attack {
            attack_hist.add(s);
        } else {
            normal_hist.add(s);
        }
    }
    let labels: Vec<String> = (0..nbins)
        .map(|i| {
            let (lo, hi) = normal_hist.bin_edges(i);
            format!("[{:.2},{:.2})", lo, hi)
        })
        .collect();
    let mut chart = String::from("normal records:\n");
    chart.push_str(&ascii_histogram(&labels, normal_hist.counts(), 40));
    chart.push_str("\nattack records:\n");
    chart.push_str(&ascii_histogram(&labels, attack_hist.counts(), 40));
    let mut csv = String::from("bin_lo,bin_hi,normal,attack\n");
    for i in 0..nbins {
        let (lo, hi) = normal_hist.bin_edges(i);
        csv.push_str(&format!(
            "{lo},{hi},{},{}\n",
            normal_hist.counts()[i],
            attack_hist.counts()[i]
        ));
    }
    Ok(Figure {
        title: "Figure 3 — leaf QE distributions vs a normal-only-trained GHSOM".into(),
        chart,
        csv,
    })
}

/// Figure 4 — sensitivity heat-map: detection accuracy over the τ₁ × τ₂
/// grid.
///
/// # Errors
///
/// Training/evaluation errors propagate.
pub fn figure4(data: &ExperimentData) -> Result<Figure, Box<dyn std::error::Error>> {
    let tau1_values = [0.6, 0.3, 0.1];
    let tau2_values = [0.1, 0.03, 0.01];
    let grid = SweepGrid::run::<Box<dyn std::error::Error>, _>(
        &tau1_values,
        &tau2_values,
        |tau1, tau2| {
            let config = experiment_config(tau1, tau2, 42);
            let model = ghsom_core::GhsomModel::train(&config, &data.x_train)?;
            let detectors = fit_all_detectors(data, model)?;
            let m = evaluate_binary(&detectors.ghsom, data)?;
            Ok(m.accuracy())
        },
    )?;
    let chart = grid.render("tau1", "tau2");
    let mut csv = String::from("tau1,tau2,accuracy\n");
    for c in grid.cells() {
        csv.push_str(&format!("{},{},{}\n", c.a, c.b, c.value));
    }
    let best = grid.best();
    Ok(Figure {
        title: format!(
            "Figure 4 — accuracy over tau1 x tau2 (best: tau1={} tau2={} acc={})",
            cell(best.a),
            cell(best.b),
            cell(best.value)
        ),
        chart,
        csv,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{prepare, train_default_model, RunConfig};

    fn setup() -> (ExperimentData, FittedDetectors, ghsom_core::GhsomModel) {
        let data = prepare(&RunConfig {
            n_train: 500,
            n_test: 300,
            seed: 13,
        })
        .unwrap();
        let model = train_default_model(&data, 13).unwrap();
        let detectors = fit_all_detectors(&data, model.clone()).unwrap();
        (data, detectors, model)
    }

    #[test]
    fn figure1_has_all_detectors_and_valid_auc() {
        let (data, detectors, _) = setup();
        let fig = figure1(&data, &detectors).unwrap();
        for name in ["ghsom-hybrid", "kmeans", "pca-residual"] {
            assert!(fig.chart.contains(name));
        }
        assert!(fig.csv.lines().count() > 10);
        // AUC values are printed and parse back within [0, 1].
        assert!(fig.chart.contains("AUC"));
    }

    #[test]
    fn figure2_timeline_matches_model() {
        let (_, _, model) = setup();
        let fig = figure2(&model);
        assert!(fig
            .chart
            .contains(&format!("final units: {}", model.total_units())));
        let last = fig.csv.lines().last().unwrap();
        assert!(last.ends_with(&model.total_units().to_string()));
    }

    #[test]
    fn figure3_histograms_cover_test_set() {
        let (data, detectors, _) = setup();
        let fig = figure3(&data, &detectors).unwrap();
        // CSV rows: header + 16 bins.
        assert_eq!(fig.csv.lines().count(), 17);
        // Total counts across both histograms = test size.
        let mut total = 0u64;
        for line in fig.csv.lines().skip(1) {
            let parts: Vec<&str> = line.split(',').collect();
            total += parts[2].parse::<u64>().unwrap() + parts[3].parse::<u64>().unwrap();
        }
        assert_eq!(total, 300);
    }
}
