//! Experiment harness shared by the `repro` binary and the Criterion
//! benches.
//!
//! Everything needed to regenerate the paper-style tables and figures lives
//! here (see `DESIGN.md` §4 for the experiment index):
//!
//! * [`harness`] — dataset preparation, pipeline fitting, model training
//!   and detector fitting with fixed seeds.
//! * [`tables`] — Tables 1–4 (dataset composition, topology vs τ, overall
//!   detection comparison, per-category detection).
//! * [`figures`] — Figures 1–4 (ROC curves, growth timeline, QE
//!   distributions, τ sensitivity heat-map).
//! * [`ablations`] — A1 hierarchy, A2 labeling strategy, A3 feature
//!   scaling.
//!
//! Run `cargo run --release -p ghsom-bench --bin repro -- --all` to print
//! every artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod figures;
pub mod harness;
pub mod pin;
pub mod tables;
