//! The GHSF wire protocol: length-prefixed binary frames over TCP for
//! the fleet control plane.
//!
//! The normative specification lives in `docs/FLEET.md`; this module is
//! its reference implementation. GHSF reuses the GHSD header discipline
//! byte for byte — only the magic differs, so a frame aimed at the
//! wrong plane dies on the first four bytes:
//!
//! ```text
//! frame   := header payload
//! header  := magic(4) version(1) frame_type(1) reserved(2) payload_len(4)   -- 12 bytes, LE
//! magic   := "GHSF"
//! ```
//!
//! Requests are [`FrameType::Offer`] / [`FrameType::Chunk`] /
//! [`FrameType::Commit`] (the bundle replication plane),
//! [`FrameType::StateQuery`] (the baseline reduction plane) and
//! [`FrameType::Ping`]. Responses are [`FrameType::OfferAck`],
//! [`FrameType::BundleAck`], [`FrameType::StateReply`],
//! [`FrameType::Nak`] and [`FrameType::Pong`].
//!
//! GHSF is **lock-step with one streamed exception**: every request
//! expects exactly one response before the next request, except `Chunk`
//! frames, which are streamed unacknowledged between an `OfferAck` and
//! a `Commit` — the commit's single `BundleAck`/`Nak` answers for the
//! whole transfer. Decoding is total: any byte sequence either decodes
//! or produces a typed [`CommsError`] — never a panic, and a hostile
//! declared length is rejected from the 12 header bytes alone, before
//! any payload allocation.

use crate::error::{CommsError, NakCode};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"GHSF";

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Default cap on a frame's declared payload length (8 MiB — matches
/// the GHSD default, and bounds one replication chunk).
pub const DEFAULT_MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Longest tenant name the protocol carries (matches GHSD).
pub const MAX_TENANT_LEN: usize = 255;

/// Longest nak detail string a node will send.
pub const MAX_NAK_DETAIL_LEN: usize = 512;

/// Longest opaque state payload a [`FrameType::StateReply`] carries.
/// (An exported `StreamState` is 40 bytes; the u16 length field leaves
/// generous room for future state formats.)
pub const MAX_STATE_LEN: usize = u16::MAX as usize;

/// Payload bytes the replicator sends per [`FrameType::Chunk`] (256 KiB:
/// far below the frame cap, large enough that syscall overhead is
/// negligible for multi-MiB bundles).
pub const CHUNK_LEN: usize = 256 * 1024;

/// Discriminates the ten frame kinds. Request types have the high bit
/// clear, response types have it set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameType {
    /// Publisher → node: announce a content-addressed bundle for one
    /// tenant (total length + FNV-1a 64 checksum).
    Offer,
    /// Publisher → node: one contiguous slice of the offered bundle.
    /// Streamed unacknowledged; any error comes back on the commit.
    Chunk,
    /// Publisher → node: every byte was sent — verify and make visible.
    Commit,
    /// Publisher → node: ask for a tenant's exported streaming baseline.
    StateQuery,
    /// Publisher → node: liveness probe.
    Ping,
    /// Node → publisher: the offer is accepted; resume from byte `have`.
    OfferAck,
    /// Node → publisher: the bundle verified and is visible in the spool.
    BundleAck,
    /// Node → publisher: the tenant's baseline (or its absence).
    StateReply,
    /// Node → publisher: typed refusal; the connection closes after it.
    Nak,
    /// Node → publisher: answer to [`FrameType::Ping`].
    Pong,
}

impl FrameType {
    /// The frozen wire byte of this frame type.
    pub fn to_wire(self) -> u8 {
        match self {
            FrameType::Offer => 0x01,
            FrameType::Chunk => 0x02,
            FrameType::Commit => 0x03,
            FrameType::StateQuery => 0x04,
            FrameType::Ping => 0x05,
            FrameType::OfferAck => 0x81,
            FrameType::BundleAck => 0x82,
            FrameType::StateReply => 0x83,
            FrameType::Nak => 0x84,
            FrameType::Pong => 0x85,
        }
    }

    /// Decodes a wire byte.
    ///
    /// # Errors
    ///
    /// [`CommsError::UnknownFrameType`] for any other byte.
    pub fn from_wire(byte: u8) -> Result<Self, CommsError> {
        match byte {
            0x01 => Ok(FrameType::Offer),
            0x02 => Ok(FrameType::Chunk),
            0x03 => Ok(FrameType::Commit),
            0x04 => Ok(FrameType::StateQuery),
            0x05 => Ok(FrameType::Ping),
            0x81 => Ok(FrameType::OfferAck),
            0x82 => Ok(FrameType::BundleAck),
            0x83 => Ok(FrameType::StateReply),
            0x84 => Ok(FrameType::Nak),
            0x85 => Ok(FrameType::Pong),
            other => Err(CommsError::UnknownFrameType(other)),
        }
    }

    /// `true` for frame types a publisher sends.
    pub fn is_request(self) -> bool {
        matches!(
            self,
            FrameType::Offer
                | FrameType::Chunk
                | FrameType::Commit
                | FrameType::StateQuery
                | FrameType::Ping
        )
    }
}

/// A validated frame header: the frame type plus how many payload bytes
/// follow the 12 header bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Kind of frame the payload encodes.
    pub frame_type: FrameType,
    /// Payload length in bytes (already checked against the caller's cap).
    pub payload_len: usize,
}

impl FrameHeader {
    /// Encodes the 12 header bytes.
    pub fn encode(frame_type: FrameType, payload_len: u32) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        let (magic, rest) = out.split_at_mut(4);
        magic.copy_from_slice(&MAGIC);
        let (meta, len) = rest.split_at_mut(4);
        meta.copy_from_slice(&[VERSION, frame_type.to_wire(), 0, 0]);
        len.copy_from_slice(&payload_len.to_le_bytes());
        out
    }

    /// Validates 12 header bytes against `max_frame_len`, in order:
    /// magic, version, frame type, reserved bytes, declared length. The
    /// declared payload length is checked *here*, before the caller
    /// reads (or allocates for) a single payload byte.
    ///
    /// # Errors
    ///
    /// [`CommsError::BadMagic`], [`CommsError::UnsupportedVersion`],
    /// [`CommsError::UnknownFrameType`], [`CommsError::ReservedNonZero`]
    /// or [`CommsError::FrameTooLarge`].
    pub fn decode(bytes: &[u8; HEADER_LEN], max_frame_len: usize) -> Result<Self, CommsError> {
        let (magic, rest) = bytes.split_at(4);
        if magic != MAGIC {
            return Err(CommsError::BadMagic);
        }
        let (meta, len) = rest.split_at(4);
        let version = meta.first().copied().unwrap_or(0);
        if version != VERSION {
            return Err(CommsError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let frame_type = FrameType::from_wire(meta.get(1).copied().unwrap_or(0))?;
        if meta.get(2).copied().unwrap_or(1) != 0 || meta.get(3).copied().unwrap_or(1) != 0 {
            return Err(CommsError::ReservedNonZero);
        }
        let mut raw = [0u8; 4];
        raw.copy_from_slice(len);
        let declared = u32::from_le_bytes(raw) as usize;
        if declared > max_frame_len {
            return Err(CommsError::FrameTooLarge {
                declared,
                max: max_frame_len,
            });
        }
        Ok(FrameHeader {
            frame_type,
            payload_len: declared,
        })
    }
}

/// A decoded publisher → node frame.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Request {
    /// Announce a content-addressed bundle for one tenant.
    Offer {
        /// Spool tenant the bundle deploys (1–255 UTF-8 bytes, a valid
        /// file stem — see [`crate::node::validate_tenant`]).
        tenant: String,
        /// Total bundle length in bytes (non-zero).
        total_len: u64,
        /// FNV-1a 64 checksum of the whole bundle — its content address.
        checksum: u64,
    },
    /// One contiguous slice of the offered bundle, streamed
    /// unacknowledged after the [`Response::OfferAck`].
    Chunk {
        /// Byte offset this slice starts at; must equal the bytes the
        /// node has staged so far (strictly sequential).
        offset: u64,
        /// The slice itself (length implicit in the frame length).
        data: Vec<u8>,
    },
    /// Every offered byte was sent: verify the staged file against the
    /// offer's checksum and atomically publish it into the spool.
    Commit {
        /// Must echo the offer's checksum.
        checksum: u64,
    },
    /// Ask for a tenant's exported streaming baseline.
    StateQuery {
        /// The tenant to report on.
        tenant: String,
    },
    /// Liveness probe.
    Ping,
}

/// A decoded node → publisher frame.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// The offer is accepted; the publisher should send bytes starting
    /// at offset `have` (`have == total_len` means the node already has
    /// this exact bundle and no bytes need to flow).
    OfferAck {
        /// Bytes of this content address the node already holds.
        have: u64,
    },
    /// The staged bytes verified against the offer and were renamed
    /// into the spool, visible to the node's watcher on its next poll.
    BundleAck {
        /// Echo of the committed checksum.
        checksum: u64,
    },
    /// The tenant's exported baseline, or `None` when the node has no
    /// engine deployed under that tenant.
    StateReply {
        /// Opaque exported state bytes (a 40-byte wire `StreamState`
        /// today; GHSF carries it untyped).
        state: Option<Vec<u8>>,
    },
    /// Typed refusal. The node closes the connection after sending it.
    Nak {
        /// Why the request was refused.
        code: NakCode,
        /// Operator-facing detail, truncated to [`MAX_NAK_DETAIL_LEN`].
        detail: String,
    },
    /// Answer to a ping.
    Pong,
}

// ---------------------------------------------------------------------------
// payload cursor
// ---------------------------------------------------------------------------

/// Bounds-checked reader over a payload slice: every read either yields
/// bytes or a typed [`CommsError::Truncated`].
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CommsError> {
        let end = self.pos.checked_add(n).ok_or(CommsError::Truncated {
            needed: n,
            got: self.remaining(),
        })?;
        match self.buf.get(self.pos..end) {
            Some(slice) => {
                self.pos = end;
                Ok(slice)
            }
            None => Err(CommsError::Truncated {
                needed: n,
                got: self.remaining(),
            }),
        }
    }

    fn u8(&mut self) -> Result<u8, CommsError> {
        let b = self.take(1)?;
        Ok(b.first().copied().unwrap_or(0))
    }

    fn u16(&mut self) -> Result<u16, CommsError> {
        let b = self.take(2)?;
        let mut a = [0u8; 2];
        a.copy_from_slice(b);
        Ok(u16::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, CommsError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn rest(&mut self) -> &'a [u8] {
        let out = self.buf.get(self.pos..).unwrap_or_default();
        self.pos = self.buf.len();
        out
    }

    /// Fails unless every payload byte was consumed — trailing garbage
    /// is as malformed as missing bytes.
    fn finish(self) -> Result<(), CommsError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CommsError::Malformed("trailing bytes after payload"))
        }
    }
}

fn read_tenant(cur: &mut Cursor<'_>) -> Result<String, CommsError> {
    let len = cur.u16()? as usize;
    if len == 0 {
        return Err(CommsError::Malformed("empty tenant name"));
    }
    if len > MAX_TENANT_LEN {
        return Err(CommsError::Malformed("tenant name longer than 255 bytes"));
    }
    Ok(std::str::from_utf8(cur.take(len)?)
        .map_err(|_| CommsError::Malformed("tenant name is not UTF-8"))?
        .to_string())
}

fn write_tenant(payload: &mut Vec<u8>, tenant: &str) -> Result<(), CommsError> {
    let bytes = tenant.as_bytes();
    if bytes.is_empty() {
        return Err(CommsError::Malformed("empty tenant name"));
    }
    if bytes.len() > MAX_TENANT_LEN {
        return Err(CommsError::Malformed("tenant name longer than 255 bytes"));
    }
    payload.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    payload.extend_from_slice(bytes);
    Ok(())
}

// ---------------------------------------------------------------------------
// frame encode
// ---------------------------------------------------------------------------

fn finish_frame(frame_type: FrameType, payload: Vec<u8>) -> Result<Vec<u8>, CommsError> {
    let len = u32::try_from(payload.len()).map_err(|_| CommsError::FrameTooLarge {
        declared: payload.len(),
        max: u32::MAX as usize,
    })?;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&FrameHeader::encode(frame_type, len));
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Encodes a complete request frame (header + payload).
///
/// # Errors
///
/// [`CommsError::Malformed`] when a tenant name is empty or longer than
/// [`MAX_TENANT_LEN`] bytes; [`CommsError::FrameTooLarge`] when the
/// payload overflows the u32 length field.
pub fn encode_request(request: &Request) -> Result<Vec<u8>, CommsError> {
    match request {
        Request::Ping => finish_frame(FrameType::Ping, Vec::new()),
        Request::Offer {
            tenant,
            total_len,
            checksum,
        } => {
            let mut payload = Vec::with_capacity(18 + tenant.len());
            write_tenant(&mut payload, tenant)?;
            payload.extend_from_slice(&total_len.to_le_bytes());
            payload.extend_from_slice(&checksum.to_le_bytes());
            finish_frame(FrameType::Offer, payload)
        }
        Request::Chunk { offset, data } => {
            let mut payload = Vec::with_capacity(8 + data.len());
            payload.extend_from_slice(&offset.to_le_bytes());
            payload.extend_from_slice(data);
            finish_frame(FrameType::Chunk, payload)
        }
        Request::Commit { checksum } => {
            finish_frame(FrameType::Commit, checksum.to_le_bytes().to_vec())
        }
        Request::StateQuery { tenant } => {
            let mut payload = Vec::with_capacity(2 + tenant.len());
            write_tenant(&mut payload, tenant)?;
            finish_frame(FrameType::StateQuery, payload)
        }
    }
}

/// Encodes a complete response frame (header + payload). Nak details
/// are truncated to [`MAX_NAK_DETAIL_LEN`] bytes on a char boundary.
///
/// # Errors
///
/// [`CommsError::Malformed`] when a state payload exceeds
/// [`MAX_STATE_LEN`]; [`CommsError::FrameTooLarge`] when the payload
/// overflows the u32 length field.
pub fn encode_response(response: &Response) -> Result<Vec<u8>, CommsError> {
    match response {
        Response::Pong => finish_frame(FrameType::Pong, Vec::new()),
        Response::OfferAck { have } => {
            finish_frame(FrameType::OfferAck, have.to_le_bytes().to_vec())
        }
        Response::BundleAck { checksum } => {
            finish_frame(FrameType::BundleAck, checksum.to_le_bytes().to_vec())
        }
        Response::StateReply { state } => {
            let mut payload = Vec::with_capacity(3 + state.as_ref().map_or(0, Vec::len));
            match state {
                None => payload.extend_from_slice(&[0, 0, 0]),
                Some(bytes) => {
                    if bytes.len() > MAX_STATE_LEN {
                        return Err(CommsError::Malformed("state payload longer than u16::MAX"));
                    }
                    payload.push(1);
                    payload.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                    payload.extend_from_slice(bytes);
                }
            }
            finish_frame(FrameType::StateReply, payload)
        }
        Response::Nak { code, detail } => {
            let detail = truncate_utf8(detail, MAX_NAK_DETAIL_LEN);
            let mut payload = Vec::with_capacity(3 + detail.len());
            payload.push(code.to_wire());
            payload.extend_from_slice(&(detail.len() as u16).to_le_bytes());
            payload.extend_from_slice(detail.as_bytes());
            finish_frame(FrameType::Nak, payload)
        }
    }
}

/// Longest prefix of `s` that fits `max` bytes without splitting a
/// UTF-8 sequence.
fn truncate_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    s.get(..end).unwrap_or("")
}

// ---------------------------------------------------------------------------
// frame decode
// ---------------------------------------------------------------------------

/// Decodes the payload of a request frame whose header was already
/// validated by [`FrameHeader::decode`].
///
/// # Errors
///
/// [`CommsError::Malformed`] or [`CommsError::Truncated`] describing the
/// first structural violation; [`CommsError::UnknownFrameType`] when fed
/// a response frame type.
pub fn decode_request(frame_type: FrameType, payload: &[u8]) -> Result<Request, CommsError> {
    match frame_type {
        FrameType::Ping => {
            Cursor::new(payload).finish()?;
            Ok(Request::Ping)
        }
        FrameType::Offer => {
            let mut cur = Cursor::new(payload);
            let tenant = read_tenant(&mut cur)?;
            let total_len = cur.u64()?;
            let checksum = cur.u64()?;
            cur.finish()?;
            if total_len == 0 {
                return Err(CommsError::Malformed("offered bundle is empty"));
            }
            Ok(Request::Offer {
                tenant,
                total_len,
                checksum,
            })
        }
        FrameType::Chunk => {
            let mut cur = Cursor::new(payload);
            let offset = cur.u64()?;
            let data = cur.rest().to_vec();
            if data.is_empty() {
                return Err(CommsError::Malformed("empty chunk"));
            }
            Ok(Request::Chunk { offset, data })
        }
        FrameType::Commit => {
            let mut cur = Cursor::new(payload);
            let checksum = cur.u64()?;
            cur.finish()?;
            Ok(Request::Commit { checksum })
        }
        FrameType::StateQuery => {
            let mut cur = Cursor::new(payload);
            let tenant = read_tenant(&mut cur)?;
            cur.finish()?;
            Ok(Request::StateQuery { tenant })
        }
        other => Err(CommsError::UnknownFrameType(other.to_wire())),
    }
}

/// Decodes the payload of a response frame whose header was already
/// validated by [`FrameHeader::decode`].
///
/// # Errors
///
/// [`CommsError::Malformed`] or [`CommsError::Truncated`] describing the
/// first structural violation; [`CommsError::UnknownFrameType`] when fed
/// a request frame type.
pub fn decode_response(frame_type: FrameType, payload: &[u8]) -> Result<Response, CommsError> {
    match frame_type {
        FrameType::Pong => {
            Cursor::new(payload).finish()?;
            Ok(Response::Pong)
        }
        FrameType::OfferAck => {
            let mut cur = Cursor::new(payload);
            let have = cur.u64()?;
            cur.finish()?;
            Ok(Response::OfferAck { have })
        }
        FrameType::BundleAck => {
            let mut cur = Cursor::new(payload);
            let checksum = cur.u64()?;
            cur.finish()?;
            Ok(Response::BundleAck { checksum })
        }
        FrameType::StateReply => {
            let mut cur = Cursor::new(payload);
            let present = cur.u8()?;
            let len = cur.u16()? as usize;
            let state = match present {
                0 => {
                    if len != 0 {
                        return Err(CommsError::Malformed("absent state with a nonzero length"));
                    }
                    None
                }
                1 => Some(cur.take(len)?.to_vec()),
                _ => return Err(CommsError::Malformed("state presence byte must be 0 or 1")),
            };
            cur.finish()?;
            Ok(Response::StateReply { state })
        }
        FrameType::Nak => {
            let mut cur = Cursor::new(payload);
            let code = NakCode::from_wire(cur.u8()?)?;
            let detail_len = cur.u16()? as usize;
            let detail = std::str::from_utf8(cur.take(detail_len)?)
                .map_err(|_| CommsError::Malformed("nak detail is not UTF-8"))?
                .to_string();
            cur.finish()?;
            Ok(Response::Nak { code, detail })
        }
        other => Err(CommsError::UnknownFrameType(other.to_wire())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: Request) {
        let frame = encode_request(&request).unwrap();
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&frame[..HEADER_LEN]);
        let header = FrameHeader::decode(&header, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert!(header.frame_type.is_request());
        assert_eq!(header.payload_len, frame.len() - HEADER_LEN);
        let back = decode_request(header.frame_type, &frame[HEADER_LEN..]).unwrap();
        assert_eq!(back, request);
    }

    fn roundtrip_response(response: Response) {
        let frame = encode_response(&response).unwrap();
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&frame[..HEADER_LEN]);
        let header = FrameHeader::decode(&header, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert!(!header.frame_type.is_request());
        let back = decode_response(header.frame_type, &frame[HEADER_LEN..]).unwrap();
        assert_eq!(back, response);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Offer {
            tenant: "edge-α".to_string(),
            total_len: 123_456,
            checksum: 0xDEAD_BEEF_CAFE_F00D,
        });
        roundtrip_request(Request::Chunk {
            offset: 9_000,
            data: vec![7; 321],
        });
        roundtrip_request(Request::Commit { checksum: 42 });
        roundtrip_request(Request::StateQuery {
            tenant: "edge".to_string(),
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::OfferAck { have: 512 });
        roundtrip_response(Response::BundleAck { checksum: 99 });
        roundtrip_response(Response::StateReply { state: None });
        roundtrip_response(Response::StateReply {
            state: Some(vec![1, 2, 3, 4]),
        });
        roundtrip_response(Response::Nak {
            code: NakCode::BadOffset,
            detail: "expected offset 512".to_string(),
        });
    }

    #[test]
    fn header_rejects_bad_magic_version_type_reserved_and_length() {
        let good = FrameHeader::encode(FrameType::Ping, 0);

        let mut bad = good;
        bad[0] = b'X';
        assert_eq!(FrameHeader::decode(&bad, 1024), Err(CommsError::BadMagic));

        // The GHSD magic dies here too: the planes cannot be crossed.
        let mut bad = good;
        bad[..4].copy_from_slice(b"GHSD");
        assert_eq!(FrameHeader::decode(&bad, 1024), Err(CommsError::BadMagic));

        let mut bad = good;
        bad[4] = 9;
        assert!(matches!(
            FrameHeader::decode(&bad, 1024),
            Err(CommsError::UnsupportedVersion { found: 9, .. })
        ));

        let mut bad = good;
        bad[5] = 0x40;
        assert_eq!(
            FrameHeader::decode(&bad, 1024),
            Err(CommsError::UnknownFrameType(0x40))
        );

        let mut bad = good;
        bad[7] = 3;
        assert_eq!(
            FrameHeader::decode(&bad, 1024),
            Err(CommsError::ReservedNonZero)
        );

        let huge = FrameHeader::encode(FrameType::Chunk, u32::MAX);
        assert!(matches!(
            FrameHeader::decode(&huge, 1024),
            Err(CommsError::FrameTooLarge { max: 1024, .. })
        ));
    }

    #[test]
    fn hostile_payloads_are_typed_errors() {
        // Empty offer.
        assert!(decode_request(FrameType::Offer, &[]).is_err());
        // Zero-length bundle offer.
        let mut payload = Vec::new();
        write_tenant(&mut payload, "t").unwrap();
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(
            decode_request(FrameType::Offer, &payload),
            Err(CommsError::Malformed("offered bundle is empty"))
        );
        // Trailing garbage after a commit.
        let mut payload = 1u64.to_le_bytes().to_vec();
        payload.push(0);
        assert!(decode_request(FrameType::Commit, &payload).is_err());
        // Empty chunk.
        assert_eq!(
            decode_request(FrameType::Chunk, &5u64.to_le_bytes()),
            Err(CommsError::Malformed("empty chunk"))
        );
        // Bad presence byte.
        assert!(decode_response(FrameType::StateReply, &[9, 0, 0]).is_err());
        // Absent state with a declared length.
        assert!(decode_response(FrameType::StateReply, &[0, 4, 0]).is_err());
        // Non-UTF-8 tenant.
        let mut payload = vec![2, 0, 0xFF, 0xFE];
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes());
        assert!(decode_request(FrameType::Offer, &payload).is_err());
        // Request/response confusion is typed.
        assert!(decode_request(FrameType::Pong, &[]).is_err());
        assert!(decode_response(FrameType::Offer, &[]).is_err());
    }

    #[test]
    fn tenant_limits_enforced_both_ways() {
        assert!(encode_request(&Request::StateQuery {
            tenant: String::new()
        })
        .is_err());
        assert!(encode_request(&Request::Offer {
            tenant: "x".repeat(MAX_TENANT_LEN + 1),
            total_len: 1,
            checksum: 0,
        })
        .is_err());
    }

    #[test]
    fn nak_detail_is_truncated_on_char_boundary() {
        let long = "é".repeat(MAX_NAK_DETAIL_LEN); // 2 bytes per char
        let frame = encode_response(&Response::Nak {
            code: NakCode::Internal,
            detail: long,
        })
        .unwrap();
        let back = decode_response(FrameType::Nak, &frame[HEADER_LEN..]).unwrap();
        match back {
            Response::Nak { detail, .. } => assert!(detail.len() <= MAX_NAK_DETAIL_LEN),
            other => panic!("expected nak, got {other:?}"),
        }
    }
}
